"""Fig. 8 — overlap of computation and communication, memory
bandwidth-bound (memory-to-memory copy).

Paper result: *perfect* overlap — the full execution time equals
max(compute, exchange); each copy iteration moves 1 kB per rank.
"""

import pytest

from repro.bench import Table
from repro.exec.suites import overlap_sweep_specs

COPY_ITERS = [0, 16, 64, 128, 256, 512]
STEPS = 20
NODES = 8
RPD = 52


def run_figure(engine_sweep):
    specs, reassemble = overlap_sweep_specs("copy", STEPS, NODES, RPD,
                                            iters=COPY_ITERS)
    rows = reassemble(engine_sweep(specs))
    table = Table("Fig. 8 - overlap for memory-to-memory copy",
                  ["copy iters/exchange", "compute&exchange [ms]",
                   "compute only [ms]", "halo exchange [ms]"])
    for n, both, comp, ex in rows:
        table.add_row(n, both * 1e3, comp * 1e3, ex * 1e3)
    table.add_note("8 nodes, 1 kB halo packets, 1 kB per copy iteration; "
                   "paper reports perfect overlap")
    return table, rows


def test_fig8_overlap_copy(benchmark, report, engine_sweep):
    table, rows = benchmark.pedantic(run_figure, args=(engine_sweep,),
                                     rounds=1, iterations=1)
    report("fig8_overlap_copy", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    overlaps = []
    for n, both, comp, ex in rows:
        if n == 0:
            continue
        lo = max(comp, ex)
        hi = comp + ex
        frac = (hi - both) / max(hi - lo, 1e-12)
        overlaps.append(frac)
        # Perfect overlap: the combined time stays within 10% of the
        # max(compute, exchange) bound.
        assert both <= lo * 1.10 + 1e-9, f"n={n}: {both} vs max {lo}"
        assert frac > 0.85, f"n={n}: overlap fraction {frac:.0%}"
    # Bandwidth-bound overlap is at least as good as the compute-bound
    # case on average (the paper's perfect-vs-good distinction).
    assert sum(overlaps) / len(overlaps) > 0.90
