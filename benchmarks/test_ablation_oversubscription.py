"""Ablation — over-subscription level (blocks per SM).

The paper's central mechanism: latency hiding needs spare parallelism.
With one block per SM there is nothing to switch to during a wait, so
communication time adds up; with 2-8 blocks per SM the halo exchange
hides behind competing blocks' compute.  This sweep quantifies that.
"""

import pytest

from repro.bench import Table, run_overlap

STEPS = 20
NODES = 4
COPY_ITERS = 128
BLOCKS_PER_SM = [1, 2, 4, 8]


def run_ablation():
    rows = []
    for bps in BLOCKS_PER_SM:
        rpd = 13 * bps
        both = run_overlap("copy", COPY_ITERS, True, True, STEPS, NODES,
                           rpd).elapsed
        comp = run_overlap("copy", COPY_ITERS, True, False, STEPS, NODES,
                           rpd).elapsed
        ex = run_overlap("copy", 0, False, True, STEPS, NODES, rpd).elapsed
        hideable = max(comp + ex - max(comp, ex), 1e-12)
        frac = (comp + ex - both) / hideable
        rows.append((bps, rpd, both, comp, ex, frac))
    table = Table("Ablation - over-subscription (blocks per SM)",
                  ["blocks/SM", "ranks/device", "both [ms]",
                   "compute [ms]", "exchange [ms]", "overlap"])
    for bps, rpd, both, comp, ex, frac in rows:
        table.add_row(bps, rpd, both * 1e3, comp * 1e3, ex * 1e3, frac)
    table.add_note("memory-to-memory copy workload, 4 nodes")
    return table, rows


def test_ablation_oversubscription(benchmark, report):
    table, rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_oversubscription", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    frac_by_bps = {bps: frac for bps, _, _, _, _, frac in rows}
    # One block per SM cannot hide its own waits behind peers on the same
    # SM: overlap is essentially zero.
    assert frac_by_bps[1] < 0.2
    # Over-subscription turns on latency hiding, monotonically...
    assert frac_by_bps[1] < frac_by_bps[2] < frac_by_bps[4]
    assert frac_by_bps[2] > 0.35
    # ...until Little's law saturates: 4 blocks/SM already hides nearly
    # everything and 8 adds nothing.
    assert frac_by_bps[4] > 0.85
    assert abs(frac_by_bps[8] - frac_by_bps[4]) < 0.1
