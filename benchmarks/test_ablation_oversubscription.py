"""Ablation — over-subscription level (blocks per SM).

The paper's central mechanism: latency hiding needs spare parallelism.
With one block per SM there is nothing to switch to during a wait, so
communication time adds up; with 2-8 blocks per SM the halo exchange
hides behind competing blocks' compute.  This sweep quantifies that.
"""

import pytest

from repro.bench import Table
from repro.exec import RunSpec

STEPS = 20
NODES = 4
COPY_ITERS = 128
BLOCKS_PER_SM = [1, 2, 4, 8]


def _point(rpd, compute_iters, do_compute, do_exchange, label):
    return RunSpec("overlap_point",
                   dict(mode="copy", compute_iters=compute_iters,
                        do_compute=do_compute, do_exchange=do_exchange,
                        steps=STEPS, num_nodes=NODES,
                        ranks_per_device=rpd),
                   label=label)


def run_ablation(engine_sweep):
    specs = []
    for bps in BLOCKS_PER_SM:
        rpd = 13 * bps
        specs += [
            _point(rpd, COPY_ITERS, True, True, f"oversub:{bps}:both"),
            _point(rpd, COPY_ITERS, True, False, f"oversub:{bps}:comp"),
            _point(rpd, 0, False, True, f"oversub:{bps}:ex"),
        ]
    points = engine_sweep(specs)
    rows = []
    for i, bps in enumerate(BLOCKS_PER_SM):
        both, comp, ex = (p.elapsed for p in points[3 * i:3 * i + 3])
        hideable = max(comp + ex - max(comp, ex), 1e-12)
        frac = (comp + ex - both) / hideable
        rows.append((bps, 13 * bps, both, comp, ex, frac))
    table = Table("Ablation - over-subscription (blocks per SM)",
                  ["blocks/SM", "ranks/device", "both [ms]",
                   "compute [ms]", "exchange [ms]", "overlap"])
    for bps, rpd, both, comp, ex, frac in rows:
        table.add_row(bps, rpd, both * 1e3, comp * 1e3, ex * 1e3, frac)
    table.add_note("memory-to-memory copy workload, 4 nodes")
    return table, rows


def test_ablation_oversubscription(benchmark, report, engine_sweep):
    table, rows = benchmark.pedantic(run_ablation, args=(engine_sweep,),
                                     rounds=1, iterations=1)
    report("ablation_oversubscription", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    frac_by_bps = {bps: frac for bps, _, _, _, _, frac in rows}
    # One block per SM cannot hide its own waits behind peers on the same
    # SM: overlap is essentially zero.
    assert frac_by_bps[1] < 0.2
    # Over-subscription turns on latency hiding, monotonically...
    assert frac_by_bps[1] < frac_by_bps[2] < frac_by_bps[4]
    assert frac_by_bps[2] > 0.35
    # ...until Little's law saturates: 4 blocks/SM already hides nearly
    # everything and 8 adds nothing.
    assert frac_by_bps[4] > 0.85
    assert abs(frac_by_bps[8] - frac_by_bps[4]) < 0.1
