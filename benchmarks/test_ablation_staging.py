"""Ablation — the MPI host-staging threshold.

OpenMPI stages device buffers larger than 30 kB through host memory
because GPUDirect RDMA bandwidth (~2 GB/s on Kepler) is far below the
host-staged path (~6 GB/s).  Sweeping the threshold shows the crossover
the paper's stencil discussion relies on ("introducing additional vertical
layers improves the relative performance of the MPI-CUDA variant as it
benefits from the higher bandwidth of host staged transfers").
"""

import pytest

from repro.bench import Table
from repro.exec import RunSpec

MESSAGE_SIZES = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20]

NEVER = 1 << 30     # staging disabled: everything direct d2d
ALWAYS = 0          # stage everything
DEFAULT = 30 * 1024
THRESHOLDS = (NEVER, ALWAYS, DEFAULT)


def run_ablation(engine_sweep):
    specs = [RunSpec("staging_point",
                     dict(nbytes=nbytes, staging_threshold=threshold),
                     label=f"staging:{nbytes}B@{threshold}")
             for nbytes in MESSAGE_SIZES for threshold in THRESHOLDS]
    times = engine_sweep(specs)
    table = Table("Ablation - host-staging threshold",
                  ["message [kB]", "direct d2d [us]", "host staged [us]",
                   "default 30 kB [us]"])
    rows = []
    for i, nbytes in enumerate(MESSAGE_SIZES):
        direct, staged, default = times[3 * i:3 * i + 3]
        rows.append((nbytes, direct, staged, default))
        table.add_row(nbytes / 1024, direct * 1e6, staged * 1e6,
                      default * 1e6)
    table.add_note("staging pays two DMA pipeline fills but streams at "
                   "6 GB/s instead of 2.06 GB/s")
    return table, rows


def test_ablation_staging(benchmark, report, engine_sweep):
    table, rows = benchmark.pedantic(run_ablation, args=(engine_sweep,),
                                     rounds=1, iterations=1)
    report("ablation_staging", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    for nbytes, direct, staged, default in rows:
        if nbytes <= 16 << 10:
            # Small messages: staging's DMA setup dominates - direct wins,
            # and the default threshold picks direct.
            assert direct < staged
            assert default == pytest.approx(direct, rel=1e-6)
        if nbytes >= 256 << 10:
            # Large messages: bandwidth dominates - staging wins, and the
            # default threshold picks staged.
            assert staged < direct
            assert default == pytest.approx(staged, rel=1e-6)
    # The crossover sits between 16 kB and 256 kB, bracketing the 30 kB
    # default.
    small_gap = rows[0][2] - rows[0][1]
    large_gap = rows[-1][1] - rows[-1][2]
    assert small_gap > 0 and large_gap > 0
