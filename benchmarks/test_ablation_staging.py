"""Ablation — the MPI host-staging threshold.

OpenMPI stages device buffers larger than 30 kB through host memory
because GPUDirect RDMA bandwidth (~2 GB/s on Kepler) is far below the
host-staged path (~6 GB/s).  Sweeping the threshold shows the crossover
the paper's stencil discussion relies on ("introducing additional vertical
layers improves the relative performance of the MPI-CUDA variant as it
benefits from the higher bandwidth of host staged transfers").
"""

import dataclasses

import numpy as np
import pytest

from repro.bench import Table
from repro.hw import Cluster, greina
from repro.mpi import MPIWorld

MESSAGE_SIZES = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20]


def one_way_time(nbytes: float, staging_threshold: int) -> float:
    cfg = greina(2)
    cfg = dataclasses.replace(
        cfg, fabric=dataclasses.replace(cfg.fabric,
                                        staging_threshold=staging_threshold))
    cluster = Cluster(cfg)
    world = MPIWorld(cluster)
    out = {}

    def sender(env):
        yield from world.send(0, 1, None, nbytes=nbytes, device=True)

    def receiver(env):
        t0 = env.now
        yield from world.recv(1)
        out["dt"] = env.now - t0

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    return out["dt"]


def run_ablation():
    never = 1 << 30     # staging disabled: everything direct d2d
    always = 0          # stage everything
    table = Table("Ablation - host-staging threshold",
                  ["message [kB]", "direct d2d [us]", "host staged [us]",
                   "default 30 kB [us]"])
    rows = []
    for nbytes in MESSAGE_SIZES:
        direct = one_way_time(nbytes, never)
        staged = one_way_time(nbytes, always)
        default = one_way_time(nbytes, 30 * 1024)
        rows.append((nbytes, direct, staged, default))
        table.add_row(nbytes / 1024, direct * 1e6, staged * 1e6,
                      default * 1e6)
    table.add_note("staging pays two DMA pipeline fills but streams at "
                   "6 GB/s instead of 2.06 GB/s")
    return table, rows


def test_ablation_staging(benchmark, report):
    table, rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_staging", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    for nbytes, direct, staged, default in rows:
        if nbytes <= 16 << 10:
            # Small messages: staging's DMA setup dominates - direct wins,
            # and the default threshold picks direct.
            assert direct < staged
            assert default == pytest.approx(direct, rel=1e-6)
        if nbytes >= 256 << 10:
            # Large messages: bandwidth dominates - staging wins, and the
            # default threshold picks staged.
            assert staged < direct
            assert default == pytest.approx(staged, rel=1e-6)
    # The crossover sits between 16 kB and 256 kB, bracketing the 30 kB
    # default.
    small_gap = rows[0][2] - rows[0][1]
    large_gap = rows[-1][1] - rows[-1][2]
    assert small_gap > 0 and large_gap > 0
