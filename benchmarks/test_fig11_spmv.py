"""Fig. 11 — weak scaling of sparse matrix-vector multiplication.

Paper result: the worst case for dCUDA's overlap philosophy.  The tightly
synchronized compute phases (broadcast — matvec — reduction — barrier)
leave no room for overlap: the scaling cost of *both* variants corresponds
roughly to the communication time, MPI-CUDA performs slightly better at
small node counts, and dCUDA merely stays comparable (its reduction
messages travel over the slower direct device-to-device path, while
MPI-CUDA's larger messages get host-staged at higher bandwidth).
"""

import pytest

from repro.bench.weak_scaling import weak_scaling_specs, weak_scaling_table

NODE_COUNTS = (1, 4, 9)


def run_figure(engine_sweep):
    specs, wl = weak_scaling_specs("spmv", NODE_COUNTS, verify=True)
    return weak_scaling_table("spmv", wl, engine_sweep(specs))


def test_fig11_spmv(benchmark, report, engine_sweep):
    table = benchmark.pedantic(run_figure, args=(engine_sweep,),
                               rounds=1, iterations=1)
    report("fig11_spmv", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    nodes = table.column("nodes")
    dcuda = table.column("dcuda [ms]")
    mpicuda = table.column("mpi-cuda [ms]")
    comm = table.column("communication [ms]")
    by_nodes = {n: (d, m, c)
                for n, d, m, c in zip(nodes, dcuda, mpicuda, comm)}

    d1, m1, _ = by_nodes[1]
    d9, m9, c9 = by_nodes[9]
    # MPI-CUDA performs (slightly) better at small node counts...
    assert m1 < d1
    # ...but dCUDA stays comparable even in this worst case (within ~1.6x).
    assert d9 < 1.6 * m9
    # No overlap benefit: both variants' scaling costs are on the order of
    # the communication time.
    assert (m9 - m1) == pytest.approx(c9, rel=0.35)
    assert (d9 - d1) > 0.6 * c9
    # dCUDA catches up relatively at scale: the ratio does not grow.
    assert d9 / m9 <= d1 / m1 * 1.05
