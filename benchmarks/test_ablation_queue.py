"""Ablation — circular-queue sizing and credit-based flow control.

The queue design (§III-C) amortizes flow control: the sender only reloads
the tail pointer (a PCIe read, ~3x the cost of a posted write) when its
local credits run out, so reload frequency scales with 1/queue_size.  A
one-entry queue degenerates to a read per enqueue; large queues make
reloads disappear.  Measured on a put burst from one rank.
"""

import pytest

from repro.bench import Table
from repro.exec import RunSpec

QUEUE_SIZES = [2, 8, 32, 128]
BURST = 192


def run_ablation(engine_sweep):
    specs = [RunSpec("queue_burst_point",
                     dict(queue_size=qsize, burst=BURST),
                     label=f"queue:{qsize}")
             for qsize in QUEUE_SIZES]
    cells = engine_sweep(specs)
    return [(qsize, c["time"], c["reloads"], c["stalls"])
            for qsize, c in zip(QUEUE_SIZES, cells)]


def test_ablation_queue(benchmark, report, engine_sweep):
    results = benchmark.pedantic(run_ablation, args=(engine_sweep,),
                                 rounds=1, iterations=1)

    table = Table("Ablation - queue size vs credit reloads",
                  ["queue size", "burst time [us]", "credit reloads",
                   "full stalls"])
    for qsize, t, reloads, stalls in results:
        table.add_row(qsize, t * 1e6, reloads, stalls)
    table.add_note(f"burst of {BURST} puts from one rank; reloads cost a "
                   "PCIe read each")
    report("ablation_queue", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    by_size = {q: (t, r, s) for q, t, r, s in results}
    # Reload count scales roughly with BURST / queue_size.
    assert by_size[2][1] > by_size[32][1] > by_size[128][1]
    assert by_size[2][1] >= BURST // 2 * 0.5
    # A large queue absorbs the whole burst with (almost) no flow control.
    assert by_size[128][1] <= 2
    assert by_size[128][2] == 0
    # The amortization shows up as time: tiny queues pay a PCIe read per
    # few enqueues and are measurably slower.
    assert by_size[2][0] > 1.2 * by_size[128][0]
