"""Ablation — circular-queue sizing and credit-based flow control.

The queue design (§III-C) amortizes flow control: the sender only reloads
the tail pointer (a PCIe read, ~3x the cost of a posted write) when its
local credits run out, so reload frequency scales with 1/queue_size.  A
one-entry queue degenerates to a read per enqueue; large queues make
reloads disappear.  Measured on a put burst from one rank.
"""

import dataclasses

import pytest

import numpy as np

from repro.bench import Table
from repro.dcuda import launch
from repro.hw import Cluster, greina

QUEUE_SIZES = [2, 8, 32, 128]
BURST = 192


def test_ablation_queue(benchmark, report):
    # Collect per-size burst time and queue statistics.
    results = []
    for qsize in QUEUE_SIZES:
        cfg = greina(1)
        cfg = dataclasses.replace(
            cfg, devicelib=dataclasses.replace(cfg.devicelib,
                                               queue_size=qsize))
        cluster = Cluster(cfg)
        buffers = {r: np.zeros(8, dtype=np.uint8) for r in range(2)}
        out = {}
        stats_out = {}

        def kernel(rank, _q=qsize):
            r = rank.world_rank
            win = yield from rank.win_create(buffers[r])
            yield from rank.barrier()
            if r == 0:
                t0 = rank.now
                for _ in range(BURST):
                    yield from rank.put_notify(win, 1, 0, buffers[0][:8],
                                               tag=1, notify=False)
                yield from rank.flush(win)
                out["time"] = rank.now - t0
                q = rank.state.cmd_queue
                stats_out["reloads"] = q.stats.credit_reloads
                stats_out["stalls"] = q.stats.full_stalls
            yield from rank.barrier()
            yield from rank.finish()

        def run_once():
            return launch(cluster, kernel, ranks_per_device=2)

        benchmark.pedantic(run_once, rounds=1, iterations=1) \
            if qsize == QUEUE_SIZES[0] else run_once()
        results.append((qsize, out["time"], stats_out["reloads"],
                        stats_out["stalls"]))

    table = Table("Ablation - queue size vs credit reloads",
                  ["queue size", "burst time [us]", "credit reloads",
                   "full stalls"])
    for qsize, t, reloads, stalls in results:
        table.add_row(qsize, t * 1e6, reloads, stalls)
    table.add_note(f"burst of {BURST} puts from one rank; reloads cost a "
                   "PCIe read each")
    report("ablation_queue", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    by_size = {q: (t, r, s) for q, t, r, s in results}
    # Reload count scales roughly with BURST / queue_size.
    assert by_size[2][1] > by_size[32][1] > by_size[128][1]
    assert by_size[2][1] >= BURST // 2 * 0.5
    # A large queue absorbs the whole burst with (almost) no flow control.
    assert by_size[128][1] <= 2
    assert by_size[128][2] == 0
    # The amortization shows up as time: tiny queues pay a PCIe read per
    # few enqueues and are measurably slower.
    assert by_size[2][0] > 1.2 * by_size[128][0]
