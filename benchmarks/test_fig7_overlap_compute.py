"""Fig. 7 — overlap of computation and communication, compute-bound
(Newton-Raphson square-root iterations).

Paper result: good (but not perfect) overlap — the full execution time
tracks max(compute, exchange) closely; the small residual is attributed to
the notification matching itself being compute heavy.
"""

import pytest

from repro.bench import Table
from repro.exec.suites import overlap_sweep_specs

NEWTON_ITERS = [0, 16, 64, 128, 256, 512]
STEPS = 20
NODES = 8
RPD = 52


def run_figure(engine_sweep):
    specs, reassemble = overlap_sweep_specs("newton", STEPS, NODES, RPD,
                                            iters=NEWTON_ITERS)
    rows = reassemble(engine_sweep(specs))
    table = Table("Fig. 7 - overlap for square root calculation "
                  "(Newton-Raphson)",
                  ["newton iters/exchange", "compute&exchange [ms]",
                   "compute only [ms]", "halo exchange [ms]"])
    for n, both, comp, ex in rows:
        table.add_row(n, both * 1e3, comp * 1e3, ex * 1e3)
    table.add_note("8 nodes, 1 kB halo packets, paper reports good overlap "
                   "for compute-bound workloads")
    return table, rows


def test_fig7_overlap_compute(benchmark, report, engine_sweep):
    table, rows = benchmark.pedantic(run_figure, args=(engine_sweep,),
                                     rounds=1, iterations=1)
    report("fig7_overlap_compute", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    fractions = []
    for n, both, comp, ex in rows:
        if n == 0:
            continue
        lo = max(comp, ex)          # perfect overlap
        hi = comp + ex              # no overlap
        frac = (hi - both) / max(hi - lo, 1e-12)
        fractions.append(frac)
        # Good overlap: more than half of the hideable cost disappears
        # at every point (the paper's "good but not perfect": the
        # notification matching competes for issue slots).
        assert frac > 0.50, f"n={n}: overlap fraction {frac:.0%}"
    assert sum(fractions) / len(fractions) > 0.60
    # At large compute the combined time converges toward compute-only.
    n, both, comp, ex = rows[-1]
    assert comp > ex                # sweep reaches the compute-bound regime
    assert both < comp + 0.5 * ex   # and the exchange is mostly hidden
