"""Simulator-throughput benchmark (events/sec and wall-clock).

Unlike the figure benchmarks, the quantity of interest here is the
*simulator's* own speed: how many scheduler events the DES kernel retires
per second of wall-clock time, measured on a pure-kernel synthetic
workload and on an end-to-end dCUDA diffusion run.  The event counts are
deterministic (identical across runs of the same workload), so any
change in them indicates a schedule change, not noise.

Quick mode (the default, also used by the CI smoke job) keeps the run to
a couple of seconds; set ``SIMPERF_FULL=1`` for the figure-scale
workload.
"""

import os

from repro.bench.simperf import (
    diffusion_throughput,
    simperf_specs,
    simperf_table,
    synthetic_throughput,
)

FULL = os.environ.get("SIMPERF_FULL", "") == "1"


def test_sim_throughput(benchmark, report, engine_sweep):
    # The probes are cacheable=False specs: the engine always executes
    # them, so the wall-clock numbers are real even with a warm cache.
    table = benchmark.pedantic(
        lambda: simperf_table(engine_sweep(simperf_specs(quick=not FULL))),
        rounds=1, iterations=1)
    report("sim_throughput", table.render())
    benchmark.extra_info["rows"] = [
        [row[0], row[1]] + [float(v) for v in row[2:]]
        for row in table.rows]

    by_probe = {row[0]: row for row in table.rows}
    assert set(by_probe) == {"synthetic", "diffusion"}
    for probe, (_, _backend, events, wall, eps, sim_ms) in by_probe.items():
        assert events > 0, probe
        assert wall > 0, probe
        assert eps > 0, probe
        assert sim_ms > 0, probe


def test_event_count_is_deterministic():
    """The events metric is schedule-derived: reruns must match exactly."""
    a = synthetic_throughput(num_procs=8, hops=50)
    b = synthetic_throughput(num_procs=8, hops=50)
    assert a.events == b.events
    assert a.sim_time_s == b.sim_time_s

    c = diffusion_throughput()
    d = diffusion_throughput()
    assert c.events == d.events
    assert c.sim_time_s == d.sim_time_s
