"""Fig. 6 — put-bandwidth of shared and distributed memory ranks.

Paper results (§IV-B): for empty packets, a notified-put latency of 7.8 µs
(shared memory) and 9.4 µs (distributed memory); at large packets the
bandwidth saturates near 4457.6 MB/s for shared-memory ranks (a single
block cannot saturate the device-memory interface) and 2057.9 MB/s for
distributed-memory ranks (GPUDirect RDMA ceiling).
"""

import pytest

from repro.bench import Table
from repro.exec import RunSpec

PACKET_SIZES = [4 ** k for k in range(0, 12)]  # 1 B .. 4 MB

PAPER_LATENCY_SHARED = 7.8e-6
PAPER_LATENCY_DISTRIBUTED = 9.4e-6
PAPER_BW_SHARED = 4457.6e6
PAPER_BW_DISTRIBUTED = 2057.9e6


def figure_specs():
    """Both bandwidth curves plus the two zero-byte latency probes."""
    specs = [RunSpec("pingpong_point",
                     dict(shared_mem=shared_mem, packet_bytes=size,
                          iterations=30),
                     label=f"fig6:{'shm' if shared_mem else 'dist'}:{size}B")
             for shared_mem in (True, False) for size in PACKET_SIZES]
    specs += [RunSpec("pingpong_point",
                      dict(shared_mem=shared_mem, packet_bytes=0,
                           iterations=100),
                      label=f"fig6:lat:{'shm' if shared_mem else 'dist'}")
              for shared_mem in (True, False)]
    return specs


def assemble(results):
    half = len(PACKET_SIZES)
    shared, distributed = results[:half], results[half:2 * half]
    lat_s, lat_d = results[2 * half].latency, results[2 * half + 1].latency
    table = Table("Fig. 6 - put bandwidth vs packet size",
                  ["packet [B]", "shared [MB/s]", "distributed [MB/s]",
                   "shared lat [us]", "distributed lat [us]"])
    for s, d in zip(shared, distributed):
        table.add_row(s.packet_bytes, s.bandwidth / 1e6, d.bandwidth / 1e6,
                      s.latency * 1e6, d.latency * 1e6)
    table.add_note("paper: 4457.6 MB/s shared / 2057.9 MB/s distributed "
                   "at 4 MB; 7.8 / 9.4 us zero-byte latency")
    return table, shared, distributed, lat_s, lat_d


def test_fig6_pingpong(benchmark, report, engine_sweep):
    results = benchmark.pedantic(lambda: engine_sweep(figure_specs()),
                                 rounds=1, iterations=1)
    table, shared, distributed, lat_s, lat_d = assemble(results)
    report("fig6_pingpong", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    # Zero-byte latencies within 10% of the paper's measurements.
    assert lat_s == pytest.approx(PAPER_LATENCY_SHARED, rel=0.10)
    assert lat_d == pytest.approx(PAPER_LATENCY_DISTRIBUTED, rel=0.10)
    # Distributed latency exceeds shared (network adds to the control path).
    assert lat_d > lat_s

    bw_s = shared[-1].bandwidth
    bw_d = distributed[-1].bandwidth
    # Large-packet bandwidth ceilings within 15%.
    assert bw_s == pytest.approx(PAPER_BW_SHARED, rel=0.15)
    assert bw_d == pytest.approx(PAPER_BW_DISTRIBUTED, rel=0.15)
    # Crossover: shared overtakes distributed at large packets (the single
    # block outpaces GPUDirect), while tiny packets are latency-bound for
    # both.
    assert bw_s > bw_d
    # Bandwidth grows monotonically until saturation for both curves.
    for curve in (shared, distributed):
        bws = [p.bandwidth for p in curve]
        assert bws[-1] > 100 * bws[0]
