"""Fig. 9 — weak scaling of the particle-simulation mini-application.

Paper result: both variants perform similarly up to three nodes; for
higher node counts the dCUDA variant clearly outperforms MPI-CUDA, whose
scaling costs roughly correspond to the halo-exchange time.  The dCUDA
variant partly overlaps the halo exchange (the dynamic load imbalance of
the particle distribution prevents entirely flat scaling).
"""

import pytest

from repro.bench.weak_scaling import weak_scaling_specs, weak_scaling_table

NODE_COUNTS = (1, 2, 4, 8)


def run_figure(engine_sweep):
    specs, wl = weak_scaling_specs("particles", NODE_COUNTS, verify=True)
    return weak_scaling_table("particles", wl, engine_sweep(specs))


def test_fig9_particles(benchmark, report, engine_sweep):
    table = benchmark.pedantic(run_figure, args=(engine_sweep,),
                               rounds=1, iterations=1)
    report("fig9_particles", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    nodes = table.column("nodes")
    dcuda = table.column("dcuda [ms]")
    mpicuda = table.column("mpi-cuda [ms]")
    halo = table.column("halo exchange [ms]")
    by_nodes = {n: (d, m, h)
                for n, d, m, h in zip(nodes, dcuda, mpicuda, halo)}

    d1, m1, _ = by_nodes[1]
    d8, m8, h8 = by_nodes[8]
    # Similar single-node performance (within 15%).
    assert d1 == pytest.approx(m1, rel=0.15)
    # dCUDA wins at the highest node count.
    assert d8 < m8
    # MPI-CUDA's scaling cost is in the ballpark of the halo time, and
    # dCUDA hides part of it (strictly smaller scaling cost).
    mpicuda_cost = m8 - m1
    dcuda_cost = d8 - d1
    assert dcuda_cost < mpicuda_cost
    assert mpicuda_cost > 0.4 * h8
    # Halo time grows with node count then saturates (more boundaries).
    assert by_nodes[2][2] > by_nodes[1][2]
