"""Fig. 10 — weak scaling of the stencil program (horizontal diffusion).

Paper result: similar single-node performance; in multi-node setups the
dCUDA variant completely overlaps the significant halo-exchange costs
(perfect load balance), whereas the MPI-CUDA variant's scaling cost
corresponds to the halo-exchange time.
"""

import pytest

from repro.bench.weak_scaling import weak_scaling_specs, weak_scaling_table

NODE_COUNTS = (1, 2, 4, 8)


def run_figure(engine_sweep):
    specs, wl = weak_scaling_specs("stencil", NODE_COUNTS, verify=True)
    return weak_scaling_table("stencil", wl, engine_sweep(specs))


def test_fig10_stencil(benchmark, report, engine_sweep):
    table = benchmark.pedantic(run_figure, args=(engine_sweep,),
                               rounds=1, iterations=1)
    report("fig10_stencil", table.render())
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in table.rows]

    nodes = table.column("nodes")
    dcuda = table.column("dcuda [ms]")
    mpicuda = table.column("mpi-cuda [ms]")
    halo = table.column("halo exchange [ms]")
    by_nodes = {n: (d, m, h)
                for n, d, m, h in zip(nodes, dcuda, mpicuda, halo)}

    d1, m1, _ = by_nodes[1]
    d8, m8, h8 = by_nodes[8]
    # Similar single-node performance (within 10%).
    assert d1 == pytest.approx(m1, rel=0.10)
    # MPI-CUDA pays the halo: its scaling cost matches the measured halo
    # time within 25%.
    assert (m8 - m1) == pytest.approx(h8, rel=0.25)
    # dCUDA hides the halo: scaling cost below 40% of the halo time —
    # near-flat weak scaling.
    assert (d8 - d1) < 0.4 * h8
    # Consequently dCUDA clearly wins at scale.
    assert d8 < m8
    # And the flatness holds across intermediate node counts too.
    for n in (2, 4, 8):
        dn = by_nodes[n][0]
        assert dn < d1 * 1.08, f"dCUDA not flat at {n} nodes: {dn} vs {d1}"
