"""Ablation — notification-matching cost (hardware support, §III-D).

The paper suggests integrating the notification infrastructure with the
hardware because the software matcher "increases register pressure and
code complexity and consequently may impair the application performance" —
it is the stated cause of the imperfect overlap for compute-bound
workloads (Fig. 7).  This ablation compares the calibrated software
matcher against free (hardware) matching and against a deliberately
expensive matcher.
"""

import dataclasses

import pytest

from repro.bench import Table
from repro.exec import RunSpec
from repro.hw import greina

STEPS = 20
NODES = 4
RPD = 52
NEWTON = 256

VARIANTS = {
    "hardware (free)": (0.0, 0.0),
    "calibrated sw":   (None, None),   # defaults
    "expensive sw":    (3.0e-6, 0.5e-6),
}


def _variant_cfg(match_base, match_per_entry):
    cfg = greina(NODES)
    if match_base is None:
        return cfg
    return dataclasses.replace(
        cfg, devicelib=dataclasses.replace(
            cfg.devicelib, match_base=match_base,
            match_per_entry=match_per_entry))


def _point(cfg, compute_iters, do_compute, do_exchange, label):
    return RunSpec("overlap_point",
                   dict(mode="newton", compute_iters=compute_iters,
                        do_compute=do_compute, do_exchange=do_exchange,
                        steps=STEPS, num_nodes=NODES,
                        ranks_per_device=RPD, cfg=cfg),
                   label=label)


def run_ablation(engine_sweep):
    specs = []
    for name, (base, per) in VARIANTS.items():
        cfg = _variant_cfg(base, per)
        specs += [
            _point(cfg, NEWTON, True, True, f"match:{name}:both"),
            _point(cfg, NEWTON, True, False, f"match:{name}:comp"),
            _point(cfg, 0, False, True, f"match:{name}:ex"),
        ]
    points = engine_sweep(specs)
    table = Table("Ablation - notification matching cost",
                  ["matcher", "overlap", "combined [ms]",
                   "exchange only [ms]"])
    results = {}
    for i, name in enumerate(VARIANTS):
        both, comp, ex = (p.elapsed for p in points[3 * i:3 * i + 3])
        hideable = max(comp + ex - max(comp, ex), 1e-12)
        frac = (comp + ex - both) / hideable
        results[name] = (frac, both, ex)
        table.add_row(name, frac, both * 1e3, ex * 1e3)
    table.add_note("compute-bound (Newton) workload; matching competes for "
                   "SM issue slots")
    return table, results


def test_ablation_matching(benchmark, report, engine_sweep):
    table, results = benchmark.pedantic(run_ablation, args=(engine_sweep,),
                                        rounds=1, iterations=1)
    report("ablation_matching", table.render())
    benchmark.extra_info["rows"] = [[r[0], float(r[1]), float(r[2]),
                                     float(r[3])]
                                    for r in table.rows]

    hw_frac, hw_time, hw_ex = results["hardware (free)"]
    sw_frac, sw_time, sw_ex = results["calibrated sw"]
    bad_frac, bad_time, bad_ex = results["expensive sw"]
    # The matcher sits on the notification latency path: cheaper matching
    # means faster exchange, monotonically.
    assert hw_ex <= sw_ex <= bad_ex
    # An expensive matcher destroys the overlap of compute-bound
    # workloads (the paper's §III-D motivation) and the end-to-end time.
    assert bad_frac < sw_frac - 0.3
    assert bad_time > 1.2 * sw_time
    # The calibrated matcher stays close to the hardware ideal end-to-end
    # (within 10%; the exact overlap fraction is schedule sensitive).
    assert sw_time < 1.1 * hw_time
