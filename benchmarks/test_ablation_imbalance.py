"""Ablation — dynamic load imbalance vs. overlap (the Fig. 9 explanation).

The paper: "the particle simulation is dynamic and during execution load
imbalances evolve ... We therefore do not expect an entirely flat scaling."
This ablation makes that causal claim testable: the same particle workload
with a uniform vs. a clustered initial distribution.  Balanced load lets
dCUDA hide more of the halo-exchange cost; imbalance erodes the hiding
(stragglers gate the notification chains).
"""

import pytest

from repro.apps.particles import ParticleWorkload
from repro.bench import Table
from repro.bench.weak_scaling import weak_scaling_specs, weak_scaling_table

DISTRIBUTIONS = ("uniform", "clustered")


def run_ablation(engine_sweep):
    # One flat spec list: both distributions' (1, 8)-node points in a
    # single engine sweep.  Fig. 9's own configuration (26 ranks/device,
    # 4 cells each): the metric below compares each variant against
    # itself across node counts, so the coarser dCUDA work granularity
    # cancels out.
    specs, wls = [], {}
    for dist in DISTRIBUTIONS:
        wl = ParticleWorkload(cells_per_node=104, particles_per_node=10400,
                              steps=10, distribution=dist)
        dist_specs, wls[dist] = weak_scaling_specs(
            "particles", (1, 8), wl=wl, verify=False)
        specs += dist_specs
    points = engine_sweep(specs)
    results = {}
    for i, dist in enumerate(DISTRIBUTIONS):
        rows = points[2 * i:2 * i + 2]
        table = weak_scaling_table("particles", wls[dist], rows)
        cells = {r[0]: r for r in table.rows}
        # Table cells are already in milliseconds.
        d1, m1 = cells[1][1] / 1e3, cells[1][2] / 1e3
        d8, m8, halo8 = (cells[8][1] / 1e3, cells[8][2] / 1e3,
                         cells[8][3] / 1e3)
        # Hidden fraction: how much of MPI-CUDA's scaling cost dCUDA
        # avoids.
        mpicuda_cost = m8 - m1
        dcuda_cost = d8 - d1
        hidden = 1.0 - dcuda_cost / max(mpicuda_cost, 1e-12)
        results[dist] = {"d1": d1, "d8": d8, "m1": m1, "m8": m8,
                         "halo8": halo8, "hidden": hidden}
    return results


def test_ablation_imbalance(benchmark, report, engine_sweep):
    results = benchmark.pedantic(run_ablation, args=(engine_sweep,),
                                 rounds=1, iterations=1)

    table = Table("Ablation - load imbalance vs overlap (particles)",
                  ["distribution", "dcuda 1 [ms]", "dcuda 8 [ms]",
                   "mpi-cuda 8 [ms]", "hidden scaling cost"])
    for dist, r in results.items():
        table.add_row(dist, r["d1"] * 1e3, r["d8"] * 1e3, r["m8"] * 1e3,
                      r["hidden"])
    table.add_note("hidden = 1 - dCUDA scaling cost / MPI-CUDA scaling "
                   "cost, 8 nodes")
    report("ablation_imbalance", table.render())
    benchmark.extra_info["rows"] = [[r[0]] + [float(v) for v in r[1:]]
                                    for r in table.rows]

    uni = results["uniform"]
    clu = results["clustered"]
    # With balanced load dCUDA at least matches MPI-CUDA at scale...
    assert uni["d8"] <= uni["m8"] * 1.02
    # ...and hides more of the scaling cost than under clustered load —
    # the paper's causal story for the non-flat Fig. 9 ("load imbalances
    # evolve ... we do not expect an entirely flat scaling").
    assert uni["hidden"] > clu["hidden"]
    # Clustering inflates both variants' absolute times (hot cells mean
    # quadratically more interactions).
    assert clu["d1"] > uni["d1"]
    assert clu["m8"] > uni["m8"]
