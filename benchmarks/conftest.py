"""Shared fixtures and report plumbing for the figure benchmarks.

Each ``test_figN_*`` module regenerates one figure of the paper's
evaluation section: it runs the simulation, prints the figure's data as a
text table (visible with ``pytest benchmarks/ --benchmark-only -s`` and
collected into ``benchmarks/results/``), attaches the rows to
pytest-benchmark's ``extra_info``, and asserts the paper's qualitative
shape (who wins, by roughly what factor, where crossovers fall).

pytest-benchmark measures wall-clock time of the simulation itself; the
scientifically meaningful output is the *simulated* time in the tables.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a table and persist it under benchmarks/results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
