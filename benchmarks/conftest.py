"""Shared fixtures and report plumbing for the figure benchmarks.

Each ``test_figN_*`` module regenerates one figure of the paper's
evaluation section: it runs the simulation, prints the figure's data as a
text table (visible with ``pytest benchmarks/ --benchmark-only -s`` and
collected into ``benchmarks/results/``), attaches the rows to
pytest-benchmark's ``extra_info``, and asserts the paper's qualitative
shape (who wins, by roughly what factor, where crossovers fall).

pytest-benchmark measures wall-clock time of the simulation itself; the
scientifically meaningful output is the *simulated* time in the tables.

Every figure's point loop goes through the :func:`engine_sweep` fixture —
one call into the deterministic sweep service (:mod:`repro.exec`) instead
of an inline ``for`` loop — so the whole benchmark suite can be
parallelized (``REPRO_EXEC_WORKERS=4``), moved onto another transport
(``REPRO_EXEC_EXECUTOR=subprocess``, or ``http`` with
``REPRO_EXEC_HOSTS=host:port,...``), or served from the result cache
(``REPRO_EXEC_CACHE=.repro-cache``) without touching any test, and the
tables are bit-identical every way.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.exec import ResultCache, default_workers, run_specs

RESULTS_DIR = Path(__file__).parent / "results"

#: Environment knob: cache directory for benchmark sweeps (no caching
#: when unset — each run simulates from scratch).
CACHE_ENV = "REPRO_EXEC_CACHE"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def exec_workers() -> int:
    """Engine worker count for benchmark sweeps ($REPRO_EXEC_WORKERS)."""
    return default_workers()


@pytest.fixture(scope="session")
def sweep_cache():
    """Shared result cache when $REPRO_EXEC_CACHE names a directory."""
    cache_dir = os.environ.get(CACHE_ENV, "").strip()
    return ResultCache(cache_dir) if cache_dir else None


@pytest.fixture
def engine_sweep(exec_workers, sweep_cache):
    """Run a spec list through the sweep service; returns the result list.

    Results come back in spec order and are bit-identical for any
    executor and worker count, so the figure assertions downstream never
    depend on how the sweep was executed.  The transport is inherited
    from ``$REPRO_EXEC_EXECUTOR`` / ``$REPRO_EXEC_HOSTS`` via
    :func:`repro.exec.run_specs`'s defaults.
    """

    def _sweep(specs, shared=None):
        return run_specs(specs, workers=exec_workers, cache=sweep_cache,
                         shared=shared).results

    return _sweep


@pytest.fixture
def report(results_dir):
    """Print a table and persist it under benchmarks/results/<name>.txt."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
