"""Link, fabric, and GPU-block faults end-to-end over the diffusion app."""

import numpy as np
import pytest

from repro.apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from repro.faults import FaultEvent, FaultPlane, FaultsConfig
from repro.hw import Cluster, greina
from repro.sim import Environment
from repro.sim.link import FairShareLink

WL = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)


@pytest.fixture(scope="module")
def baseline():
    elapsed, field, _ = run_dcuda_diffusion(Cluster(greina(2)), WL,
                                            ranks_per_device=2)
    return elapsed, field


def run_with(*events):
    cfg = FaultsConfig(enabled=True, events=tuple(events))
    cluster = Cluster(greina(2, faults=cfg))
    elapsed, field, _ = run_dcuda_diffusion(cluster, WL, ranks_per_device=2)
    return elapsed, field, cluster.faults


# ------------------------------------------------------- fair-share link ----
def test_fair_share_link_degradation_slows_transfer():
    def one_transfer(plane):
        env = Environment()
        link = FairShareLink(env, bandwidth=1e9, name="memlink",
                             faults=plane(env) if plane else None)
        done = {}

        def flow(env):
            yield link.transfer(1e6)
            done["t"] = env.now

        env.process(flow(env))
        env.run()
        return done["t"]

    clean = one_transfer(None)

    def degraded(env):
        cfg = FaultsConfig(enabled=True, events=(
            FaultEvent("link_degrade", start=0.0, duration=1.0,
                       target="memlink", factor=2.0),))
        return FaultPlane(env, cfg, 1)

    assert one_transfer(degraded) == pytest.approx(2.0 * clean)


# ------------------------------------------------------------- end-to-end ---
def test_fabric_degrade_slows_run_but_keeps_numerics(baseline):
    base_elapsed, base_field = baseline
    elapsed, field, plane = run_with(
        FaultEvent("link_degrade", start=0.0, duration=1.0, target="fabric",
                   factor=4.0))
    assert plane.injections  # the window actually hit fabric NICs
    assert any(k == "link_degrade" for k, _ in plane.injections)
    assert elapsed > base_elapsed
    assert np.array_equal(field, base_field)


def test_burst_loss_adds_retransmit_delay(baseline):
    base_elapsed, base_field = baseline
    elapsed, field, plane = run_with(
        FaultEvent("burst_loss", start=0.0, duration=1.0, count=4))
    assert plane.total_injections() == 4
    assert elapsed > base_elapsed
    assert np.array_equal(field, base_field)


def test_partition_window_delays_wire_but_heals(baseline):
    base_elapsed, base_field = baseline
    elapsed, field, plane = run_with(
        FaultEvent("partition", start=1e-5, duration=4e-5))
    assert any(k == "partition" for k, _ in plane.injections)
    assert elapsed > base_elapsed
    assert np.array_equal(field, base_field)


def test_block_stall_slows_one_rank(baseline):
    base_elapsed, base_field = baseline
    elapsed, field, plane = run_with(
        FaultEvent("block_stall", start=0.0, duration=1.0,
                   target="node0.gpu.b0", factor=50.0))
    assert any(site.startswith("node0.gpu.b0")
               for k, site in plane.injections if k == "block_stall")
    assert elapsed > base_elapsed
    assert np.array_equal(field, base_field)


def test_window_outside_run_injects_nothing(baseline):
    base_elapsed, base_field = baseline
    elapsed, field, plane = run_with(
        FaultEvent("link_degrade", start=1.0, duration=1.0, factor=9.0))
    assert plane.total_injections() == 0
    assert elapsed == base_elapsed
    assert np.array_equal(field, base_field)
