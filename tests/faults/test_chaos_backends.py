"""The chaos contract holds on every communication backend.

The 50-seed contract of ``test_chaos.py`` — complete with bit-identical
numerics or fail with a diagnosed typed error, never hang — was written
against the proxy backend.  This module re-runs the seeded sweep with
the backend axis striped across the seeds (seed *i* runs on backend
``COMM_BACKENDS[i % 3]``), so every backend faces every fault kind the
plans can draw: the device-initiated and stream-triggered data paths
must be exactly as watchdogged and as typed-error-disciplined as the
host proxy they bypass.
"""

import pytest

from repro.apps.diffusion import DiffusionWorkload
from repro.faults import FaultsConfig, run_chaos_case
from repro.hw.config import COMM_BACKENDS

WL = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=1)
SEEDS = range(50)


def _backend_of(seed: int) -> str:
    return COMM_BACKENDS[seed % len(COMM_BACKENDS)]


@pytest.fixture(scope="module")
def sweep():
    return [run_chaos_case(seed=seed, num_nodes=2, ranks_per_device=2,
                           wl=WL, comm_backend=_backend_of(seed))
            for seed in SEEDS]


def test_striping_covers_every_backend_with_faults():
    """Each backend gets a fair share of seeds, and the plans really
    fire on each of them (no trivially fault-free stripe)."""
    per_backend = {b: [s for s in SEEDS if _backend_of(s) == b]
                   for b in COMM_BACKENDS}
    assert all(len(seeds) >= 16 for seeds in per_backend.values())


def test_every_backend_satisfies_the_chaos_contract(sweep):
    dirty = [(seed, o) for seed, o in zip(SEEDS, sweep) if not o.clean]
    assert not dirty, (
        f"{len(dirty)} run(s) violated the chaos contract on a backend: "
        f"{[(s, _backend_of(s), o.status, o.error) for s, o in dirty]}")


def test_faults_inject_on_every_backend(sweep):
    for backend in COMM_BACKENDS:
        injected = [o for seed, o in zip(SEEDS, sweep)
                    if _backend_of(seed) == backend and o.injections > 0]
        assert len(injected) >= 10, (
            f"only {len(injected)} seeds injected faults on the "
            f"{backend} backend — the plan horizon no longer matches")


def test_typed_failures_stay_typed_on_every_backend(sweep):
    for seed, o in zip(SEEDS, sweep):
        if o.status != "completed":
            assert o.status in ("DCudaTimeoutError", "DCudaFaultError"), (
                f"seed {seed} on {_backend_of(seed)}: untyped {o.status}")
            assert o.error_code in ("DCUDA_TIMEOUT", "DCUDA_FAULT")


@pytest.mark.parametrize("backend", COMM_BACKENDS[1:])
def test_harsh_budget_is_typed_on_new_backends(backend):
    """Force the typed-error half of the contract on each new backend:
    a tight recovery budget must produce diagnosed failures, not hangs
    or untyped exceptions."""
    outcomes = [
        run_chaos_case(cfg=FaultsConfig(enabled=True, seed=seed,
                                        plan_size=30, max_retries=1,
                                        handshake_timeout=2e-4),
                       wl=WL, comm_backend=backend)
        for seed in range(8)
    ]
    assert all(o.clean for o in outcomes)
    for o in outcomes:
        if o.status != "completed":
            assert o.error_code in ("DCUDA_TIMEOUT", "DCUDA_FAULT")
            assert "t=" in o.error
