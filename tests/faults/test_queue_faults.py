"""Hardened CircularQueue under injected faults: drop/dup/starve/timeout."""

import pytest

from repro.errors import DCudaFaultError, DCudaTimeoutError
from repro.faults import FaultEvent, FaultPlane, FaultsConfig
from repro.hw import PCIeConfig, PCIeLink
from repro.runtime import CircularQueue
from repro.sim import Environment


def make_queue(*events, size=4, name="cmd:r0", **cfg_kw):
    env = Environment()
    cfg = FaultsConfig(enabled=True, events=tuple(events), **cfg_kw)
    plane = FaultPlane(env, cfg, num_nodes=1)
    link = PCIeLink(env, PCIeConfig())
    queue = CircularQueue(env, size, link, name=name, faults=plane)
    return env, plane, queue


def pump(env, queue, n, got):
    def producer(env):
        for i in range(n):
            yield from queue.enqueue(i)

    def consumer(env):
        for _ in range(n):
            item = yield from queue.dequeue()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))


# ------------------------------------------------------------ drop path -----
def test_dropped_writes_are_redelivered_in_order():
    env, plane, q = make_queue(
        FaultEvent("queue_drop", start=0.0, duration=1.0, target="cmd:r0",
                   count=2))
    got = []
    pump(env, q, 8, got)
    env.run()
    assert got == list(range(8))
    assert q.stats.dropped_writes == 2
    assert q.stats.recovered >= 1
    assert plane.injections[("queue_drop", "cmd:r0")] == 2


def test_drop_budget_exhaustion_raises_fault_error():
    env, _, q = make_queue(
        FaultEvent("queue_drop", start=0.0, duration=1.0, target="cmd:r0",
                   count=500),
        max_retries=2)
    got = []
    pump(env, q, 2, got)
    with pytest.raises(DCudaFaultError, match="redelivery budget"):
        env.run()


def test_fault_error_carries_sim_time():
    env, _, q = make_queue(
        FaultEvent("queue_drop", start=0.0, duration=1.0, target="cmd:r0",
                   count=500),
        max_retries=1)
    pump(env, q, 1, [])
    with pytest.raises(DCudaFaultError) as info:
        env.run()
    assert info.value.sim_time is not None
    assert info.value.code == "DCUDA_FAULT"


# ------------------------------------------------------- duplicate path -----
def test_duplicates_are_discarded_by_sequence_check():
    env, plane, q = make_queue(
        FaultEvent("queue_dup", start=0.0, duration=1.0, target="cmd:r0",
                   count=3))
    got = []
    pump(env, q, 8, got)
    env.run()
    assert got == list(range(8))  # no double delivery
    assert q.stats.duplicates_dropped == 3
    assert plane.injections[("queue_dup", "cmd:r0")] == 3


# ------------------------------------------------------ credit starvation ---
def test_starvation_window_recovers_with_backoff():
    # Queue of 2: the third enqueue needs a credit reload, which starves
    # until t=3e-6; exponential backoff retries until the window closes.
    env, plane, q = make_queue(
        FaultEvent("credit_starve", start=0.0, duration=3e-6,
                   target="cmd:r0"),
        size=2)
    got = []
    pump(env, q, 6, got)
    env.run()
    assert got == list(range(6))
    assert q.stats.starved_reloads >= 1
    assert q.stats.retries >= 1


def test_permanent_starvation_raises_timeout_error():
    env, _, q = make_queue(
        FaultEvent("credit_starve", start=0.0, duration=10.0,
                   target="cmd:r0"),
        size=2, max_retries=3)
    got = []
    pump(env, q, 6, got)
    with pytest.raises(DCudaTimeoutError, match="handshake"):
        env.run()


# --------------------------------------------------------- dequeue_timeout --
def test_dequeue_timeout_returns_entry_when_available():
    env, _, q = make_queue()
    out = {}

    def producer(env):
        yield from q.enqueue("payload")

    def consumer(env):
        out["item"] = yield from q.dequeue_timeout(1.0, rank=0)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out["item"] == "payload"


def test_dequeue_timeout_raises_with_rank_context():
    env, _, q = make_queue()

    def consumer(env):
        yield from q.dequeue_timeout(1e-5, rank=3, what="cmd ack")

    env.process(consumer(env))
    with pytest.raises(DCudaTimeoutError) as info:
        env.run()
    assert info.value.rank == 3
    assert info.value.sim_time == pytest.approx(1e-5)
    assert "cmd ack" in str(info.value)


def test_untargeted_queue_is_untouched():
    """Faults aimed at another queue leave this one on the clean path."""
    env, plane, q = make_queue(
        FaultEvent("queue_drop", start=0.0, duration=1.0, target="ntf:r9",
                   count=5))
    got = []
    pump(env, q, 8, got)
    env.run()
    assert got == list(range(8))
    assert q.stats.dropped_writes == 0
    assert plane.total_injections() == 0
