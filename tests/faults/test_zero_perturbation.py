"""Fault plane must not perturb the simulation when off — or inert.

Two gates, mirroring the observability zero-perturbation suite:

1. **Golden timestamps.**  The schedule-preservation fixture (captured
   before the fault plane existed, ``faults=None``) must replay bit-for-bit
   — and it must *also* replay bit-for-bit with an inert **enabled** plane
   forced onto every workload: the hardening code paths (bounded waits,
   sequence validation, watchdog) may not move a single event when no
   fault fires.

2. **Direct run comparison.**  Diffusion with ``faults=None`` vs an inert
   enabled plane: identical elapsed time, output bits, and hardware
   counters.  ``==`` on IEEE-754 doubles, never ``pytest.approx``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from repro.bench.golden import GOLDEN_WORKLOADS
from repro.faults import FaultsConfig, force_faults
from repro.hw import Cluster, greina

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_timestamps.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("fig", sorted(GOLDEN_WORKLOADS))
def test_golden_timestamps_with_faults_none(fig, golden):
    """The default (no plane) replays the fixture exactly."""
    current = GOLDEN_WORKLOADS[fig]()
    expected = {k: v for k, v in golden.items() if k.startswith(fig + ".")}
    assert expected, f"fixture has no entries for {fig}; regenerate it"
    assert {k: current[k] for k in expected} == expected


@pytest.mark.parametrize("fig", sorted(GOLDEN_WORKLOADS))
def test_golden_timestamps_with_inert_plane(fig, golden):
    """An enabled-but-empty plane may not move a single timestamp."""
    with force_faults(FaultsConfig(enabled=True)):
        current = GOLDEN_WORKLOADS[fig]()
    expected = {k: v for k, v in golden.items() if k.startswith(fig + ".")}
    mismatches = {
        k: {"fixture": expected[k], "with_faults": current[k]}
        for k in expected if current[k] != expected[k]
    }
    assert not mismatches, (
        f"{len(mismatches)} simulated timestamp(s) moved with an inert "
        f"fault plane — hardening is perturbing the schedule: {mismatches}")


def _run_diffusion(faults_cfg):
    cluster = Cluster(greina(2, faults=faults_cfg))
    wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
    elapsed, field, _ = run_dcuda_diffusion(cluster, wl, ranks_per_device=2)
    counters = {}
    for node in cluster.nodes:
        pcie = node.pcie
        counters[f"{node.name}.pcie.mapped_writes"] = pcie.mapped_writes
        counters[f"{node.name}.pcie.mapped_reads"] = pcie.mapped_reads
        counters[f"{node.name}.pcie.dma_bytes"] = pcie.dma_bytes
        counters[f"{node.name}.mem.bytes"] = \
            node.device.memory.bytes_transferred
    return elapsed, field, counters, cluster


def test_faults_off_and_inert_runs_are_bit_identical():
    base_elapsed, base_field, base_counters, off = _run_diffusion(None)
    inert_elapsed, inert_field, inert_counters, on = _run_diffusion(
        FaultsConfig(enabled=True))
    assert off.faults is None
    assert on.faults is not None
    assert on.faults.total_injections() == 0
    assert inert_elapsed == base_elapsed
    assert np.array_equal(inert_field, base_field)
    assert inert_counters == base_counters


def test_hardening_counters_stay_zero_without_injection():
    cluster = Cluster(greina(2, faults=FaultsConfig(enabled=True)))
    wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
    _, _, res = run_dcuda_diffusion(cluster, wl, ranks_per_device=2)
    for rank in range(res.runtime.total_ranks):
        state = res.runtime.state_of(rank)
        for q in (state.cmd_queue, state.ack_queue, state.notif_queue,
                  state.log_queue):
            values = (q.stats.dropped_writes, q.stats.duplicates_dropped,
                      q.stats.recovered, q.stats.retries,
                      q.stats.starved_reloads)
            assert not any(values), \
                f"{q.name} moved hardening counters: {values}"
