"""The DCudaError hierarchy: codes, remediation, structured context."""

import pytest

from repro.errors import (
    ERROR_TABLE,
    DCudaError,
    DCudaFaultError,
    DCudaProtocolError,
    DCudaTimeoutError,
    DCudaUsageError,
    DCudaWorkerError,
)

ALL_CLASSES = (DCudaError, DCudaProtocolError, DCudaUsageError,
               DCudaTimeoutError, DCudaFaultError, DCudaWorkerError)


def test_hierarchy():
    for cls in ALL_CLASSES:
        assert issubclass(cls, DCudaError)
        assert issubclass(cls, RuntimeError)
    assert not issubclass(DCudaTimeoutError, DCudaFaultError)
    assert not issubclass(DCudaFaultError, DCudaTimeoutError)


def test_every_class_has_code_and_remediation():
    codes = set()
    for cls in ALL_CLASSES:
        assert cls.code.startswith("DCUDA")
        assert cls.remediation
        codes.add(cls.code)
    assert len(codes) == len(ALL_CLASSES), "codes must be unique"


def test_error_table_covers_all_classes():
    assert set(ERROR_TABLE) == {cls.code for cls in ALL_CLASSES}
    for cls in ALL_CLASSES:
        name, remediation = ERROR_TABLE[cls.code]
        assert name == cls.__name__
        assert remediation == cls.remediation


def test_context_rendering():
    err = DCudaTimeoutError("stuck", rank=3, sim_time=1.25e-4)
    assert err.rank == 3 and err.sim_time == 1.25e-4
    assert "rank=3" in str(err)
    assert "t=1.25" in str(err)
    assert str(err).startswith("stuck")


def test_no_context_keeps_plain_message():
    err = DCudaUsageError("bad call")
    assert str(err) == "bad call"
    assert err.context() == ""


def test_partial_context():
    assert "t=" in str(DCudaFaultError("x", sim_time=1.0))
    assert "rank=" not in str(DCudaFaultError("x", sim_time=1.0))
    assert "rank=7" in str(DCudaError("x", rank=7))


def test_catchable_as_base_class():
    with pytest.raises(DCudaError):
        raise DCudaFaultError("injected")
    with pytest.raises(RuntimeError):
        raise DCudaTimeoutError("late")


def test_dcuda_package_reexports_same_objects():
    import repro.dcuda as dcuda
    import repro.dcuda.errors as derr

    for cls in ALL_CLASSES:
        assert getattr(dcuda, cls.__name__) is cls
        assert getattr(derr, cls.__name__) is cls
    assert dcuda.ERROR_TABLE is ERROR_TABLE
