"""FaultPlane unit tests: gating, matching, windows, deterministic plans."""

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlane,
    FaultsConfig,
    force_faults,
)
from repro.faults.config import default_faults
from repro.faults.plane import _matches, _node_matches
from repro.sim import Environment


def make_plane(*events, seed=None, num_nodes=2, **cfg_kw):
    env = Environment()
    cfg = FaultsConfig(enabled=True, events=tuple(events), seed=seed,
                       **cfg_kw)
    return env, FaultPlane(env, cfg, num_nodes)


# --------------------------------------------------------------- gating -----
def test_build_returns_none_when_off():
    env = Environment()
    assert FaultPlane.build(env, None, 2) is None
    assert FaultPlane.build(env, FaultsConfig(enabled=False), 2) is None


def test_build_returns_plane_when_enabled():
    env = Environment()
    plane = FaultPlane.build(env, FaultsConfig(enabled=True), 2)
    assert plane is not None
    assert plane.schedule == ()
    assert plane.total_injections() == 0


def test_default_faults_is_none_and_force_restores():
    assert default_faults() is None
    cfg = FaultsConfig(enabled=True, seed=9)
    with force_faults(cfg):
        assert default_faults() is cfg
    assert default_faults() is None


# ------------------------------------------------------------- matching -----
def test_target_matching_semantics():
    assert _matches(None, "anything")
    assert _matches("cmd:r2", "cmd:r2")
    assert _matches("node0", "node0.gpu.memlink")     # substring
    assert not _matches("cmd:r2", "cmd:r12")
    assert _matches(3, "ntf:r3")                       # int -> rank queues
    assert not _matches(3, "ntf:r13")
    assert _matches(1, "node1.gpu.b2")                 # int -> node parts
    assert not _matches(0, "node1.gpu.b2")


def test_node_matching_semantics():
    assert _node_matches(None, 0, 1)
    assert _node_matches(1, 0, 1) and _node_matches(0, 0, 1)
    assert not _node_matches(2, 0, 1)
    assert _node_matches("node1", 0, 1)
    assert _node_matches("0->1", 0, 1)
    assert not _node_matches("1->0", 0, 1)


# --------------------------------------------------------------- windows ----
def test_degrade_window_only_active_inside():
    env, plane = make_plane(
        FaultEvent("link_degrade", start=1.0, duration=1.0, target="fabric",
                   factor=3.0))
    assert plane.degrade_factor("fabric.nic0", 0.5) == 1.0
    assert plane.degrade_factor("fabric.nic0", 1.5) == 3.0
    assert plane.degrade_factor("fabric.nic0", 2.5) == 1.0
    assert plane.degrade_factor("node0.gpu.memlink", 1.5) == 1.0  # no match
    assert plane.injections == {("link_degrade", "fabric.nic0"): 1}


def test_overlapping_degrade_windows_multiply():
    env, plane = make_plane(
        FaultEvent("link_degrade", start=0.0, duration=2.0, factor=2.0),
        FaultEvent("link_degrade", start=1.0, duration=2.0, factor=3.0))
    assert plane.degrade_factor("any", 1.5) == 6.0


def test_block_stall_factor():
    env, plane = make_plane(
        FaultEvent("block_stall", start=0.0, duration=1.0,
                   target="node0.gpu.b1", factor=4.0))
    assert plane.block_stall_factor("node0.gpu.b1", 0.5) == 4.0
    assert plane.block_stall_factor("node0.gpu.b0", 0.5) == 1.0


def test_partition_hold_returns_time_to_heal():
    env, plane = make_plane(
        FaultEvent("partition", start=1.0, duration=3.0, target=0))
    assert plane.partition_hold(0, 1, 0.5) == 0.0
    assert plane.partition_hold(0, 1, 2.0) == 2.0   # heals at t=4
    assert plane.partition_hold(1, 2, 2.0) == 0.0   # node 0 not involved


def test_credit_starved_window():
    env, plane = make_plane(
        FaultEvent("credit_starve", start=0.0, duration=1.0, target="cmd:r0"))
    assert plane.credit_starved("cmd:r0", 0.5)
    assert not plane.credit_starved("cmd:r1", 0.5)
    assert not plane.credit_starved("cmd:r0", 1.5)


# ---------------------------------------------------- consuming queries -----
def test_queue_drop_consumes_count():
    env, plane = make_plane(
        FaultEvent("queue_drop", start=0.0, duration=10.0, target="cmd:r0",
                   count=2))
    assert plane.queue_drop("cmd:r0", 1.0)
    assert plane.queue_drop("cmd:r0", 2.0)
    assert not plane.queue_drop("cmd:r0", 3.0)  # budget spent
    assert plane.injections[("queue_drop", "cmd:r0")] == 2


def test_discrete_fault_stays_armed_past_window_end():
    # A zero-duration drop must still hit the *next* matching operation.
    env, plane = make_plane(
        FaultEvent("queue_drop", start=1.0, duration=0.0, target="ntf:r1"))
    assert not plane.queue_drop("ntf:r1", 0.5)   # before start
    assert plane.queue_drop("ntf:r1", 5.0)       # armed until spent
    assert not plane.queue_drop("ntf:r1", 6.0)


def test_loss_retries_consume_count():
    env, plane = make_plane(
        FaultEvent("burst_loss", start=0.0, duration=1.0, count=3))
    assert plane.loss_retries(0, 1, 0.5) == 1
    assert plane.loss_retries(0, 1, 0.5) == 1
    assert plane.loss_retries(0, 1, 0.5) == 1
    assert plane.loss_retries(0, 1, 0.5) == 0


# ------------------------------------------------------------ random plan ---
def test_random_plan_deterministic_per_seed():
    _, a = make_plane(seed=42)
    _, b = make_plane(seed=42)
    _, c = make_plane(seed=43)
    assert a.schedule == b.schedule
    assert a.schedule != c.schedule
    assert len(a.schedule) == FaultsConfig().plan_size


def test_random_plan_respects_plan_size_and_horizon():
    _, plane = make_plane(seed=7, plan_size=25, horizon=1e-3)
    assert len(plane.schedule) == 25
    for ev in plane.schedule:
        assert 0.0 <= ev.start <= 1e-3
        assert ev.kind in FAULT_KINDS


def test_enabled_without_seed_or_events_is_inert():
    _, plane = make_plane()
    assert plane.schedule == ()


def test_explicit_events_and_seed_combine():
    ev = FaultEvent("queue_dup", target="ack:r0")
    _, plane = make_plane(ev, seed=1)
    assert plane.schedule[0] == ev
    assert len(plane.schedule) == 1 + FaultsConfig().plan_size


# ------------------------------------------------------------- recording ----
def test_note_records_log_and_counters():
    env, plane = make_plane(
        FaultEvent("queue_dup", start=0.0, duration=1.0, count=5))
    plane.queue_dup("ack:r0", 0.1)
    plane.queue_dup("ack:r0", 0.2)
    assert plane.total_injections() == 2
    assert plane.injections[("queue_dup", "ack:r0")] == 2
    assert [(k, s) for _, k, s in plane.log] == [("queue_dup", "ack:r0")] * 2
