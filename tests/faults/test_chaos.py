"""The chaos contract: 50+ seeded schedules, never a hang.

Every seeded run over the diffusion mini-app must either complete with
numerics bit-identical to a fault-free run, or fail with a diagnosed typed
error (:class:`DCudaFaultError` / :class:`DCudaTimeoutError`) carrying
simulated-time context.  Hangs are structurally impossible: the launch is
guarded by a simulated-time watchdog, and every bounded wait raises on
expiry.  Any other exception type escapes :func:`run_chaos_case` and fails
the test — that is the harness-bug detector.
"""

import numpy as np
import pytest

from repro.apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from repro.errors import DCudaError, DCudaTimeoutError
from repro.faults import (
    ChaosOutcome,
    FaultEvent,
    FaultsConfig,
    chaos_sweep,
    fault_report,
    run_chaos_case,
)
from repro.hw import Cluster, greina

WL = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=1)
SEEDS = range(50)


@pytest.fixture(scope="module")
def sweep():
    return chaos_sweep(SEEDS, num_nodes=2, ranks_per_device=2, wl=WL)


def test_sweep_covers_fifty_seeds(sweep):
    assert len(sweep) == 50
    assert sorted(o.seed for o in sweep) == list(SEEDS)


def test_every_seeded_run_satisfies_the_contract(sweep):
    dirty = [o for o in sweep if not o.clean]
    assert not dirty, (
        f"{len(dirty)} run(s) violated the chaos contract "
        f"(diverged numerics or untyped failure): "
        f"{[(o.seed, o.status, o.error) for o in dirty]}")


def test_sweep_actually_injects_faults(sweep):
    """Guard against the trivial pass: the plans must really fire."""
    injected = [o for o in sweep if o.injections > 0]
    assert len(injected) >= 40, (
        f"only {len(injected)}/50 seeds injected anything — the random "
        f"plan horizon no longer matches the workload")
    assert sum(o.injections for o in sweep) > 100


def test_typed_failures_classify_as_clean(sweep):
    """Diagnosed failures (if any seed produces one) satisfy the contract."""
    for o in sweep:
        if o.status != "completed":
            assert o.status in ("DCudaTimeoutError", "DCudaFaultError")
            assert o.error_code in ("DCUDA_TIMEOUT", "DCUDA_FAULT")
            assert o.clean


def test_harsh_budget_produces_typed_failures():
    """With a tight recovery budget some seeds must fail *diagnosed* —
    exercising the typed-error half of the contract."""
    outcomes = [
        run_chaos_case(cfg=FaultsConfig(enabled=True, seed=seed,
                                        plan_size=30, max_retries=1,
                                        handshake_timeout=2e-4),
                       wl=WL)
        for seed in range(10)
    ]
    assert all(o.clean for o in outcomes)
    failed = [o for o in outcomes if o.status != "completed"]
    assert failed, "harsh sweep produced no typed failures to verify"
    for o in failed:
        assert o.error_code in ("DCUDA_TIMEOUT", "DCUDA_FAULT")
        assert "t=" in o.error  # simulated-time context rendered


def test_outcome_clean_logic():
    ok = ChaosOutcome(seed=0, status="completed", elapsed=1.0,
                      injections=3, numerics_equal=True)
    diverged = ChaosOutcome(seed=0, status="completed", elapsed=1.0,
                            injections=3, numerics_equal=False)
    typed = ChaosOutcome(seed=0, status="DCudaFaultError", elapsed=1.0,
                         injections=3, numerics_equal=None)
    untyped = ChaosOutcome(seed=0, status="ValueError", elapsed=1.0,
                           injections=3, numerics_equal=None)
    assert ok.clean and typed.clean
    assert not diverged.clean and not untyped.clean


# ------------------------------------------------------------- watchdog -----
def _hanging_kernel(rank):
    win = yield from rank.win_create(np.zeros(4))
    # Wait for a notification nobody will ever send.
    yield from rank.wait_notifications(win, source=0, tag=99, count=1)
    yield from rank.finish()


def test_watchdog_turns_hang_into_timeout_error():
    from repro.dcuda import launch

    cfg = FaultsConfig(enabled=True, handshake_timeout=1e9, watchdog=1e-3)
    cluster = Cluster(greina(1, faults=cfg))
    with pytest.raises(DCudaTimeoutError, match="watchdog") as info:
        launch(cluster, _hanging_kernel, ranks_per_device=1)
    assert info.value.sim_time is not None


def test_notification_wait_timeout_carries_rank():
    from repro.dcuda import launch

    cfg = FaultsConfig(enabled=True, handshake_timeout=5e-5)
    cluster = Cluster(greina(1, faults=cfg))
    with pytest.raises(DCudaTimeoutError, match="wait_notifications") as info:
        launch(cluster, _hanging_kernel, ranks_per_device=1)
    assert info.value.rank == 0
    assert info.value.sim_time >= 5e-5


def test_without_fault_plane_hang_diagnosis_stays_runtime_error():
    """Legacy behaviour preserved: no plane, no typed errors."""
    from repro.dcuda import launch

    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        got = yield from rank.test_notifications(win, source=0, tag=1)
        assert got == 0
        yield from rank.win_free(win)
        yield from rank.finish()

    res = launch(Cluster(greina(1)), kernel, ranks_per_device=1)
    assert res.elapsed > 0


# ---------------------------------------------------------------- report ----
def test_fault_report_renders_injections_and_errors():
    cfg = FaultsConfig(enabled=True, seed=3)
    cluster = Cluster(greina(2, faults=cfg))
    _, _, res = run_dcuda_diffusion(cluster, WL, ranks_per_device=2)
    text = fault_report(cluster.faults, res.runtime)
    assert "Fault injections" in text
    assert "Error code table" in text
    assert "DCUDA_TIMEOUT" in text
    assert cluster.faults.total_injections() > 0


def test_fault_report_without_plane():
    assert "no fault plane" in fault_report(None)


def test_faults_counters_reach_obs_registry():
    from repro.obs import ObsConfig

    cfg = FaultsConfig(enabled=True, events=(
        FaultEvent("burst_loss", start=0.0, duration=1.0, count=2),))
    cluster = Cluster(greina(2, faults=cfg, obs=ObsConfig(enabled=True)))
    run_dcuda_diffusion(cluster, WL, ranks_per_device=2)
    snapshot = cluster.obs.registry.snapshot()
    assert snapshot.get("faults.burst_loss") == 2
