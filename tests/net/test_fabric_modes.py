"""Additional fabric coverage: transfer-mode costs and concurrency."""

import pytest

from repro.hw import FabricConfig
from repro.net import TRANSFER_MODES, Fabric
from repro.sim import Environment


def test_transfer_modes_constant():
    assert set(TRANSFER_MODES) == {"host", "d2d"}


def test_bandwidth_for_modes():
    env = Environment()
    cfg = FabricConfig(bandwidth=6e9, d2d_bandwidth=2e9)
    fab = Fabric(env, cfg, 2)
    assert fab.bandwidth_for("host") == 6e9
    assert fab.bandwidth_for("d2d") == 2e9
    with pytest.raises(ValueError, match="unknown transfer mode"):
        fab.bandwidth_for("warp")


def test_serialization_time():
    env = Environment()
    fab = Fabric(env, FabricConfig(bandwidth=100.0, d2d_bandwidth=10.0), 2)
    assert fab.serialization_time(500.0, "host") == pytest.approx(5.0)
    assert fab.serialization_time(500.0, "d2d") == pytest.approx(50.0)


def test_messages_to_distinct_destinations_share_sender_nic():
    """The sender NIC is the serialization point, regardless of where the
    messages go."""
    env = Environment()
    fab = Fabric(env, FabricConfig(latency=0.0, injection_overhead=1.0,
                                   bandwidth=1e12), 3)
    done = []

    def proc(env, dst):
        yield fab.transmit(0, dst, 0.0)
        done.append(env.now)

    env.process(proc(env, 1))
    env.process(proc(env, 2))
    env.run()
    assert sorted(done) == [pytest.approx(1.0), pytest.approx(2.0)]


def test_bidirectional_messages_do_not_serialize():
    """Opposite directions use different NICs: full duplex."""
    env = Environment()
    fab = Fabric(env, FabricConfig(latency=0.0, injection_overhead=1.0,
                                   bandwidth=1e12), 2)
    done = []

    def proc(env, src, dst):
        yield fab.transmit(src, dst, 0.0)
        done.append(env.now)

    env.process(proc(env, 0, 1))
    env.process(proc(env, 1, 0))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]
