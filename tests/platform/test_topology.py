"""Topology schema: validation, derived shape, and builders."""

import pytest

from repro.errors import DCudaUsageError
from repro.platform import (
    DEFAULT_INTRA_LINK,
    INTERCONNECT_KINDS,
    Interconnect,
    LinkSpec,
    NodeClass,
    Topology,
    fat_tree,
    flat,
    ring,
)


class TestLinkSpec:
    def test_valid(self):
        spec = LinkSpec(bandwidth=1e9, latency=1e-6)
        assert spec.bandwidth == 1e9

    def test_zero_latency_allowed(self):
        assert LinkSpec(bandwidth=1e9, latency=0.0).latency == 0.0

    @pytest.mark.parametrize("bandwidth", [0.0, -1e9])
    def test_rejects_non_positive_bandwidth(self, bandwidth):
        with pytest.raises(DCudaUsageError, match="bandwidth"):
            LinkSpec(bandwidth=bandwidth, latency=1e-6)

    def test_rejects_negative_latency(self):
        with pytest.raises(DCudaUsageError, match="latency"):
            LinkSpec(bandwidth=1e9, latency=-1e-6)

    def test_default_intra_link_matches_legacy_loopback(self):
        # The former hard-coded fabric constants; the golden fixtures
        # depend on these exact values.
        assert DEFAULT_INTRA_LINK.bandwidth == 12.0e9
        assert DEFAULT_INTRA_LINK.latency == 0.3e-6


class TestNodeClass:
    def test_defaults(self):
        nc = NodeClass()
        assert (nc.count, nc.gpus_per_node) == (1, 1)
        assert nc.gpu is None and nc.pcie is None and nc.intra_link is None

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(count=0),
        dict(count=-1),
        dict(gpus_per_node=0),
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(DCudaUsageError):
            NodeClass(**kwargs)


class TestInterconnect:
    def test_kinds_constant(self):
        assert INTERCONNECT_KINDS == ("flat", "fat_tree", "ring")

    def test_rejects_unknown_kind(self):
        with pytest.raises(DCudaUsageError, match="kind"):
            Interconnect("torus")

    def test_rejects_bad_oversubscription(self):
        with pytest.raises(DCudaUsageError, match="oversubscription"):
            Interconnect("fat_tree", oversubscription=0.0)

    def test_rejects_bad_radix(self):
        with pytest.raises(DCudaUsageError, match="radix"):
            Interconnect("fat_tree", radix=0)


class TestTopology:
    def test_rejects_empty_classes(self):
        with pytest.raises(DCudaUsageError, match="at least one"):
            Topology(node_classes=())

    def test_rejects_duplicate_class_names(self):
        with pytest.raises(DCudaUsageError, match="duplicate"):
            Topology(node_classes=(NodeClass(name="a"), NodeClass(name="a")))

    def test_rejects_non_nodeclass_entries(self):
        with pytest.raises(DCudaUsageError):
            Topology(node_classes=("fat",))

    def test_shape_sums_across_classes(self):
        topo = Topology(node_classes=(
            NodeClass(name="dense", count=2, gpus_per_node=4),
            NodeClass(name="thin", count=3, gpus_per_node=1)))
        assert topo.num_nodes == 5
        assert topo.total_gpus == 2 * 4 + 3

    def test_node_class_of_boundaries(self):
        dense = NodeClass(name="dense", count=2, gpus_per_node=4)
        thin = NodeClass(name="thin", count=3)
        topo = Topology(node_classes=(dense, thin))
        assert topo.node_class_of(0) is dense
        assert topo.node_class_of(1) is dense
        assert topo.node_class_of(2) is thin
        assert topo.node_class_of(4) is thin
        with pytest.raises(DCudaUsageError, match="out of range"):
            topo.node_class_of(5)

    def test_devices_canonical_order(self):
        topo = Topology(node_classes=(
            NodeClass(name="dense", count=1, gpus_per_node=2),
            NodeClass(name="thin", count=2)))
        assert topo.devices() == ((0, 0), (0, 1), (1, 0), (2, 0))

    def test_hashable_for_cache_keys(self):
        # Topologies ride through the sweep engine's content-addressed
        # cache, which requires hashability.
        assert hash(flat(4)) == hash(flat(4))
        assert flat(4) == flat(4)
        assert flat(4) != ring(4)


class TestBuilders:
    def test_flat(self):
        topo = flat(num_nodes=4, gpus_per_node=2)
        assert topo.interconnect.kind == "flat"
        assert topo.num_nodes == 4 and topo.total_gpus == 8

    def test_fat_tree(self):
        topo = fat_tree(num_nodes=8, oversubscription=2.0, radix=4)
        assert topo.interconnect.kind == "fat_tree"
        assert topo.interconnect.oversubscription == 2.0
        assert topo.interconnect.radix == 4

    def test_ring(self):
        topo = ring(6, gpus_per_node=2)
        assert topo.interconnect.kind == "ring"
        assert topo.total_gpus == 12

    def test_custom_links(self):
        wire = LinkSpec(bandwidth=1e9, latency=5e-6)
        nv = LinkSpec(bandwidth=50e9, latency=0.1e-6)
        topo = ring(4, link=wire, intra_link=nv)
        assert topo.interconnect.link == wire
        assert topo.node_classes[0].intra_link == nv
