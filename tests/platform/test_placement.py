"""Placement policies: block, round_robin, explicit."""

import pytest

from repro.errors import DCudaUsageError
from repro.platform import PlacementSpec
from repro.platform.placement import resolve_placement

# 2 nodes x 2 GPUs, canonical order.
DEVICES = ((0, 0), (0, 1), (1, 0), (1, 1))


class TestSpecValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(DCudaUsageError, match="policy"):
            PlacementSpec("scatter")

    def test_explicit_requires_table(self):
        with pytest.raises(DCudaUsageError, match="explicit"):
            PlacementSpec("explicit")

    def test_table_requires_explicit_policy(self):
        with pytest.raises(DCudaUsageError, match="explicit"):
            PlacementSpec("block", explicit=((0, 0),))

    def test_rejects_empty_table(self):
        with pytest.raises(DCudaUsageError, match="at least one"):
            PlacementSpec("explicit", explicit=())


class TestBlock:
    def test_legacy_numbering(self):
        # rank r on device r // rpd — the legacy single-GPU mapping.
        p = resolve_placement(DEVICES, 2, PlacementSpec("block"))
        assert p.total_ranks == 8
        assert [p.device_of(r) for r in range(8)] == [
            (0, 0), (0, 0), (0, 1), (0, 1),
            (1, 0), (1, 0), (1, 1), (1, 1)]
        assert p.ranks_on_device(0, 1) == (2, 3)
        assert p.ranks_on_node(1) == (4, 5, 6, 7)
        assert [p.device_rank(r) for r in range(4)] == [0, 1, 0, 1]
        assert p.participating_nodes == (0, 1)

    def test_single_gpu_nodes_match_node_of(self):
        devices = tuple((n, 0) for n in range(4))
        p = resolve_placement(devices, 3, PlacementSpec("block"))
        for r in range(12):
            assert p.node_of(r) == r // 3
            assert p.gpu_of(r) == 0


class TestRoundRobin:
    def test_deals_across_devices(self):
        p = resolve_placement(DEVICES, 2, PlacementSpec("round_robin"))
        assert [p.device_of(r) for r in range(8)] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
            (0, 0), (0, 1), (1, 0), (1, 1)]
        assert p.ranks_on_device(0, 0) == (0, 4)
        assert p.device_rank(4) == 1


class TestExplicit:
    def test_pins_ranks(self):
        spec = PlacementSpec("explicit", explicit=((1, 1), (0, 0)))
        p = resolve_placement(DEVICES, 99, spec)  # rpd ignored
        assert p.total_ranks == 2
        assert p.device_of(0) == (1, 1)
        assert p.device_of(1) == (0, 0)
        assert p.ranks_on_device(0, 1) == ()

    def test_participating_nodes_skips_empty(self):
        spec = PlacementSpec("explicit", explicit=((1, 0), (1, 1)))
        p = resolve_placement(DEVICES, 1, spec)
        assert p.participating_nodes == (1,)
        assert p.ranks_on_node(0) == ()

    def test_rejects_device_outside_topology(self):
        spec = PlacementSpec("explicit", explicit=((0, 0), (2, 0)))
        with pytest.raises(DCudaUsageError, match="not in the topology"):
            resolve_placement(DEVICES, 1, spec)

    def test_two_ranks_same_device(self):
        spec = PlacementSpec("explicit", explicit=((0, 0), (0, 0)))
        p = resolve_placement(DEVICES, 1, spec)
        assert p.ranks_on_device(0, 0) == (0, 1)
        assert p.device_rank(1) == 1


def test_rejects_empty_devices():
    with pytest.raises(DCudaUsageError, match="at least one device"):
        resolve_placement((), 1, PlacementSpec("block"))


def test_rejects_non_positive_rpd():
    with pytest.raises(DCudaUsageError, match="ranks_per_device"):
        resolve_placement(DEVICES, 0, PlacementSpec("block"))
