"""Platform resolution: MachineConfig + Topology -> concrete machine."""

import dataclasses

import pytest

from repro.errors import DCudaUsageError
from repro.hw.config import GPUConfig, PCIeConfig, greina
from repro.platform import (
    DEFAULT_INTRA_LINK,
    LinkSpec,
    NodeClass,
    PlacementSpec,
    Topology,
    flat,
    ring,
)
from repro.platform.resolve import Platform


class TestLegacyShape:
    def test_no_topology_resolves_to_flat_single_gpu(self):
        platform = Platform(greina(4))
        assert platform.num_nodes == 4
        assert platform.total_gpus == 4
        assert platform.routing is None
        assert platform.is_flat_single_gpu
        for n in range(4):
            spec = platform.node_spec(n)
            assert spec.gpus_per_node == 1
            assert spec.intra_link == DEFAULT_INTRA_LINK

    def test_legacy_placement_matches_rank_arithmetic(self):
        platform = Platform(greina(3))
        p = platform.place(4)
        assert p.total_ranks == 12
        for r in range(12):
            assert p.node_of(r) == r // 4


class TestTopologyShape:
    def test_multi_gpu_is_not_legacy(self):
        platform = Platform(greina(topology=flat(2, gpus_per_node=2)))
        assert platform.total_gpus == 4
        assert not platform.is_flat_single_gpu

    def test_routed_is_not_legacy(self):
        platform = Platform(greina(topology=ring(4)))
        assert platform.routing is not None
        assert not platform.is_flat_single_gpu

    def test_num_nodes_contradiction_raises(self):
        with pytest.raises(DCudaUsageError, match="contradicts"):
            Platform(greina(8, topology=ring(4)))

    def test_num_nodes_agreeing_is_fine(self):
        assert Platform(greina(4, topology=ring(4))).num_nodes == 4

    def test_per_class_overrides(self):
        fast_gpu = GPUConfig(num_sms=26)
        wide_pcie = PCIeConfig(bandwidth=20e9)
        nv = LinkSpec(bandwidth=50e9, latency=0.1e-6)
        topo = Topology(node_classes=(
            NodeClass(name="dense", count=1, gpus_per_node=2, gpu=fast_gpu,
                      pcie=wide_pcie, intra_link=nv),
            NodeClass(name="thin", count=2)))
        platform = Platform(greina(topology=topo))
        assert platform.node_spec(0).gpu is fast_gpu
        assert platform.pcie_of(0) is wide_pcie
        assert platform.intra_link_of(0) == nv
        # The thin class inherits the machine defaults.
        assert platform.node_spec(1).gpu is platform.cfg.gpu
        assert platform.intra_link_of(2) == DEFAULT_INTRA_LINK

    def test_rejects_wrong_override_types(self):
        topo = Topology(node_classes=(
            NodeClass(name="bad", gpu="not-a-config"),))
        with pytest.raises(DCudaUsageError, match="GPUConfig"):
            Platform(greina(topology=topo))

    def test_node_spec_out_of_range(self):
        with pytest.raises(DCudaUsageError, match="out of range"):
            Platform(greina(2)).node_spec(2)


class TestPlaceCap:
    def test_per_gpu_in_flight_cap(self):
        tiny_gpu = GPUConfig(num_sms=1, max_blocks_per_sm=2)
        cfg = greina(2, gpu=tiny_gpu)
        platform = Platform(cfg)
        platform.place(2)  # at the cap: fine
        with pytest.raises(DCudaUsageError, match="in-flight limit"):
            platform.place(3)

    def test_explicit_overload_of_one_gpu(self):
        tiny_gpu = GPUConfig(num_sms=1, max_blocks_per_sm=2)
        cfg = greina(2, gpu=tiny_gpu)
        spec = PlacementSpec("explicit",
                             explicit=((0, 0), (0, 0), (0, 0)))
        with pytest.raises(DCudaUsageError, match="in-flight limit"):
            Platform(cfg).place(1, spec=spec)

    def test_spec_override_beats_config(self):
        cfg = greina(2, placement=PlacementSpec("round_robin"))
        platform = Platform(cfg)
        # Default comes from the config...
        assert platform.place(2).device_of(1) == (1, 0)
        # ...but an explicit spec wins.
        assert platform.place(
            2, spec=PlacementSpec("block")).device_of(1) == (0, 0)


def test_config_validation_rejects_bad_fields():
    # Satellite check: non-positive physical quantities fail at
    # construction with a typed error, not as downstream division noise.
    with pytest.raises(DCudaUsageError, match="bandwidth"):
        GPUConfig(mem_bandwidth=0.0)
    with pytest.raises(DCudaUsageError, match="num_sms"):
        GPUConfig(num_sms=0)
    with pytest.raises(DCudaUsageError, match="non-negative"):
        PCIeConfig(dma_startup=-1e-6)
    with pytest.raises(DCudaUsageError, match="num_nodes"):
        greina(0)
    with pytest.raises(DCudaUsageError, match="topology"):
        greina(topology="ring")
    with pytest.raises(DCudaUsageError, match="placement"):
        greina(placement="block")


def test_with_nodes_rewrites_single_class_topology():
    cfg = greina(topology=ring(4))
    grown = cfg.with_nodes(6)
    assert grown.topology.num_nodes == 6
    assert grown.topology.interconnect.kind == "ring"
    multi = greina(topology=Topology(node_classes=(
        NodeClass(name="a"), NodeClass(name="b"))))
    with pytest.raises(DCudaUsageError, match="ambiguous"):
        multi.with_nodes(5)
