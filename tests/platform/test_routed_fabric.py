"""Route-aware fabric: per-hop charging, link stats, and link faults."""

import pytest

from repro.bench.pingpong import run_pingpong_pair
from repro.faults import FaultEvent, FaultsConfig
from repro.hw import Cluster, greina
from repro.mpi import MPIWorld
from repro.platform import fat_tree, flat, ring


def transfer_time(cfg, src, dst, nbytes=1024):
    """One two-sided message ``src -> dst``; returns the arrival time."""
    cluster = Cluster(cfg)
    world = MPIWorld(cluster)
    out = {}

    def sender(env):
        yield from world.send(src, dst, None, nbytes=nbytes)

    def receiver(env):
        yield from world.recv(dst)
        out["t"] = env.now

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    return out["t"]


class TestHops:
    def test_flat_is_single_hop(self):
        assert Cluster(greina(4)).fabric.hops(0, 3) == 0

    def test_ring_and_fat_tree(self):
        assert Cluster(greina(topology=ring(6))).fabric.hops(0, 3) == 3
        fabric = Cluster(greina(topology=fat_tree(num_nodes=8,
                                                  radix=4))).fabric
        assert fabric.hops(0, 3) == 2
        assert fabric.hops(0, 7) == 4


class TestLinkStats:
    def test_traffic_lands_on_route_edges_only(self):
        cluster = Cluster(greina(topology=ring(4)))
        world = MPIWorld(cluster)

        def sender(env):
            yield from world.send(0, 1, None, nbytes=4096)

        def receiver(env):
            yield from world.recv(1)

        cluster.env.process(sender(cluster.env))
        cluster.env.process(receiver(cluster.env))
        cluster.run()
        stats = cluster.fabric.link_stats()
        assert stats["n0-n1"]["bytes"] == pytest.approx(4096)
        assert stats["n2-n3"]["bytes"] == 0
        assert stats["n1-n0"]["bytes"] == 0  # directed edges

    def test_flat_fabric_has_no_link_stats(self):
        assert Cluster(greina(2)).fabric.link_stats() == {}


class TestLinkPartition:
    def test_named_link_cut_stalls_its_route(self):
        hold = 2e-3
        faults = FaultsConfig(enabled=True, events=(
            FaultEvent(kind="partition", target="n0-n1", start=0.0,
                       duration=hold),))
        cfg = greina(topology=ring(4), faults=faults)
        assert transfer_time(cfg, 0, 1) >= hold
        # The reverse direction is a different directed edge.
        assert transfer_time(cfg, 1, 0) < hold
        # An untouched edge on the far side of the ring is unaffected.
        assert transfer_time(cfg, 3, 2) < hold

    def test_spine_cut_stalls_cross_leaf_only(self):
        hold = 2e-3
        faults = FaultsConfig(enabled=True, events=(
            FaultEvent(kind="partition", target="leaf0-spine", start=0.0,
                       duration=hold),))
        cfg = greina(topology=fat_tree(num_nodes=8, radix=4),
                     faults=faults)
        assert transfer_time(cfg, 0, 7) >= hold   # via the cut uplink
        assert transfer_time(cfg, 0, 3) < hold    # stays on leaf0

    def test_endpoint_partition_still_applies_when_routed(self):
        # Flat-fabric fault schedules keep their meaning on routed
        # interconnects: an int target selects the endpoint node.
        hold = 2e-3
        faults = FaultsConfig(enabled=True, events=(
            FaultEvent(kind="partition", target=1, start=0.0,
                       duration=hold),))
        cfg = greina(topology=ring(4), faults=faults)
        assert transfer_time(cfg, 0, 1) >= hold
        assert transfer_time(cfg, 2, 3) < hold


def test_oversubscription_slows_cross_leaf_puts():
    """An 8:1 oversubscribed spine is measurably slower than 1:1."""
    kwargs = dict(a=(0, 0), b=(7, 0), packet_bytes=256 * 1024,
                  iterations=3)
    full = run_pingpong_pair(
        greina(topology=fat_tree(num_nodes=8, radix=4,
                                 oversubscription=1.0)), **kwargs)
    thin = run_pingpong_pair(
        greina(topology=fat_tree(num_nodes=8, radix=4,
                                 oversubscription=8.0)), **kwargs)
    assert thin.latency > full.latency
    # Same-leaf traffic never crosses the spine, so it is immune.
    same_leaf = dict(kwargs, b=(3, 0))
    full_leaf = run_pingpong_pair(
        greina(topology=fat_tree(num_nodes=8, radix=4,
                                 oversubscription=1.0)), **same_leaf)
    thin_leaf = run_pingpong_pair(
        greina(topology=fat_tree(num_nodes=8, radix=4,
                                 oversubscription=8.0)), **same_leaf)
    assert thin_leaf.latency == full_leaf.latency
