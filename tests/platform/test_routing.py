"""Routing tables: shortest paths, hop charging, and determinism."""

import pytest

from repro.errors import DCudaUsageError
from repro.platform import LinkSpec, fat_tree, flat, ring
from repro.platform.routing import build_routing

LINK = LinkSpec(bandwidth=6.0e9, latency=1.0e-6)


def test_flat_has_no_table():
    # Flat keeps the calibrated single-hop LogGP model — no routed graph.
    assert build_routing(flat(num_nodes=8), LINK) is None


def test_single_node_ring_is_empty():
    table = build_routing(ring(1), LINK)
    assert table is not None and table.links == {}


class TestRing:
    def test_hop_counts_take_shorter_arc(self):
        table = build_routing(ring(6), LINK)
        assert table.hops(0, 1) == 1
        assert table.hops(0, 5) == 1      # wraps backwards
        assert table.hops(0, 3) == 3      # the diameter
        assert table.hops(4, 2) == 2

    def test_route_names_follow_the_arc(self):
        table = build_routing(ring(4), LINK)
        assert table.route(0, 1) == ("n0-n1",)
        assert table.route(1, 0) == ("n1-n0",)

    def test_antipodal_tie_breaks_clockwise(self):
        # Even rings have two equal arcs to the antipode; the
        # increasing-index direction is enumerated first in the BFS.
        table = build_routing(ring(4), LINK)
        assert table.route(0, 2) == ("n0-n1", "n1-n2")

    def test_path_latency_is_per_hop_sum(self):
        table = build_routing(ring(6), LINK)
        assert table.path_latency(0, 3) == 3 * LINK.latency

    def test_no_self_route(self):
        table = build_routing(ring(4), LINK)
        with pytest.raises(DCudaUsageError, match="no route"):
            table.route(2, 2)


class TestFatTree:
    def test_same_leaf_two_hops(self):
        table = build_routing(fat_tree(num_nodes=8, radix=4), LINK)
        assert table.hops(0, 3) == 2          # node-leaf, leaf-node
        assert table.route(0, 3) == ("n0-leaf0", "leaf0-n3")

    def test_cross_leaf_via_spine(self):
        table = build_routing(fat_tree(num_nodes=8, radix=4), LINK)
        assert table.hops(0, 7) == 4
        assert table.route(0, 7) == ("n0-leaf0", "leaf0-spine",
                                     "spine-leaf1", "leaf1-n7")

    def test_single_leaf_has_no_spine(self):
        table = build_routing(fat_tree(num_nodes=4, radix=4), LINK)
        assert "leaf0-spine" not in table.links
        assert table.hops(0, 3) == 2

    def test_oversubscription_undersizes_uplinks(self):
        table = build_routing(
            fat_tree(num_nodes=8, radix=4, oversubscription=8.0), LINK)
        uplink = table.links["leaf0-spine"]
        # radix * bw / oversubscription = 4/8 of one downlink.
        assert uplink.bandwidth == pytest.approx(LINK.bandwidth / 2)
        assert table.bottleneck_bandwidth(0, 7) == uplink.bandwidth
        # Same-leaf traffic never crosses the spine.
        assert table.bottleneck_bandwidth(0, 3) == LINK.bandwidth

    def test_full_bisection_uplinks_never_bottleneck(self):
        table = build_routing(
            fat_tree(num_nodes=8, radix=4, oversubscription=1.0), LINK)
        assert (table.links["leaf0-spine"].bandwidth
                == 4 * LINK.bandwidth)


def test_routes_are_deterministic():
    a = build_routing(ring(8), LINK)
    b = build_routing(ring(8), LINK)
    assert a.routes == b.routes
    c = build_routing(fat_tree(num_nodes=9, radix=4), LINK)
    d = build_routing(fat_tree(num_nodes=9, radix=4), LINK)
    assert c.routes == d.routes


def test_every_ordered_pair_is_routed():
    for topo in (ring(5), fat_tree(num_nodes=6, radix=2)):
        table = build_routing(topo, LINK)
        n = topo.num_nodes
        assert set(table.routes) == {(s, d) for s in range(n)
                                     for d in range(n) if s != d}
        for route in table.routes.values():
            assert route, "empty route for distinct nodes"
            for name in route:
                assert name in table.links
