"""Acceptance: placement decides the path, and the paths are ordered.

The same two-rank notified-put ping-pong, pinned to four different
device pairs, must get slower as the pair moves further apart in the
topology: same GPU (device-local copy) < same node, different GPUs
(intra-node link) < different nodes on a flat fabric (one wire hop)
< antipodal nodes on a ring (multi-hop routed wire).
"""

import pytest

from repro.bench.pingpong import run_pingpong_pair
from repro.hw import greina
from repro.platform import flat, ring

PACKET = 1024
ITERS = 20


@pytest.fixture(scope="module")
def latencies():
    dual = greina(topology=flat(num_nodes=2, gpus_per_node=2))
    ring4 = greina(topology=ring(4))
    return {
        "same_gpu": run_pingpong_pair(dual, a=(0, 0), b=(0, 0),
                                      packet_bytes=PACKET,
                                      iterations=ITERS).latency,
        "same_node": run_pingpong_pair(dual, a=(0, 0), b=(0, 1),
                                       packet_bytes=PACKET,
                                       iterations=ITERS).latency,
        "cross_node": run_pingpong_pair(dual, a=(0, 0), b=(1, 0),
                                        packet_bytes=PACKET,
                                        iterations=ITERS).latency,
        "ring_far": run_pingpong_pair(ring4, a=(0, 0), b=(2, 0),
                                      packet_bytes=PACKET,
                                      iterations=ITERS).latency,
    }


def test_all_paths_complete(latencies):
    assert all(lat > 0 for lat in latencies.values())


def test_intra_gpu_beats_intra_node(latencies):
    assert latencies["same_gpu"] < latencies["same_node"]


def test_intra_node_beats_inter_node(latencies):
    assert latencies["same_node"] < latencies["cross_node"]


def test_single_hop_beats_multi_hop(latencies):
    assert latencies["cross_node"] < latencies["ring_far"]


def test_ring_distance_ordering():
    """On a ring, latency grows with hop count; flat is distance-invariant."""
    ring6 = greina(topology=ring(6))
    near = run_pingpong_pair(ring6, a=(0, 0), b=(1, 0),
                             packet_bytes=PACKET, iterations=ITERS)
    far = run_pingpong_pair(ring6, a=(0, 0), b=(3, 0),
                            packet_bytes=PACKET, iterations=ITERS)
    assert near.latency < far.latency

    flat6 = greina(topology=flat(num_nodes=6))
    a = run_pingpong_pair(flat6, a=(0, 0), b=(1, 0),
                          packet_bytes=PACKET, iterations=ITERS)
    b = run_pingpong_pair(flat6, a=(0, 0), b=(5, 0),
                          packet_bytes=PACKET, iterations=ITERS)
    assert a.latency == b.latency
