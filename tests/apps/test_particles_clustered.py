"""Tests for the clustered particle distribution (load imbalance)."""

import numpy as np
import pytest

from repro.apps.particles import (
    ParticleWorkload,
    reference,
    run_dcuda_particles,
    seed_particles,
)
from repro.hw import Cluster, greina


def test_clustered_distribution_is_imbalanced():
    uniform = ParticleWorkload(cells_per_node=16, particles_per_node=320,
                               steps=1, distribution="uniform")
    clustered = ParticleWorkload(cells_per_node=16, particles_per_node=320,
                                 steps=1, distribution="clustered")
    u = seed_particles(uniform, 2)
    c = seed_particles(clustered, 2)
    assert u.counts.sum() == c.counts.sum()

    def imbalance(arr):
        counts = arr.counts[1:-1]
        return counts.max() / max(counts.mean(), 1e-9)

    assert imbalance(c) > 1.8 * imbalance(u)


def test_clustered_needs_capacity_headroom():
    """The four-fold over-allocation absorbs moderate clustering (the
    paper's design point)."""
    wl = ParticleWorkload(cells_per_node=16, particles_per_node=160,
                          steps=2, distribution="clustered")
    state = reference(wl, 2)  # must not overflow
    assert state.shape[0] == 320


def test_clustered_dcuda_matches_reference():
    wl = ParticleWorkload(cells_per_node=8, particles_per_node=64,
                          steps=3, distribution="clustered")
    _, state, _ = run_dcuda_particles(Cluster(greina(2)), wl, 2)
    np.testing.assert_allclose(state, reference(wl, 2), rtol=1e-12,
                               atol=1e-12)


def test_unknown_distribution_rejected():
    wl = ParticleWorkload(distribution="fractal")
    with pytest.raises(ValueError, match="unknown distribution"):
        seed_particles(wl, 1)


def test_clustered_increases_per_rank_compute_spread():
    """Per-rank interaction counts (the cost driver) spread much wider
    under clustering — the mechanism behind the paper's non-flat Fig. 9."""
    from repro.apps.particles import interactions_count, CellArrays

    def spread(distribution):
        wl = ParticleWorkload(cells_per_node=16, particles_per_node=480,
                              steps=1, distribution=distribution)
        arr = seed_particles(wl, 2)
        per_rank = []
        for r in range(8):  # 8 ranks x 4 cells
            lo = 1 + r * 4
            per_rank.append(interactions_count(arr, lo, lo + 4))
        per_rank = np.array(per_rank)
        return per_rank.max() / max(per_rank.mean(), 1e-9)

    assert spread("clustered") > 1.5 * spread("uniform")
