"""Correctness tests for the horizontal-diffusion mini-application."""

import numpy as np
import pytest

from repro.apps.diffusion import (
    DiffusionWorkload,
    reference,
    run_dcuda_diffusion,
    run_mpicuda_diffusion,
)
from repro.hw import Cluster, greina


def small_wl(**kw):
    defaults = dict(ni=12, nj_per_device=8, nk=3, steps=3)
    defaults.update(kw)
    return DiffusionWorkload(**defaults)


def test_reference_changes_field():
    wl = small_wl()
    ref = reference(wl, 1)
    from repro.apps.diffusion import initial_field
    init = initial_field(wl, 1)[:, 1:-1, :]
    assert not np.allclose(ref, init)


@pytest.mark.parametrize("nodes,rpd", [(1, 1), (1, 2), (2, 1), (2, 2),
                                       (3, 2)])
def test_dcuda_matches_reference(nodes, rpd):
    wl = small_wl()
    elapsed, result, _ = run_dcuda_diffusion(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(result, reference(wl, nodes), rtol=1e-12)
    assert elapsed > 0


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_mpicuda_matches_reference(nodes):
    wl = small_wl()
    elapsed, result, stats = run_mpicuda_diffusion(Cluster(greina(nodes)),
                                                   wl, nblocks=4)
    np.testing.assert_allclose(result, reference(wl, nodes), rtol=1e-12)
    if nodes > 1:
        assert stats[0]["halo_time"] > 0


def test_variants_agree():
    wl = small_wl(steps=4)
    _, a, _ = run_dcuda_diffusion(Cluster(greina(2)), wl, 2)
    _, b, _ = run_mpicuda_diffusion(Cluster(greina(2)), wl, nblocks=4)
    np.testing.assert_allclose(a, b, rtol=1e-12)


def test_dcuda_message_count_per_k_level():
    """dCUDA sends one message per k-level per halo (the paper's 26x 1kB
    pattern): on 2 nodes with 1 rank/device, per iteration the boundary
    pair exchanges lap (nk) + fly (nk) + out (2*nk) messages."""
    wl = small_wl(nk=5, steps=2)
    cluster = Cluster(greina(2))
    run_dcuda_diffusion(cluster, wl, 1)
    world = None
    # Count data-bearing fabric messages: each notified put sends meta +
    # payload, so payload messages = total puts = 4*nk per iteration.
    stats0 = cluster.fabric.nic_stats(0)
    stats1 = cluster.fabric.nic_stats(1)
    # node0 sends lap (to nobody: its left is None)... node0's rank 0 is
    # leftmost; it sends out+fly right; node1 sends lap+out left.
    payload_msgs = stats0["messages"] + stats1["messages"]
    # At least 4*nk*steps payload messages plus metas and sync traffic.
    assert payload_msgs >= 2 * (4 * wl.nk * wl.steps)


def test_workload_validation():
    wl = small_wl(nj_per_device=2)
    with pytest.raises(ValueError):
        run_dcuda_diffusion(Cluster(greina(1)), wl, ranks_per_device=4)
