"""Correctness tests for the 2-D stencil mini-application (Fig. 2)."""

import numpy as np
import pytest

from repro.apps.stencil2d import (
    Stencil2DWorkload,
    apply_stencil,
    reference,
    run_dcuda_stencil2d,
    run_mpicuda_stencil2d,
)
from repro.hw import Cluster, greina


def test_apply_stencil_interior_formula():
    src = np.zeros((4, 5))
    src[1:3, 1:4] = [[1, 2, 3], [4, 5, 6]]
    dst = np.zeros_like(src)
    apply_stencil(src, dst, slice(1, 3))
    # dst[1,2] = -4*2 + 3 + 1 + 5 + 0 = 1
    assert dst[1, 2] == pytest.approx(1.0)
    # i boundary columns copied through
    assert dst[1, 0] == src[1, 0]


def test_reference_is_deterministic():
    wl = Stencil2DWorkload(ni=8, nj_per_device=6, steps=3)
    a = reference(wl, 2)
    b = reference(wl, 2)
    np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("nodes,rpd", [(1, 1), (1, 2), (1, 4),
                                       (2, 1), (2, 3), (3, 2)])
def test_dcuda_matches_reference(nodes, rpd):
    wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=4)
    cluster = Cluster(greina(nodes))
    elapsed, result, _ = run_dcuda_stencil2d(cluster, wl, rpd)
    np.testing.assert_allclose(result, reference(wl, nodes), rtol=1e-12)
    assert elapsed > 0


@pytest.mark.parametrize("nodes", [1, 2, 4])
def test_mpicuda_matches_reference(nodes):
    wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=4)
    cluster = Cluster(greina(nodes))
    elapsed, result, stats = run_mpicuda_stencil2d(cluster, wl, nblocks=8)
    np.testing.assert_allclose(result, reference(wl, nodes), rtol=1e-12)
    if nodes > 1:
        assert all(s["halo_time"] > 0 for s in stats.values())
    assert elapsed > 0


def test_variants_agree_with_each_other():
    wl = Stencil2DWorkload(ni=12, nj_per_device=6, steps=5)
    _, a, _ = run_dcuda_stencil2d(Cluster(greina(2)), wl, 2)
    _, b, _ = run_mpicuda_stencil2d(Cluster(greina(2)), wl, nblocks=4)
    np.testing.assert_allclose(a, b, rtol=1e-12)


def test_single_device_dcuda_uses_no_network():
    wl = Stencil2DWorkload(ni=8, nj_per_device=8, steps=2)
    cluster = Cluster(greina(1))
    run_dcuda_stencil2d(cluster, wl, 4)
    assert cluster.fabric.nic_stats(0)["messages"] == 0


def test_workload_validation():
    wl = Stencil2DWorkload(ni=8, nj_per_device=2, steps=1)
    with pytest.raises(ValueError):
        run_dcuda_stencil2d(Cluster(greina(1)), wl, ranks_per_device=4)
