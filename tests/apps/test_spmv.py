"""Correctness tests for the SpMV mini-application."""

import numpy as np
import pytest

from repro.apps.spmv import (
    SpmvWorkload,
    make_block,
    make_x,
    reference,
    run_dcuda_spmv,
    run_mpicuda_spmv,
)
from repro.apps.decomp import square_grid
from repro.hw import Cluster, greina


def small_wl(**kw):
    defaults = dict(n_per_device=24, density=0.1, iters=2)
    defaults.update(kw)
    return SpmvWorkload(**defaults)


def test_square_grid():
    assert square_grid(1) == (1, 1)
    assert square_grid(4) == (2, 2)
    assert square_grid(9) == (3, 3)
    with pytest.raises(ValueError):
        square_grid(2)


def test_blocks_are_deterministic():
    wl = small_wl()
    a = make_block(wl, 1, 1)
    b = make_block(wl, 1, 1)
    assert (a != b).nnz == 0
    c = make_block(wl, 0, 1)
    assert a.shape == c.shape and (a != c).nnz > 0


def test_reference_matches_dense():
    wl = small_wl()
    pr, pc = 2, 2
    dense = np.zeros((wl.n_per_device * pr, wl.n_per_device * pc))
    for r in range(pr):
        for c in range(pc):
            dense[r * wl.n_per_device:(r + 1) * wl.n_per_device,
                  c * wl.n_per_device:(c + 1) * wl.n_per_device] = \
                make_block(wl, r, c).toarray()
    np.testing.assert_allclose(reference(wl, 4), dense @ make_x(wl, pc),
                               rtol=1e-12)


@pytest.mark.parametrize("nodes,rpd", [(1, 1), (1, 3), (4, 1), (4, 2),
                                       (9, 1)])
def test_dcuda_matches_reference(nodes, rpd):
    wl = small_wl()
    elapsed, y, _ = run_dcuda_spmv(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(y, reference(wl, nodes), rtol=1e-12)
    assert elapsed > 0


@pytest.mark.parametrize("nodes", [1, 4, 9])
def test_mpicuda_matches_reference(nodes):
    wl = small_wl()
    elapsed, y, stats = run_mpicuda_spmv(Cluster(greina(nodes)), wl,
                                         nblocks=4)
    np.testing.assert_allclose(y, reference(wl, nodes), rtol=1e-12)
    assert all(s["comm_time"] >= 0 for s in stats.values())


def test_variants_agree():
    wl = small_wl()
    _, a, _ = run_dcuda_spmv(Cluster(greina(4)), wl, 2)
    _, b, _ = run_mpicuda_spmv(Cluster(greina(4)), wl, nblocks=4)
    np.testing.assert_allclose(a, b, rtol=1e-12)


def test_non_square_node_count_rejected():
    wl = small_wl()
    with pytest.raises(ValueError):
        run_dcuda_spmv(Cluster(greina(2)), wl, 1)
