"""Correctness tests for the particle-simulation mini-application."""

import numpy as np
import pytest

from repro.apps.particles import (
    CellArrays,
    ParticleWorkload,
    pack_rows,
    reference,
    run_dcuda_particles,
    run_mpicuda_particles,
    seed_particles,
    unpack_rows,
)
from repro.hw import Cluster, greina


def small_wl(**kw):
    defaults = dict(cells_per_node=8, particles_per_node=64, steps=3)
    defaults.update(kw)
    return ParticleWorkload(**defaults)


# ------------------------------------------------------------ unit pieces ----
def test_cell_arrays_insert_extract():
    arr = CellArrays(4, capacity=8)
    arr.insert(1, {"pid": np.array([3.0, 1.0]), "x": np.array([0.1, 0.2]),
                   "y": np.array([0.3, 0.4]), "vx": np.zeros(2),
                   "vy": np.zeros(2)})
    assert arr.count(1) == 2
    taken = arr.extract(1, np.array([True, False]))
    assert taken["pid"].tolist() == [3.0]
    assert arr.count(1) == 1
    assert arr.fields["pid"][1, 0] == 1.0


def test_cell_arrays_overflow():
    arr = CellArrays(3, capacity=2)
    rows = {"pid": np.arange(3, dtype=float), "x": np.zeros(3),
            "y": np.zeros(3), "vx": np.zeros(3), "vy": np.zeros(3)}
    with pytest.raises(OverflowError):
        arr.insert(1, rows)


def test_sort_cell_by_pid():
    arr = CellArrays(3, capacity=4)
    arr.insert(1, {"pid": np.array([5.0, 2.0, 9.0]),
                   "x": np.array([1.0, 2.0, 3.0]), "y": np.zeros(3),
                   "vx": np.zeros(3), "vy": np.zeros(3)})
    arr.sort_cell(1)
    assert arr.fields["pid"][1, :3].tolist() == [2.0, 5.0, 9.0]
    assert arr.fields["x"][1, :3].tolist() == [2.0, 1.0, 3.0]


def test_pack_unpack_roundtrip():
    rows = {"pid": np.array([1.0, 2.0]), "x": np.array([0.5, 0.6]),
            "y": np.array([0.7, 0.8]), "vx": np.array([-1.0, 1.0]),
            "vy": np.array([0.0, 0.25])}
    out = unpack_rows(pack_rows(rows))
    for name in rows:
        np.testing.assert_array_equal(out[name], rows[name])
    assert unpack_rows(pack_rows(None)) is None


def test_seed_is_deterministic_and_conserves_particles():
    wl = small_wl()
    a = seed_particles(wl, 2)
    b = seed_particles(wl, 2)
    assert a.counts.sum() == wl.particles_per_node * 2
    np.testing.assert_array_equal(a.counts, b.counts)


def test_reference_conserves_particles():
    wl = small_wl()
    state = reference(wl, 2)
    assert state.shape[0] == wl.particles_per_node * 2
    # ids remain a permutation of 0..N-1
    np.testing.assert_array_equal(np.sort(state[:, 0]),
                                  np.arange(state.shape[0], dtype=float))
    # all particles stay inside the domain
    assert (state[:, 1] >= 0).all() and (state[:, 1] < wl.width(2)).all()
    assert (state[:, 2] >= 0).all() and (state[:, 2] < 1.0).all()


# ----------------------------------------------------------- end-to-end ------
@pytest.mark.parametrize("nodes,rpd", [(1, 1), (1, 2), (2, 1), (2, 2)])
def test_dcuda_matches_reference(nodes, rpd):
    wl = small_wl()
    elapsed, state, _ = run_dcuda_particles(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(state, reference(wl, nodes), rtol=1e-12,
                               atol=1e-12)
    assert elapsed > 0


@pytest.mark.parametrize("nodes", [1, 2, 3])
def test_mpicuda_matches_reference(nodes):
    wl = small_wl()
    elapsed, state, stats = run_mpicuda_particles(Cluster(greina(nodes)),
                                                  wl, nblocks=4)
    np.testing.assert_allclose(state, reference(wl, nodes), rtol=1e-12,
                               atol=1e-12)
    if nodes > 1:
        assert stats[0]["halo_time"] > 0


def test_variants_agree():
    wl = small_wl(steps=4)
    _, a, _ = run_dcuda_particles(Cluster(greina(2)), wl, 2)
    _, b, _ = run_mpicuda_particles(Cluster(greina(2)), wl, nblocks=4)
    np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


def test_particles_actually_migrate():
    """The workload must exercise steps 3-5 (movers), otherwise the test
    suite would pass with broken migration code."""
    wl = small_wl(steps=6)
    init = seed_particles(wl, 2)
    final = reference(wl, 2)
    width = wl.width(2)
    init_cells = {}
    total = wl.cells_per_node * 2
    for c in range(1, total + 1):
        n = init.count(c)
        for pid in init.fields["pid"][c, :n]:
            init_cells[pid] = c - 1
    final_cells = np.minimum((final[:, 1] / wl.cutoff).astype(int),
                             total - 1)
    moved = sum(1 for pid, cell in zip(final[:, 0], final_cells)
                if init_cells[pid] != cell)
    assert moved > 0
