"""Unit tests for flush tracking and per-rank state."""

import pytest

from repro.hw import Cluster, greina
from repro.runtime import FlushTracker
from repro.runtime.state import RankState


def test_flush_tracker_in_order():
    t = FlushTracker()
    assert t.counter == 0
    assert t.complete(1) is True
    assert t.counter == 1
    assert t.complete(2) is True
    assert t.counter == 2


def test_flush_tracker_out_of_order_holds_counter():
    t = FlushTracker()
    assert t.complete(3) is False
    assert t.counter == 0
    assert t.complete(2) is False
    assert t.counter == 0
    # Completing the gap releases everything contiguous.
    assert t.complete(1) is True
    assert t.counter == 3


def test_flush_tracker_interleaved():
    t = FlushTracker()
    t.complete(2)
    t.complete(1)
    assert t.counter == 2
    t.complete(5)
    t.complete(3)
    assert t.counter == 3
    t.complete(4)
    assert t.counter == 5


def test_flush_tracker_rejects_duplicates():
    t = FlushTracker()
    t.complete(1)
    with pytest.raises(ValueError):
        t.complete(1)
    t.complete(3)
    with pytest.raises(ValueError):
        t.complete(3)


def test_rank_state_id_allocation():
    cluster = Cluster(greina(1))
    node = cluster.node(0)
    block = node.device.allocate_blocks(1)[0]
    state = RankState(cluster.env, node, world_rank=0, device_rank=0,
                      block=block, queue_size=8)
    assert state.allocate_flush_id() == 1
    assert state.allocate_flush_id() == 2
    assert state.allocate_local_win() == 0
    assert state.allocate_local_win() == 1
    assert state.cmd_queue.size == 8
    assert not state.finished
