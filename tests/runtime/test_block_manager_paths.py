"""Direct coverage for block-manager code paths not hit elsewhere:
remote get bounds, unknown commands, and the event handler's dispatch
validation."""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina
from repro.mpi import MPIWorld
from repro.runtime import DCudaRuntime
from repro.runtime.meta import RT_TAG_META


def test_remote_get_out_of_bounds_raises():
    buffers = {0: np.zeros(16), 1: np.zeros(4)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            dst = np.zeros(8)
            yield from rank.get_notify(win, 1, 0, dst, tag=1)
            yield from rank.wait_notifications(win, tag=1, count=1)
        yield from rank.barrier()
        yield from rank.finish()

    with pytest.raises(IndexError, match="out of bounds"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_unknown_command_rejected_by_block_manager():
    cluster = Cluster(greina(1))
    runtime = DCudaRuntime(cluster, ranks_per_device=1)
    runtime.start()

    def inject(env):
        yield from runtime.state_of(0).cmd_queue.enqueue("garbage")

    cluster.env.process(inject(cluster.env))
    with pytest.raises(TypeError, match="unknown command"):
        cluster.run()


def test_unknown_runtime_message_rejected_by_event_handler():
    cluster = Cluster(greina(2))
    runtime = DCudaRuntime(cluster, ranks_per_device=1)
    runtime.start()

    def inject(env):
        runtime.world.isend(0, 1, {"evil": True}, tag=RT_TAG_META,
                            nbytes=32.0)
        yield env.timeout(0.0)

    cluster.env.process(inject(cluster.env))
    with pytest.raises(TypeError, match="unexpected runtime message"):
        cluster.run()


def test_get_zero_elements_is_legal():
    buffers = {r: np.arange(4.0) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            dst = np.zeros(0)
            yield from rank.get(win, 1, 0, dst)
            yield from rank.flush(win)
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_empty_put_still_notifies():
    buffers = {r: np.zeros(4) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.zeros(0), tag=9)
        else:
            yield from rank.wait_notifications(win, tag=9, count=1)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
