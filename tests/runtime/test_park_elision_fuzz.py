"""Randomized poll-elision parity fuzz: parked wakeups vs polling loops.

The PARK primitive (``park_consume`` / ``park_poll``) elides the poll
loops the device library and block manager used to run: instead of a
blocking dequeue followed by a poll-latency sleep (or an ``arrived``
wait followed by a poll-interval sleep), the consumer detaches from the
schedule entirely and the waking commit re-schedules it at the exact
tick the naive ``while True: ... yield poll_latency`` loop would have
resumed.  That equivalence is the timestamp-preservation contract the
golden fixtures rely on — and this harness fuzzes it the way
``tests/sim/test_scheduler_fuzz.py`` fuzzes the calendar-queue core:
seeded random workloads run through both the parked consumer and a
reference consumer written as the naive polling loop, and the two
observation logs must match timestamp for timestamp, entry for entry.

Randomized dimensions: the seed, the queue depth (1-entry queues force
credit-starvation stalls), batch arrivals (same-instant enqueue runs,
sub-poll-latency gaps, long gaps), the poll delay (including 0.0), and
whether an enabled-but-inert fault plane is attached (the hardened
enqueue/commit paths must preserve the same equivalence — the PR 3
zero-perturbation guarantee composed with poll elision).

One deliberate exclusion: when a sender's credit-reload PCIe *read*
completes at the exact same instant a commit lands on a full queue, the
two forms resolve the tie differently — park advances the tail inside
the commit dispatch (the reload samples the fresh tail), while the
naive loop's tail advance sits in the consumer's resume, which is
queued *behind* the already-pending read completion (the reload samples
the stale tail and the sender stalls one extra round).  The golden
fixtures pin the parked resolution; the equivalence claim is exact
everywhere else.  The harness therefore uses incommensurate PCIe
read/write latencies so this measure-zero tie cannot occur, while
credit starvation itself stays fully exercised.
"""

import random

import pytest

from repro.faults import FaultPlane, FaultsConfig
from repro.hw import PCIeConfig, PCIeLink
from repro.runtime import CircularQueue
from repro.sim import Environment

#: Inter-batch gap palette [s]: same-instant batches (0.0), gaps shorter
#: than a poll delay, and gaps longer than any poll delay.
_GAPS = [0.0, 0.0, 1e-7, 3.4e-6, 5e-6, 2e-5, 1e-4]

#: Poll delays [s] handed to park_consume/park_poll and to the naive
#: loops; 0.0 is the device-side ack path, 3.4e-6 the host poll latency.
_DELAYS = [0.0, 3e-7, 3.4e-6]

#: Queue depths; 1 and 2 starve the sender's credits on every batch.
_SIZES = [1, 2, 4, 16]


def _workload(seed: int):
    """Seeded batch plan: ``[(gap before batch, batch length), ...]``."""
    rng = random.Random(seed)
    batches = [(rng.choice(_GAPS), rng.randint(1, 5))
               for _ in range(rng.randint(3, 10))]
    total = sum(k for _, k in batches)
    params = dict(size=rng.choice(_SIZES), delay=rng.choice(_DELAYS),
                  with_faults=bool(seed % 2))
    return batches, total, params


def _build(size: int, with_faults: bool):
    env = Environment()
    # mapped_read deliberately not a multiple of any write/gap quantum:
    # reload completions never tie with commit instants (see module
    # docstring), so the parity claim below is exact.
    link = PCIeLink(env, PCIeConfig(mapped_read=0.93e-6))
    faults = None
    if with_faults:
        # Enabled-but-inert plane: hardened queue paths active, nothing
        # injected — timestamps must replay bit-identically.
        faults = FaultPlane(env, FaultsConfig(enabled=True), num_nodes=1)
    queue = CircularQueue(env, size, link, name="cmd:r0", faults=faults)
    return env, queue


def _producer(env, queue, batches):
    item = 0
    for gap, count in batches:
        if gap:
            yield gap
        for _ in range(count):
            yield from queue.enqueue(item)
            item += 1


# -- consume variant: one entry per wake (block manager / ack path) -------

def _consume_parked(env, queue, delay, total, log):
    while len(log) < total:
        entry = queue.try_dequeue()
        if entry is None:
            entry, _committed_at = yield queue.park_consume(delay)
        else:
            yield delay
        log.append((env.now, entry))


def _consume_reference(env, queue, delay, total, log):
    # The pre-elision loop: blocking dequeue, then the poll latency.
    while len(log) < total:
        entry = yield from queue.dequeue()
        yield delay
        log.append((env.now, entry))


# -- poll variant: drain per wake (notification matcher path) -------------

def _poll_parked(env, queue, delay, total, log):
    while len(log) < total:
        items = queue.drain_all()
        if not items:
            yield queue.park_poll(delay)
            continue
        now = env.now
        for entry in items:
            log.append((now, entry))


def _poll_reference(env, queue, delay, total, log):
    # The pre-elision loop: wait for the arrived signal, re-poll after
    # the poll interval, drain entry by entry.
    while len(log) < total:
        items = []
        while True:
            entry = queue.try_dequeue()
            if entry is None:
                break
            items.append(entry)
        if not items:
            yield queue.arrived.wait()
            yield delay
            continue
        now = env.now
        for entry in items:
            log.append((now, entry))


def _run(consumer, seed: int):
    batches, total, params = _workload(seed)
    env, queue = _build(params["size"], params["with_faults"])
    log: list = []
    env.process(_producer(env, queue, batches), name="producer")
    env.process(consumer(env, queue, params["delay"], total, log),
                name="consumer")
    env.run()
    assert len(log) == total
    return log, queue.stats


@pytest.mark.parametrize("seed", range(25))
def test_park_consume_matches_naive_poll_loop(seed):
    parked, parked_stats = _run(_consume_parked, seed)
    reference, ref_stats = _run(_consume_reference, seed)
    assert parked == reference
    # Same deliveries through either path; entries are observed in FIFO
    # order with strictly non-decreasing timestamps.
    assert parked_stats.dequeues == ref_stats.dequeues
    assert [e for _, e in parked] == sorted(e for _, e in parked)
    assert all(t0 <= t1 for (t0, _), (t1, _) in zip(parked, parked[1:]))


@pytest.mark.parametrize("seed", range(25))
def test_park_poll_matches_naive_arrival_loop(seed):
    parked, parked_stats = _run(_poll_parked, seed)
    reference, ref_stats = _run(_poll_reference, seed)
    assert parked == reference
    assert parked_stats.dequeues == ref_stats.dequeues
    assert [e for _, e in parked] == sorted(e for _, e in parked)


def test_fuzz_covers_the_interesting_regimes():
    """The seeded plans must actually hit stalls, batches, and both
    fault-plane modes — otherwise the parametrized sweep fuzzes air."""
    sizes = set()
    fault_modes = set()
    saw_same_instant_batch = False
    for seed in range(25):
        batches, _total, params = _workload(seed)
        sizes.add(params["size"])
        fault_modes.add(params["with_faults"])
        if any(gap == 0.0 and count > 1 for gap, count in batches):
            saw_same_instant_batch = True
    assert 1 in sizes and len(sizes) >= 3
    assert fault_modes == {True, False}
    assert saw_same_instant_batch
