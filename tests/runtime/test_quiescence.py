"""Tests for the post-launch quiescence invariant checker."""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina
from repro.runtime import DCudaRuntime
from repro.dcuda.device_api import DRank


def test_clean_run_is_quiescent():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        peer = 1 - rank.world_rank
        yield from rank.put_notify(win, peer, 0, np.ones(2), tag=1)
        yield from rank.wait_notifications(win, tag=1, count=1)
        yield from rank.finish()

    res = launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    assert res.runtime.check_quiescent() == []


def test_unconsumed_notifications_are_tolerated():
    """A program that never waits for a notification is legal."""
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        if rank.world_rank == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(1), tag=1)
            yield from rank.flush(win)
        yield from rank.barrier()
        yield from rank.finish()

    res = launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    assert res.runtime.check_quiescent() == []


def test_unfinished_rank_detected():
    cluster = Cluster(greina(1))
    runtime = DCudaRuntime(cluster, ranks_per_device=2)
    runtime.start()

    def kernel(rank, do_finish):
        yield rank.env.timeout(1e-6)
        if do_finish:
            # Would deadlock on the finish collective alone; just return.
            return

    for r in range(2):
        cluster.env.process(kernel(DRank(runtime, r), r == 0))
    cluster.run()
    problems = runtime.check_quiescent()
    assert any("never finished" in p for p in problems)


def test_incomplete_flush_detected():
    """A flush id issued without a completing operation shows up."""
    cluster = Cluster(greina(1))
    runtime = DCudaRuntime(cluster, ranks_per_device=1)
    runtime.start()
    state = runtime.state_of(0)
    state.allocate_flush_id()  # issued, never completed
    state.finished = True
    cluster.run()
    problems = runtime.check_quiescent()
    assert any("completed 0 of 1" in p for p in problems)


def test_launch_raises_on_non_quiescent(monkeypatch):
    """The launcher surfaces violations instead of returning silently."""
    def kernel(rank):
        # Sabotage: issue a flush id with no operation behind it.
        rank.state.allocate_flush_id()
        yield from rank.finish()

    with pytest.raises(RuntimeError, match="not quiescent"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)
