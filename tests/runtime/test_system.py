"""Unit tests for the runtime system: rank mapping, window registry,
collective gating, and cross-node synchronization."""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina
from repro.runtime import DCudaRuntime


def make_runtime(nodes=2, rpd=2):
    cluster = Cluster(greina(nodes))
    rt = DCudaRuntime(cluster, ranks_per_device=rpd)
    return cluster, rt


# ---------------------------------------------------------- rank topology ----
def test_rank_to_node_mapping():
    _, rt = make_runtime(nodes=3, rpd=4)
    assert rt.total_ranks == 12
    assert rt.node_of_rank(0) == 0
    assert rt.node_of_rank(3) == 0
    assert rt.node_of_rank(4) == 1
    assert rt.node_of_rank(11) == 2
    assert rt.state_of(5).device_rank == 1
    assert rt.bm_of(7).state.world_rank == 7


def test_rank_out_of_range():
    _, rt = make_runtime()
    with pytest.raises(ValueError):
        rt.node_of_rank(99)
    with pytest.raises(ValueError):
        rt.check_rank(-1)


def test_ranks_per_device_validation():
    cluster = Cluster(greina(1))
    with pytest.raises(ValueError):
        DCudaRuntime(cluster, ranks_per_device=0)
    with pytest.raises(ValueError):
        DCudaRuntime(cluster, ranks_per_device=10_000)


def test_double_start_rejected():
    cluster = Cluster(greina(1))
    rt = DCudaRuntime(cluster, ranks_per_device=1)
    rt.start()
    with pytest.raises(RuntimeError):
        rt.systems[0].start()


def test_xfer_ids_unique():
    _, rt = make_runtime()
    ids = [rt.next_xfer_id() for _ in range(100)]
    assert len(set(ids)) == 100


# ------------------------------------------------------- window registry ----
def test_window_global_ids_consistent_across_nodes():
    """Windows created collectively in the same order get the same global
    id on every node (the counter-consistency the paper's hash-map
    translation relies on)."""
    gids = {}

    def kernel(rank):
        buf = np.zeros(4)
        win_a = yield from rank.win_create(buf)
        win_b = yield from rank.win_create(np.zeros(2))
        gids.setdefault(rank.world_rank, (win_a.global_id, win_b.global_id))
        yield from rank.finish()

    launch(Cluster(greina(3)), kernel, ranks_per_device=2)
    unique = set(gids.values())
    assert len(unique) == 1  # every rank agrees
    a, b = unique.pop()
    assert a != b


def test_device_and_world_windows_do_not_collide():
    gids = {}

    def kernel(rank):
        w_world = yield from rank.win_create(np.zeros(4))
        w_dev = yield from rank.win_create(np.zeros(4), comm="device")
        gids[rank.world_rank] = (w_world.global_id, w_dev.global_id)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    for w, d in gids.values():
        assert w != d
        assert w[0] == "world"
        assert d[0].startswith("device")


def test_window_buffer_lookup_errors():
    _, rt = make_runtime()
    with pytest.raises(KeyError, match="no registration"):
        rt.systems[0].window_buffer(("world", 0), 0)


def test_unknown_communicator_rejected():
    cluster, rt = make_runtime()
    with pytest.raises(ValueError, match="unknown communicator"):
        rt.systems[0]._participants("galaxy")


# ------------------------------------------------------ win_free collective --
def test_win_free_removes_registration():
    cluster = Cluster(greina(2))
    seen = {}

    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        seen["gid"] = win.global_id
        yield from rank.win_free(win)
        yield from rank.finish()

    res = launch(cluster, kernel, ranks_per_device=1)
    for system in res.runtime.systems:
        assert seen["gid"] not in system.windows


# --------------------------------------------------- log records ordering ----
def test_log_records_carry_time_and_rank():
    def kernel(rank):
        yield rank.env.timeout(rank.world_rank * 1e-5)
        yield from rank.log(f"m{rank.world_rank}")
        yield from rank.finish()

    res = launch(Cluster(greina(1)), kernel, ranks_per_device=3)
    assert len(res.log_records) == 3
    for t, r, msg in res.log_records:
        assert msg == f"m{r}"
        assert t >= r * 1e-5
