"""Unit tests for the circular device↔host queues (§III-C)."""

import pytest

from repro.hw import PCIeConfig, PCIeLink
from repro.runtime import CircularQueue
from repro.sim import Environment


def make_queue(size=4, with_link=True, **pcie_kw):
    env = Environment()
    link = PCIeLink(env, PCIeConfig(**pcie_kw)) if with_link else None
    return env, link, CircularQueue(env, size, link)


def test_fifo_order():
    env, _, q = make_queue()
    got = []

    def producer(env):
        for i in range(8):
            yield from q.enqueue(i)

    def consumer(env):
        for _ in range(8):
            item = yield from q.dequeue()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == list(range(8))


def test_enqueue_costs_one_posted_write():
    env, link, q = make_queue(size=16)

    def producer(env):
        for i in range(5):
            yield from q.enqueue(i)

    env.process(producer(env))
    env.run()
    assert link.mapped_writes == 5
    assert link.mapped_reads == 0  # credits never ran out


def test_visibility_delay_before_dequeue():
    env, link, q = make_queue(size=4, mapped_post_occupancy=1.0,
                              mapped_write_latency=10.0)
    out = {}

    def producer(env):
        yield from q.enqueue("x")
        out["produced_at"] = env.now

    def consumer(env):
        item = yield from q.dequeue()
        out["consumed_at"] = env.now

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # Producer returns after the posted-write occupancy only...
    assert out["produced_at"] == pytest.approx(1.0)
    # ...but the entry is visible only after the write latency.
    assert out["consumed_at"] == pytest.approx(11.0)


def test_credit_exhaustion_triggers_tail_reload():
    env, link, q = make_queue(size=2)
    reloads = []

    def producer(env):
        for i in range(6):
            yield from q.enqueue(i)
        reloads.append(q.stats.credit_reloads)

    def consumer(env):
        for _ in range(6):
            yield from q.dequeue()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert reloads[0] >= 2
    assert link.mapped_reads == q.stats.credit_reloads


def test_producer_blocks_when_queue_full():
    env, _, q = make_queue(size=2)
    progress = []

    def producer(env):
        for i in range(4):
            yield from q.enqueue(i)
            progress.append((i, env.now))

    def consumer(env):
        yield env.timeout(100.0)
        for _ in range(4):
            yield from q.dequeue()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # First two fit; the rest wait for the consumer at t=100.
    assert progress[1][1] < 1.0
    assert progress[2][1] >= 100.0
    assert q.stats.full_stalls >= 1


def test_arrived_signal_fires_per_commit():
    env, _, q = make_queue(size=8)
    arrivals = []

    def watcher(env):
        for _ in range(3):
            yield q.arrived.wait()
            arrivals.append(env.now)

    def producer(env):
        for i in range(3):
            yield from q.enqueue(i)
            yield env.timeout(5.0)

    env.process(watcher(env))
    env.process(producer(env))
    env.run()
    assert len(arrivals) == 3


def test_try_dequeue_nonblocking():
    env, _, q = make_queue(size=4)

    def producer(env):
        yield from q.enqueue("a")

    env.process(producer(env))
    env.run()
    assert q.try_dequeue() == "a"
    assert q.try_dequeue() is None


def test_occupancy_and_credits():
    env, _, q = make_queue(size=4)
    snap = {}

    def producer(env):
        yield from q.enqueue(1)
        yield from q.enqueue(2)
        snap["credits"] = q.credits

    env.process(producer(env))
    env.run()
    assert q.occupancy == 2
    assert snap["credits"] == 2


def test_no_link_queue_is_free_and_instant():
    env, _, q = make_queue(with_link=False)

    def producer(env):
        yield from q.enqueue("fast")
        return env.now

    p = env.process(producer(env))
    env.run()
    assert p.value == 0.0
    assert q.try_dequeue() == "fast"


def test_invalid_size_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        CircularQueue(env, 0)


def test_interleaved_producer_consumer_order_with_delay():
    """Posted-write visibility delays must not reorder entries."""
    env, _, q = make_queue(size=64, mapped_post_occupancy=0.01,
                           mapped_write_latency=5.0)
    got = []

    def producer(env):
        for i in range(20):
            yield from q.enqueue(i)
            if i % 3 == 0:
                yield env.timeout(0.5)

    def consumer(env):
        for _ in range(20):
            item = yield from q.dequeue()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == list(range(20))
