"""Unit tests for the host-side one-sided (RMA) window."""

import numpy as np
import pytest

from repro.hw import Cluster, greina
from repro.mpi import HostWindow, MPIWorld


def make_window(num_nodes=2, size=16):
    cluster = Cluster(greina(num_nodes))
    world = MPIWorld(cluster)
    buffers = {r: np.zeros(size) for r in range(num_nodes)}
    win = HostWindow(world, buffers)
    return cluster, world, win


def test_put_lands_in_target_buffer():
    cluster, world, win = make_window()

    def origin(env):
        req = win.put(0, 1, np.array([1.0, 2.0, 3.0]), target_offset=4)
        yield from req.wait()

    cluster.env.process(origin(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(win.buffer(1)[4:7], [1.0, 2.0, 3.0])
    assert win.buffer(1)[:4].sum() == 0.0


def test_put_copies_source_at_call_time():
    cluster, world, win = make_window()
    src = np.array([5.0, 5.0])

    def origin(env):
        req = win.put(0, 1, src, target_offset=0)
        src[:] = -1.0
        yield from req.wait()

    cluster.env.process(origin(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(win.buffer(1)[:2], [5.0, 5.0])


def test_get_returns_target_data():
    cluster, world, win = make_window()
    win.buffer(1)[8:12] = [9.0, 8.0, 7.0, 6.0]
    out = {}

    def origin(env):
        req = win.get(0, 1, count=4, target_offset=8)
        data = yield from req.wait()
        out["data"] = data

    cluster.env.process(origin(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(out["data"], [9.0, 8.0, 7.0, 6.0])


def test_flush_waits_for_all_origin_ops():
    cluster, world, win = make_window()
    out = {}

    def origin(env):
        win.put(0, 1, np.ones(4), target_offset=0)
        win.put(0, 1, np.ones(4) * 2, target_offset=4)
        yield from win.flush(0)
        out["t"] = env.now
        # After flush both puts must be visible.
        np.testing.assert_array_equal(win.buffer(1)[:8],
                                      [1, 1, 1, 1, 2, 2, 2, 2])

    cluster.env.process(origin(cluster.env))
    cluster.run()
    assert out["t"] > 0.0


def test_flush_with_no_pending_is_noop():
    cluster, world, win = make_window()

    def origin(env):
        yield from win.flush(0)
        return env.now

    p = cluster.env.process(origin(cluster.env))
    cluster.run()
    assert p.value == 0.0


def test_out_of_bounds_rejected():
    cluster, world, win = make_window(size=8)
    with pytest.raises(IndexError):
        win.put(0, 1, np.ones(4), target_offset=6)
    with pytest.raises(IndexError):
        win.get(0, 1, count=9, target_offset=0)


def test_unattached_rank_rejected():
    cluster = Cluster(greina(3))
    world = MPIWorld(cluster)
    win = HostWindow(world, {0: np.zeros(4), 1: np.zeros(4)})
    with pytest.raises(KeyError):
        win.put(0, 2, np.ones(1), target_offset=0)


def test_non_1d_buffer_rejected():
    cluster = Cluster(greina(1))
    world = MPIWorld(cluster)
    with pytest.raises(ValueError):
        HostWindow(world, {0: np.zeros((2, 2))})
