"""Tests for scatter, gather, and sendrecv."""

import numpy as np
import pytest

from repro.hw import Cluster, greina
from repro.mpi import MPIWorld, gather, scatter, sendrecv


def run_collective(num_nodes, body, group=None):
    cluster = Cluster(greina(num_nodes))
    world = MPIWorld(cluster)
    results = {}
    ranks = group if group is not None else range(num_nodes)

    def proc(rank):
        res = yield from body(world, rank)
        results[rank] = res

    for r in ranks:
        cluster.env.process(proc(r))
    cluster.run()
    return results


@pytest.mark.parametrize("p,root", [(1, 0), (2, 0), (4, 2), (5, 4)])
def test_scatter_distributes_by_index(p, root):
    values = [np.full(2, float(i)) for i in range(p)]

    def body(world, rank):
        got = yield from scatter(world, rank,
                                 values if rank == root else None,
                                 root=root)
        return got

    results = run_collective(p, body)
    for r in range(p):
        np.testing.assert_array_equal(results[r], values[r])


def test_scatter_wrong_count_rejected():
    def body(world, rank):
        yield from scatter(world, rank, [1, 2, 3] if rank == 0 else None)

    cluster = Cluster(greina(2))
    world = MPIWorld(cluster)

    def proc():
        yield from scatter(world, 0, [1, 2, 3])

    cluster.env.process(proc())
    with pytest.raises(ValueError, match="exactly 2 values"):
        cluster.run()


@pytest.mark.parametrize("p,root", [(1, 0), (3, 0), (4, 3), (6, 2)])
def test_gather_collects_in_group_order(p, root):
    def body(world, rank):
        got = yield from gather(world, rank, rank * 5, root=root, nbytes=8)
        return got

    results = run_collective(p, body)
    assert results[root] == [r * 5 for r in range(p)]
    for r in range(p):
        if r != root:
            assert results[r] is None


def test_scatter_gather_roundtrip():
    p = 4
    original = [np.array([float(i), float(i) + 0.5]) for i in range(p)]

    def body(world, rank):
        mine = yield from scatter(world, rank,
                                  original if rank == 0 else None)
        mine = mine * 2.0
        back = yield from gather(world, rank, mine, root=0)
        return back

    results = run_collective(p, body)
    for i, arr in enumerate(results[0]):
        np.testing.assert_array_equal(arr, original[i] * 2.0)


def test_sendrecv_pairwise_exchange():
    def body(world, rank):
        peer = 1 - rank
        msg = yield from sendrecv(world, rank, peer,
                                  np.full(2, float(rank)), source=peer,
                                  sendtag=1, recvtag=1)
        return msg.payload

    results = run_collective(2, body)
    np.testing.assert_array_equal(results[0], [1.0, 1.0])
    np.testing.assert_array_equal(results[1], [0.0, 0.0])


def test_sendrecv_ring_shift():
    p = 5

    def body(world, rank):
        right = (rank + 1) % p
        left = (rank - 1) % p
        msg = yield from sendrecv(world, rank, right, rank, source=left,
                                  sendtag=2, recvtag=2, nbytes=8)
        return msg.payload

    results = run_collective(p, body)
    for r in range(p):
        assert results[r] == (r - 1) % p


def test_gather_on_subgroup():
    group = [1, 3]

    def body(world, rank):
        got = yield from gather(world, rank, rank, root=1, group=group,
                                nbytes=8)
        return got

    results = run_collective(4, body, group=group)
    assert results[1] == [1, 3]
    assert results[3] is None
