"""Unit tests for the two-sided MPI substrate."""

import numpy as np
import pytest

from repro.hw import Cluster, greina
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIWorld, wait_all_requests


def make_world(num_nodes=2, **overrides):
    cluster = Cluster(greina(num_nodes, **overrides))
    return cluster, MPIWorld(cluster)


def test_send_recv_roundtrip_data():
    cluster, world = make_world()
    data = np.arange(16, dtype=np.float64)
    out = {}

    def sender(env):
        yield from world.send(0, 1, data, tag=7)

    def receiver(env):
        msg = yield from world.recv(1, source=0, tag=7)
        out["payload"] = msg.payload
        out["src"] = msg.src
        out["tag"] = msg.tag

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(out["payload"], data)
    assert out["src"] == 0 and out["tag"] == 7


def test_send_copies_payload_at_send_time():
    cluster, world = make_world()
    data = np.ones(4)
    out = {}

    def sender(env):
        req = world.isend(0, 1, data, tag=1)
        data[:] = -1.0  # mutate after isend; receiver must see ones
        yield from req.wait()

    def receiver(env):
        msg = yield from world.recv(1)
        out["payload"] = msg.payload

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(out["payload"], np.ones(4))


def test_recv_matches_tag():
    cluster, world = make_world()
    order = []

    def sender(env):
        yield from world.send(0, 1, None, tag=5, nbytes=8)
        yield from world.send(0, 1, None, tag=9, nbytes=8)

    def receiver(env):
        msg = yield from world.recv(1, tag=9)
        order.append(msg.tag)
        msg = yield from world.recv(1, tag=5)
        order.append(msg.tag)

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert order == [9, 5]


def test_wildcard_source_and_tag():
    cluster, world = make_world(3)
    got = []

    def sender(env, src, tag):
        yield from world.send(src, 2, None, tag=tag, nbytes=8)

    def receiver(env):
        for _ in range(2):
            msg = yield from world.recv(2, source=ANY_SOURCE, tag=ANY_TAG)
            got.append((msg.src, msg.tag))

    cluster.env.process(sender(cluster.env, 0, 11))
    cluster.env.process(sender(cluster.env, 1, 22))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert sorted(got) == [(0, 11), (1, 22)]


def test_non_overtaking_same_pair_same_tag():
    """Messages between the same pair must arrive in send order, even when
    a later small message could physically beat an earlier big one."""
    cluster, world = make_world()
    got = []

    def sender(env):
        world.isend(0, 1, np.zeros(1 << 20), tag=3)     # 8 MB, slow
        world.isend(0, 1, None, tag=3, nbytes=8)        # tiny, fast
        yield env.timeout(0.0)

    def receiver(env):
        a = yield from world.recv(1, tag=3)
        b = yield from world.recv(1, tag=3)
        got.append(a.seq)
        got.append(b.seq)

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert got == [0, 1]


def test_irecv_posted_before_send():
    cluster, world = make_world()
    out = {}

    def receiver(env):
        req = world.irecv(1, source=0)
        assert not req.test()
        msg = yield from req.wait()
        out["t"] = env.now
        out["payload_none"] = msg.payload is None

    def sender(env):
        yield env.timeout(1e-3)
        yield from world.send(0, 1, None, nbytes=8)

    cluster.env.process(receiver(cluster.env))
    cluster.env.process(sender(cluster.env))
    cluster.run()
    assert out["t"] > 1e-3
    assert out["payload_none"]


def test_iprobe():
    cluster, world = make_world()
    seen = []

    def sender(env):
        yield from world.send(0, 1, None, tag=4, nbytes=8)

    def prober(env):
        assert not world.iprobe(1, tag=4)
        yield env.timeout(1.0)  # plenty of time for arrival
        seen.append(world.iprobe(1, tag=4))
        seen.append(world.iprobe(1, tag=5))

    cluster.env.process(sender(cluster.env))
    cluster.env.process(prober(cluster.env))
    cluster.run()
    assert seen == [True, False]


def test_wait_all_requests():
    cluster, world = make_world(3)
    out = {}

    def sender(env, src):
        yield from world.send(src, 2, None, tag=src, nbytes=8)

    def receiver(env):
        reqs = [world.irecv(2, source=s, tag=s) for s in (0, 1)]
        msgs = yield from wait_all_requests(env, reqs)
        out["tags"] = sorted(m.tag for m in msgs)

    cluster.env.process(sender(cluster.env, 0))
    cluster.env.process(sender(cluster.env, 1))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert out["tags"] == [0, 1]


def test_large_device_message_staged_through_host():
    """Device buffers above the staging threshold use the fast host path;
    below it they crawl over GPUDirect."""
    cluster, world = make_world(2)
    fab = cluster.cfg.fabric
    big = np.zeros(fab.staging_threshold, dtype=np.uint8)   # > threshold? equal
    times = {}

    def run_one(nbytes, key):
        def sender(env):
            yield from world.send(0, 1, None, nbytes=nbytes, device=True)

        def receiver(env):
            t0 = cluster.env.now
            yield from world.recv(1)
            times[key] = cluster.env.now - t0

        cluster.env.process(sender(cluster.env))
        cluster.env.process(receiver(cluster.env))
        cluster.run()

    nbytes = 4 << 20  # 4 MB
    run_one(nbytes, "staged")
    expect_staged = nbytes / fab.bandwidth
    expect_direct = nbytes / fab.d2d_bandwidth
    assert times["staged"] == pytest.approx(expect_staged, rel=0.2)
    assert times["staged"] < expect_direct / 2


def test_small_device_message_goes_direct():
    cluster, world = make_world(2)
    fab = cluster.cfg.fabric
    nbytes = 8 << 10  # 8 kB < 30 kB threshold
    times = {}

    def sender(env):
        yield from world.send(0, 1, None, nbytes=nbytes, device=True)

    def receiver(env):
        t0 = cluster.env.now
        yield from world.recv(1)
        times["dt"] = cluster.env.now - t0

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert times["dt"] > nbytes / fab.bandwidth  # slower than host path


def test_rank_validation():
    cluster, world = make_world(2)
    with pytest.raises(ValueError):
        world.isend(0, 5, None, nbytes=8)
    with pytest.raises(ValueError):
        world.irecv(7)
    with pytest.raises(TypeError):
        world.isend(0, 1, {"no": "size"})


def test_message_stats():
    cluster, world = make_world(2)

    def sender(env):
        yield from world.send(0, 1, np.zeros(10), tag=0)

    def receiver(env):
        yield from world.recv(1)

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert world.messages_sent == 1
    assert world.bytes_sent == 80.0
