"""Unit tests for MPI collectives (barrier, bcast, reduce, allreduce,
allgather) at several group sizes, including non-power-of-two."""

import numpy as np
import pytest

from repro.hw import Cluster, greina
from repro.mpi import MPIWorld, allgather, allreduce, barrier, bcast, reduce


def run_collective(num_nodes, body, group=None):
    """Spawn one process per participating rank running *body(world, rank)*;
    returns {rank: result}."""
    cluster = Cluster(greina(num_nodes))
    world = MPIWorld(cluster)
    results = {}
    ranks = group if group is not None else range(num_nodes)

    def proc(rank):
        res = yield from body(world, rank)
        results[rank] = res

    for r in ranks:
        cluster.env.process(proc(r))
    cluster.run()
    return results, cluster


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
def test_barrier_synchronizes(p):
    """No rank may leave the barrier before the last rank has entered."""
    enter = {}
    leave = {}

    def body(world, rank):
        yield world.env.timeout(float(rank))  # staggered arrival
        enter[rank] = world.env.now
        yield from barrier(world, rank)
        leave[rank] = world.env.now
        return None

    run_collective(p, body)
    last_enter = max(enter.values())
    assert all(t >= last_enter for t in leave.values())


@pytest.mark.parametrize("p,root", [(2, 0), (4, 0), (5, 2), (8, 7), (3, 1)])
def test_bcast_delivers_root_value(p, root):
    payload = np.arange(8, dtype=np.float64) * 3.0

    def body(world, rank):
        value = payload if rank == root else None
        got = yield from bcast(world, rank, value, root=root)
        return got

    results, _ = run_collective(p, body)
    for rank in range(p):
        np.testing.assert_array_equal(results[rank], payload)


@pytest.mark.parametrize("p,root", [(2, 0), (4, 3), (5, 0), (7, 2)])
def test_reduce_sums_contributions(p, root):
    def body(world, rank):
        value = np.full(4, float(rank + 1))
        got = yield from reduce(world, rank, value, op=np.add, root=root)
        return got

    results, _ = run_collective(p, body)
    expected = np.full(4, sum(range(1, p + 1)))
    np.testing.assert_array_equal(results[root], expected)
    for rank in range(p):
        if rank != root:
            assert results[rank] is None


@pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8])
def test_allreduce_everyone_gets_sum(p):
    def body(world, rank):
        got = yield from allreduce(world, rank, np.array([float(rank)]),
                                   op=np.add)
        return got

    results, _ = run_collective(p, body)
    expected = np.array([sum(range(p))], dtype=float)
    for rank in range(p):
        np.testing.assert_array_equal(results[rank], expected)


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_allgather_orders_by_group_index(p):
    def body(world, rank):
        got = yield from allgather(world, rank, rank * 10, nbytes=8)
        return got

    results, _ = run_collective(p, body)
    for rank in range(p):
        assert results[rank] == [r * 10 for r in range(p)]


def test_collectives_on_subgroup():
    group = [0, 2, 3]

    def body(world, rank):
        got = yield from allreduce(world, rank, float(rank), op=lambda a,
                                   b: a + b, group=group, nbytes=8)
        return got

    results, _ = run_collective(4, body, group=group)
    assert set(results) == set(group)
    for rank in group:
        assert results[rank] == 5.0


def test_group_validation():
    cluster = Cluster(greina(2))
    world = MPIWorld(cluster)

    def bad_dup(world, rank):
        yield from barrier(world, rank, group=[0, 0])

    def bad_member(world, rank):
        yield from barrier(world, rank, group=[1])

    cluster.env.process(bad_dup(world, 0))
    with pytest.raises(ValueError, match="duplicate"):
        cluster.run()

    cluster2 = Cluster(greina(2))
    world2 = MPIWorld(cluster2)
    cluster2.env.process(bad_member(world2, 0))
    with pytest.raises(ValueError, match="not in group"):
        cluster2.run()


def test_back_to_back_collectives_do_not_crosstalk():
    """Two consecutive bcasts with different roots must not mix payloads."""
    def body(world, rank):
        a = yield from bcast(world, rank, "A" if rank == 0 else None,
                             root=0, nbytes=8)
        b = yield from bcast(world, rank, "B" if rank == 1 else None,
                             root=1, nbytes=8)
        return (a, b)

    results, _ = run_collective(4, body)
    for rank in range(4):
        assert results[rank] == ("A", "B")


def test_barrier_costs_time_on_multiple_nodes():
    def body(world, rank):
        yield from barrier(world, rank)
        return world.env.now

    results, cluster = run_collective(4, body)
    assert min(results.values()) > 0.0
