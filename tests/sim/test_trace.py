"""Unit tests for the interval tracer and span algebra."""

import pytest

from repro.sim import Interval, Tracer, merge_intervals, overlap_time, total_time


def test_merge_intervals_disjoint():
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


def test_merge_intervals_overlapping():
    assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]


def test_merge_intervals_touching():
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]


def test_merge_intervals_drops_empty():
    assert merge_intervals([(1, 1), (2, 1)]) == []


def test_total_time_counts_overlap_once():
    assert total_time([(0, 2), (1, 3)]) == pytest.approx(3.0)


def test_overlap_time_basic():
    a = [(0, 10)]
    b = [(5, 15)]
    assert overlap_time(a, b) == pytest.approx(5.0)


def test_overlap_time_multiple_spans():
    a = [(0, 2), (4, 6)]
    b = [(1, 5)]
    assert overlap_time(a, b) == pytest.approx(2.0)  # (1,2) + (4,5)


def test_overlap_time_disjoint_is_zero():
    assert overlap_time([(0, 1)], [(2, 3)]) == 0.0


def test_tracer_records_and_queries():
    tr = Tracer()
    tr.record("block0", "compute", 0.0, 2.0)
    tr.record("block0", "comm", 2.0, 3.0)
    tr.record("block1", "compute", 1.0, 4.0)
    assert len(tr.by_actor("block0")) == 2
    assert len(tr.by_kind("compute")) == 2
    assert tr.actors() == ["block0", "block1"]
    assert tr.busy_time(kind="compute") == pytest.approx(4.0)  # union of (0,2),(1,4)
    assert tr.busy_time(actor="block0") == pytest.approx(3.0)


def test_tracer_disabled_is_noop():
    tr = Tracer(enabled=False)
    tr.record("a", "x", 0.0, 1.0)
    assert tr.intervals == []


def test_tracer_rejects_backwards_interval():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.record("a", "x", 2.0, 1.0)


def test_tracer_rejects_empty_actor_and_kind():
    tr = Tracer()
    with pytest.raises(ValueError, match="actor"):
        tr.record("", "compute", 0.0, 1.0)
    with pytest.raises(ValueError, match="kind"):
        tr.record("block0", "", 0.0, 1.0)
    assert tr.intervals == []


def test_tracer_rejects_non_string_actor_and_kind():
    tr = Tracer()
    with pytest.raises(ValueError, match="actor"):
        tr.record(None, "compute", 0.0, 1.0)
    with pytest.raises(ValueError, match="kind"):
        tr.record("block0", 3, 0.0, 1.0)


def test_tracer_disabled_skips_validation():
    # The disabled tracer is a pure no-op — no cost, no checks.
    tr = Tracer(enabled=False)
    tr.record("", "", 2.0, 1.0)
    assert tr.intervals == []


def test_tracer_accepts_zero_length_interval():
    tr = Tracer()
    tr.record("a", "x", 1.0, 1.0)
    assert tr.intervals[0].duration == 0.0


def test_merge_intervals_unsorted_input():
    assert merge_intervals([(5, 6), (0, 2), (1, 3)]) == [(0, 3), (5, 6)]


def test_merge_intervals_zero_length_inside_span():
    # Zero-length spans carry no time and are dropped even when they fall
    # inside (or touch) a real span.
    assert merge_intervals([(0, 2), (1, 1), (2, 2), (3, 3)]) == [(0, 2)]


def test_merge_intervals_contained_span():
    assert merge_intervals([(0, 10), (2, 3), (4, 5)]) == [(0, 10)]


def test_overlap_time_exact_touch_is_zero():
    # Spans that only share a boundary point overlap for zero time.
    assert overlap_time([(0, 1)], [(1, 2)]) == 0.0


def test_overlap_time_unsorted_input():
    a = [(4, 6), (0, 2)]
    b = [(1, 5)]
    assert overlap_time(a, b) == pytest.approx(2.0)


def test_overlap_time_identical_sets():
    spans = [(0, 1), (2, 4)]
    assert overlap_time(spans, spans) == pytest.approx(3.0)


def test_overlap_time_empty_sets():
    assert overlap_time([], [(0, 1)]) == 0.0
    assert overlap_time([(0, 1)], []) == 0.0
    assert overlap_time([], []) == 0.0


def test_interval_duration():
    iv = Interval("a", "compute", 1.0, 3.5)
    assert iv.duration == pytest.approx(2.5)


def test_render_ascii_contains_actors():
    tr = Tracer()
    tr.record("rank0", "compute", 0.0, 1.0)
    tr.record("rank1", "comm", 1.0, 2.0)
    art = tr.render_ascii(width=20)
    assert "rank0" in art and "rank1" in art
    assert "c" in art


def test_render_ascii_empty():
    assert Tracer().render_ascii() == "(empty trace)"


def test_tracer_clear():
    tr = Tracer()
    tr.record("a", "x", 0.0, 1.0)
    tr.clear()
    assert tr.intervals == []
