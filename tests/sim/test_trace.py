"""Unit tests for the interval tracer and span algebra."""

import pytest

from repro.sim import Interval, Tracer, merge_intervals, overlap_time, total_time


def test_merge_intervals_disjoint():
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


def test_merge_intervals_overlapping():
    assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]


def test_merge_intervals_touching():
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]


def test_merge_intervals_drops_empty():
    assert merge_intervals([(1, 1), (2, 1)]) == []


def test_total_time_counts_overlap_once():
    assert total_time([(0, 2), (1, 3)]) == pytest.approx(3.0)


def test_overlap_time_basic():
    a = [(0, 10)]
    b = [(5, 15)]
    assert overlap_time(a, b) == pytest.approx(5.0)


def test_overlap_time_multiple_spans():
    a = [(0, 2), (4, 6)]
    b = [(1, 5)]
    assert overlap_time(a, b) == pytest.approx(2.0)  # (1,2) + (4,5)


def test_overlap_time_disjoint_is_zero():
    assert overlap_time([(0, 1)], [(2, 3)]) == 0.0


def test_tracer_records_and_queries():
    tr = Tracer()
    tr.record("block0", "compute", 0.0, 2.0)
    tr.record("block0", "comm", 2.0, 3.0)
    tr.record("block1", "compute", 1.0, 4.0)
    assert len(tr.by_actor("block0")) == 2
    assert len(tr.by_kind("compute")) == 2
    assert tr.actors() == ["block0", "block1"]
    assert tr.busy_time(kind="compute") == pytest.approx(4.0)  # union of (0,2),(1,4)
    assert tr.busy_time(actor="block0") == pytest.approx(3.0)


def test_tracer_disabled_is_noop():
    tr = Tracer(enabled=False)
    tr.record("a", "x", 0.0, 1.0)
    assert tr.intervals == []


def test_tracer_rejects_backwards_interval():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.record("a", "x", 2.0, 1.0)


def test_interval_duration():
    iv = Interval("a", "compute", 1.0, 3.5)
    assert iv.duration == pytest.approx(2.5)


def test_render_ascii_contains_actors():
    tr = Tracer()
    tr.record("rank0", "compute", 0.0, 1.0)
    tr.record("rank1", "comm", 1.0, 2.0)
    art = tr.render_ascii(width=20)
    assert "rank0" in art and "rank1" in art
    assert "c" in art


def test_render_ascii_empty():
    assert Tracer().render_ascii() == "(empty trace)"


def test_tracer_clear():
    tr = Tracer()
    tr.record("a", "x", 0.0, 1.0)
    tr.clear()
    assert tr.intervals == []
