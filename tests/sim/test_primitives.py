"""Unit tests for signals, gates, semaphores, and combinators."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Gate, Semaphore, Signal


# ---------------------------------------------------------------- Signal ----
def test_signal_wakes_all_waiters():
    env = Environment()
    sig = Signal(env)
    woken = []

    def waiter(env, tag):
        val = yield sig.wait()
        woken.append((tag, env.now, val))

    def firer(env):
        yield env.timeout(2.0)
        n = sig.fire("go")
        assert n == 2

    env.process(waiter(env, "a"))
    env.process(waiter(env, "b"))
    env.process(firer(env))
    env.run()
    assert woken == [("a", 2.0, "go"), ("b", 2.0, "go")]


def test_signal_has_no_memory():
    env = Environment()
    sig = Signal(env)
    woken = []

    def late_waiter(env):
        yield env.timeout(5.0)  # fire happens at t=1
        yield sig.wait()
        woken.append(env.now)

    def firer(env):
        yield env.timeout(1.0)
        sig.fire()
        yield env.timeout(9.0)
        sig.fire()

    env.process(late_waiter(env))
    env.process(firer(env))
    env.run()
    assert woken == [10.0]


def test_signal_waiting_count():
    env = Environment()
    sig = Signal(env)

    def waiter(env):
        yield sig.wait()

    env.process(waiter(env))
    env.run()  # waiter parked; queue drains
    assert sig.waiting == 1
    sig.fire()
    env.run()
    assert sig.waiting == 0


# ------------------------------------------------------------------ Gate ----
def test_gate_open_completes_immediately():
    env = Environment()
    gate = Gate(env, is_open=True)

    def proc(env):
        yield gate.wait()
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_gate_closed_blocks_until_open():
    env = Environment()
    gate = Gate(env)

    def proc(env):
        yield gate.wait()
        return env.now

    def opener(env):
        yield env.timeout(4.0)
        gate.open()

    p = env.process(proc(env))
    env.process(opener(env))
    env.run()
    assert p.value == 4.0
    assert gate.is_open


def test_gate_close_reblocks():
    env = Environment()
    gate = Gate(env, is_open=True)
    gate.close()
    times = []

    def proc(env):
        yield gate.wait()
        times.append(env.now)

    def opener(env):
        yield env.timeout(1.0)
        gate.open()

    env.process(proc(env))
    env.process(opener(env))
    env.run()
    assert times == [1.0]


# ------------------------------------------------------------- Semaphore ----
def test_semaphore_limits_concurrency():
    env = Environment()
    sem = Semaphore(env, 2)
    active = [0]
    peak = [0]

    def worker(env):
        yield from sem.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield env.timeout(1.0)
        active[0] -= 1
        sem.release()

    for _ in range(5):
        env.process(worker(env))
    env.run()
    assert peak[0] == 2
    # 5 workers, 2 at a time, 1s each → ceil(5/2) = 3 time units
    assert env.now == 3.0


def test_semaphore_fcfs_order():
    env = Environment()
    sem = Semaphore(env, 1)
    order = []

    def worker(env, tag, start):
        yield env.timeout(start)
        yield from sem.acquire()
        order.append(tag)
        yield env.timeout(10.0)
        sem.release()

    env.process(worker(env, "first", 0.0))
    env.process(worker(env, "second", 1.0))
    env.process(worker(env, "third", 2.0))
    env.run()
    assert order == ["first", "second", "third"]


def test_semaphore_over_release_is_error():
    env = Environment()
    sem = Semaphore(env, 1)
    with pytest.raises(RuntimeError):
        sem.release()


def test_semaphore_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Semaphore(env, 0)


def test_semaphore_counts():
    env = Environment()
    sem = Semaphore(env, 3)
    assert sem.available == 3
    req = sem.request()
    assert req.triggered
    assert sem.available == 2


# ------------------------------------------------------------ AllOf/AnyOf ----
def test_all_of_waits_for_slowest():
    env = Environment()

    def proc(env):
        vals = yield AllOf(env, [env.timeout(1.0, value="a"),
                                 env.timeout(3.0, value="b"),
                                 env.timeout(2.0, value="c")])
        return (env.now, vals)

    p = env.process(proc(env))
    env.run()
    assert p.value == (3.0, ["a", "b", "c"])


def test_all_of_empty_completes_immediately():
    env = Environment()

    def proc(env):
        vals = yield AllOf(env, [])
        return vals

    p = env.process(proc(env))
    env.run()
    assert p.value == []


def test_all_of_propagates_failure():
    env = Environment()
    bad = env.event()

    def proc(env):
        try:
            yield AllOf(env, [env.timeout(5.0), bad])
        except RuntimeError as exc:
            return (env.now, str(exc))

    def firer(env):
        yield env.timeout(1.0)
        bad.fail(RuntimeError("dead"))

    p = env.process(proc(env))
    env.process(firer(env))
    env.run()
    assert p.value == (1.0, "dead")


def test_any_of_returns_first():
    env = Environment()

    def proc(env):
        idx, val = yield AnyOf(env, [env.timeout(5.0, value="slow"),
                                     env.timeout(1.0, value="fast")])
        return (env.now, idx, val)

    p = env.process(proc(env))
    env.run()
    assert p.value == (1.0, 1, "fast")


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        AnyOf(env, [])
