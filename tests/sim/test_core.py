"""Unit tests for the DES kernel (repro.sim.core)."""

import pytest

from repro.sim import Environment, Event, Interrupt, Process, SimulationError


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        assert env.now == 0.0
        yield env.timeout(1.5)
        assert env.now == 1.5
        yield env.timeout(0.5)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 2.0
    assert env.now == 2.0


def test_timeout_carries_value():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_zero_delay_timeout_runs_same_time():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(0.0)
        order.append(tag)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert order == ["a", "b"]
    assert env.now == 0.0


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    results = []

    def waiter(env):
        val = yield ev
        results.append((env.now, val))

    def firer(env):
        yield env.timeout(3.0)
        ev.succeed(42)

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert results == [(3.0, 42)]


def test_event_double_trigger_is_error():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("x"))


def test_event_fail_throws_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_observed_process_failure_does_not_escape_run():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("observed")

    def parent(env):
        child = env.process(bad(env))
        try:
            yield child
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["observed"]


def test_process_join_returns_child_value():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (2.0, "done")


def test_yield_from_composition():
    env = Environment()

    def sub(env, n):
        total = 0.0
        for _ in range(n):
            yield env.timeout(1.0)
            total += 1.0
        return total

    def main(env):
        a = yield from sub(env, 3)
        b = yield from sub(env, 2)
        return a + b

    p = env.process(main(env))
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_join_already_finished_process():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return 7

    def parent(env):
        c = env.process(child(env))
        yield env.timeout(5.0)
        val = yield c  # c finished long ago
        return (env.now, val)

    p = env.process(parent(env))
    env.run()
    assert p.value == (5.0, 7)


def test_interrupt_waiting_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_stops_clock():
    env = Environment()
    log = []

    def ticker(env):
        while True:
            yield env.timeout(1.0)
            log.append(env.now)

    env.process(ticker(env))
    env.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_in_past_rejected():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_deterministic_tie_break_is_spawn_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ["x", "y", "z"]:
        env.process(proc(env, tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_run_all_helper():
    env = Environment()

    def worker(env, n):
        yield env.timeout(n)
        return n * 10

    results = env.run_all(worker(env, n) for n in (3, 1, 2))
    assert results == [30, 10, 20]


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_peek_and_step():
    env = Environment()
    env.timeout(2.0)
    assert env.peek() == 2.0
    env.step()
    assert env.now == 2.0
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_active_process_visible_during_step():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1.0)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_step_drops_abandoned_timers():
    """Regression: step() must drop abandoned timers exactly like run()
    does, instead of firing the losing arm of a bounded wait, and must
    not advance the clock for a dropped entry."""
    env = Environment()
    fired = []
    loser = env.timeout(1.0)
    loser.add_callback(lambda e: fired.append("loser"))
    loser.abandoned = True
    winner = env.timeout(2.0)
    winner.add_callback(lambda e: fired.append("winner"))
    env.step()
    assert fired == ["winner"]
    assert env.now == 2.0


def test_step_drops_abandoned_due_entries():
    env = Environment()
    fired = []
    loser = env.timeout(0.0)
    loser.add_callback(lambda e: fired.append("loser"))
    loser.abandoned = True
    winner = env.timeout(0.0)
    winner.add_callback(lambda e: fired.append("winner"))
    env.step()
    assert fired == ["winner"]
    assert env.now == 0.0


def test_step_raises_when_only_abandoned_entries_remain():
    env = Environment()
    ev = env.timeout(1.0)
    ev.abandoned = True
    with pytest.raises(SimulationError):
        env.step()


def test_step_and_run_agree_on_abandoned_heavy_schedule():
    """Driving the same workload by repeated step() calls yields the
    run() dispatch order even with interleaved abandoned entries."""
    def build():
        env = Environment()
        fired = []
        for i in range(6):
            ev = env.timeout(0.25 * i)
            ev.add_callback(lambda e, i=i: fired.append((env.now, i)))
            if i % 2:
                ev.abandoned = True
        return env, fired

    env_a, fired_a = build()
    env_a.run()
    env_b, fired_b = build()
    while True:
        try:
            env_b.step()
        except SimulationError:
            break
    assert fired_a == fired_b == [(0.0, 0), (0.5, 2), (1.0, 4)]
