"""Unit tests for Store and Channel."""

import pytest

from repro.sim import Channel, Environment, Store


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [i for _, i in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)

    def consumer(env):
        item = yield store.get()
        return (env.now, item)

    def producer(env):
        yield env.timeout(7.0)
        yield store.put("late")

    p = env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert p.value == (7.0, "late")


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")  # blocks until "a" consumed
        times.append(("b", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [("a", 0.0), ("b", 5.0)]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put({"tag": 1, "v": "one"})
        yield store.put({"tag": 2, "v": "two"})

    def consumer(env):
        item = yield store.get(lambda m: m["tag"] == 2)
        return item["v"]

    env.process(producer(env))
    p = env.process(consumer(env))
    env.run()
    assert p.value == "two"
    assert len(store) == 1  # tag 1 still buffered


def test_store_filtered_get_waits_for_match():
    env = Environment()
    store = Store(env)

    def producer(env):
        yield store.put(1)
        yield env.timeout(3.0)
        yield store.put(2)

    def consumer(env):
        item = yield store.get(lambda x: x == 2)
        return (env.now, item)

    env.process(producer(env))
    p = env.process(consumer(env))
    env.run()
    assert p.value == (3.0, 2)


def test_store_multiple_getters_fcfs():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1.0)
        yield store.put("x")
        yield store.put("y")

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))
    env.process(producer(env))
    env.run()
    assert got == [("first", "x"), ("second", "y")]


def test_try_put_respects_capacity():
    env = Environment()
    store = Store(env, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    assert store.items == ("a",)


def test_try_get_and_peek():
    env = Environment()
    store = Store(env)
    store.try_put(1)
    store.try_put(2)
    assert store.peek(lambda x: x > 1) == 2
    assert store.try_get(lambda x: x > 1) == 2
    assert store.try_get(lambda x: x > 1) is None
    assert store.try_get() == 1


def test_try_get_with_queued_getters_is_error():
    env = Environment()
    store = Store(env)

    def consumer(env):
        yield store.get()

    env.process(consumer(env))
    env.run()
    with pytest.raises(RuntimeError):
        store.try_get()


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_channel_send_recv():
    env = Environment()
    chan = Channel(env)

    def sender(env):
        yield env.timeout(1.0)
        yield from chan.send("ping")

    def receiver(env):
        msg = yield from chan.recv()
        return (env.now, msg)

    env.process(sender(env))
    p = env.process(receiver(env))
    env.run()
    assert p.value == (1.0, "ping")


def test_channel_filtered_recv():
    env = Environment()
    chan = Channel(env)

    def sender(env):
        yield from chan.send(("a", 1))
        yield from chan.send(("b", 2))

    def receiver(env):
        msg = yield from chan.recv(lambda m: m[0] == "b")
        return msg

    env.process(sender(env))
    p = env.process(receiver(env))
    env.run()
    assert p.value == ("b", 2)
    assert len(chan) == 1
