"""Smoke test: the DES core runs with numpy absent (pure-python fallback).

numpy is the ``[perf]`` optional extra, not a hard dependency — the
scheduler, primitives, and the FairShareLink fluid model must all work
without it, falling back to the scalar code paths.  This test runs the
same deterministic workload twice in subprocesses — once normally, once
with a meta-path hook that blocks every ``numpy`` import — and asserts
the two runs print bit-identical completion schedules.
"""

import subprocess
import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Deterministic workload exercising the scheduler (timeouts, processes,
#: due-lane zero delays) and every FairShareLink batch entry point that
#: has a numpy fast path: transfer_batch target computation, the bulk
#: heapify threshold (>= 8 flows), and the _advance completion sweep
#: (>= 64 simultaneous flows).
_WORKLOAD = """
from repro.sim import Environment
from repro.sim.link import FairShareLink

env = Environment()
link = FairShareLink(env, bandwidth=100.0)
out = []

def driver():
    events = link.transfer_batch([100.0, 50.0, 0.0, 200.0] + [10.0] * 8,
                                 weight=2.0)
    for i, ev in enumerate(events):
        ev.add_callback(lambda _e, i=i: out.append((env.now, "batch", i)))
    yield env.timeout(0.5)
    done = link.transfer(75.0)
    yield done
    out.append((env.now, "single", 0))
    yield from link.stream_batch([1.0] * 100, weight=0.5)
    out.append((env.now, "sweep", 0))

env.process(driver())
env.run()
print(repr(out))
print(repr(env.now))
"""

_BLOCKER = """
import sys

class _NumpyBlocker:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked by test_no_numpy")
        return None

sys.meta_path.insert(0, _NumpyBlocker())
"""

_SANITY = """
import sys
assert "numpy" not in sys.modules, "numpy leaked past the blocker"
import repro.sim.link as _link
assert _link._np is None, "link module did not fall back to pure python"
"""


def _run(script: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": _SRC, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_core_runs_without_numpy_bit_identically():
    with_numpy = _run(_WORKLOAD)
    without_numpy = _run(_BLOCKER + _WORKLOAD + _SANITY)
    assert with_numpy == without_numpy
    # The schedule is non-trivial: batch flows, the single transfer, and
    # the 100-flow sweep all completed.
    assert "'sweep'" in with_numpy
    assert with_numpy.count("'batch'") == 12


@pytest.mark.slow
def test_sim_package_imports_without_numpy():
    script = _BLOCKER + """
import repro.sim
import repro.sim.primitives
import repro.sim.channel
import repro.sim.resources
import repro.sim.trace
import sys
assert "numpy" not in sys.modules
print("ok")
"""
    assert _run(script).strip() == "ok"
