"""Additional DES kernel edge cases: interrupts, reuse, failure timing."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Interrupt,
    Semaphore,
    SimulationError,
    Store,
)


def test_interrupt_cause_is_carried():
    env = Environment()
    seen = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            seen.append(i.cause)

    v = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(1.0)
        v.interrupt({"reason": "test"})

    env.process(interrupter(env))
    env.run()
    assert seen == [{"reason": "test"}]


def test_interrupted_process_can_continue():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(2.0)  # resumes normal life
        return env.now

    v = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(1.0)
        v.interrupt()

    env.process(interrupter(env))
    env.run()
    assert v.value == pytest.approx(3.0)


def test_interrupt_does_not_fire_original_event_twice():
    """The interrupted wait's original event still fires later without
    resuming the process again."""
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(5.0)
            log.append("timeout")
        except Interrupt:
            log.append("interrupted")
        yield env.timeout(10.0)
        log.append("done")

    v = env.process(victim(env))

    def interrupter(env):
        yield env.timeout(1.0)
        v.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == ["interrupted", "done"]
    assert env.now == pytest.approx(11.0)


def test_semaphore_holder_interrupted_releases_via_finally():
    env = Environment()
    sem = Semaphore(env, 1)
    order = []

    def holder(env):
        yield from sem.acquire()
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        finally:
            sem.release()
        order.append("holder-out")

    def waiter(env):
        yield from sem.acquire()
        order.append(("waiter-in", env.now))
        sem.release()

    h = env.process(holder(env))
    env.process(waiter(env))

    def interrupter(env):
        yield env.timeout(3.0)
        h.interrupt()

    env.process(interrupter(env))
    env.run()
    assert ("waiter-in", 3.0) in order


def test_all_of_with_already_triggered_events():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def proc(env):
        vals = yield AllOf(env, [done, env.timeout(2.0, value="late")])
        return vals

    p = env.process(proc(env))
    env.run()
    assert p.value == ["early", "late"]


def test_store_get_then_interrupt_releases_slot():
    """An interrupted getter must not consume the next item."""
    env = Environment()
    store = Store(env)
    got = []

    def waiter(env):
        try:
            yield store.get()
        except Interrupt:
            pass

    def second(env):
        item = yield store.get()
        got.append(item)

    w = env.process(waiter(env))
    env.process(second(env))

    def driver(env):
        yield env.timeout(1.0)
        w.interrupt()
        yield env.timeout(1.0)
        yield store.put("x")

    env.process(driver(env))
    env.run()
    assert got == ["x"]


def test_environment_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 105.0
