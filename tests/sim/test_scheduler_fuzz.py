"""Randomized scheduler-parity fuzz: bucketed core vs. the heap contract.

The calendar-queue core (near-future ring + far-future heap + due lane)
must dispatch in exactly the order of the original single binary heap:
``(when, priority, seq)`` ascending, with abandoned timers dropped
without dispatch.  This harness generates seeded random workloads —
mixed deferred calls, timeout events, explicit priorities, same-timestamp
storms, far-horizon delays, and mid-run abandonment — runs them through
a tiny reference implementation of the heap contract *and* through the
real :class:`~repro.sim.core.Environment`, and asserts the two dispatch
sequences are identical tuple for tuple.

The reference kernel is deliberately the naive model: one ``heapq`` of
``(when, priority, seq)`` keys.  Any divergence in bucket selection,
ring/far migration, due-lane batching, or the cached-minimum rescan shows
up as a mismatched dispatch log.
"""

import heapq
import random

import pytest

from repro.sim import Environment, Event

#: Delay palette: heavy same-timestamp collisions (0.0 and repeated
#: sub-bucket values), values straddling bucket boundaries of the 1e-7
#: default width, and far-horizon delays beyond the 256-bucket ring.
_DELAYS = [0.0, 0.0, 0.0, 1e-7, 1e-7, 2.5e-7, 9.9e-7, 1e-6, 3.7e-5,
           1.3e-4, 0.5, 1.0, 257.0, 1000.0]

_KINDS = ["deferred", "deferred", "timeout", "timeout", "prio", "victim"]


def _gen_tree(rng: random.Random, budget: list, depth: int = 0) -> dict:
    """One random op node; may carry children scheduled at dispatch."""
    node = {
        "id": budget[1],
        "kind": rng.choice(_KINDS),
        "delay": rng.choice(_DELAYS),
        "priority": 1,
        "children": [],
        "abandon": None,
    }
    budget[0] -= 1
    budget[1] += 1
    if node["kind"] == "prio":
        node["priority"] = rng.choice([0, 1, 2])
    if node["kind"] == "victim":
        # Victims are plain timeouts some later dispatch may abandon.
        budget[2].append(node["id"])
    elif rng.random() < 0.25 and budget[2]:
        node["abandon"] = rng.choice(budget[2])
    if node["kind"] != "victim" and depth < 4:
        while budget[0] > 0 and rng.random() < 0.45:
            node["children"].append(_gen_tree(rng, budget, depth + 1))
    return node


def _gen_workload(seed: int, size: int = 120):
    rng = random.Random(seed)
    budget = [size, 0, []]  # remaining ops, next id, victim ids
    roots = []
    while budget[0] > 0:
        roots.append(_gen_tree(rng, budget))
    return roots


def _run_reference(roots) -> list:
    """The old order contract: one heap of ``(when, priority, seq)``."""
    heap: list = []
    log = []
    killed: set = set()
    seq = 0
    now = 0.0

    def push(node):
        nonlocal seq
        seq += 1
        heapq.heappush(heap,
                       (now + node["delay"], node["priority"], seq, node))

    for r in roots:
        push(r)
    while heap:
        when, pri, s, node = heapq.heappop(heap)
        if node["id"] in killed:
            continue  # abandoned timer: dropped, clock not advanced
        now = when
        log.append((when, pri, s, node["id"]))
        if node["abandon"] is not None:
            killed.add(node["abandon"])
        for child in node["children"]:
            push(child)
    return log


def _run_real(roots, stepped: bool = False) -> list:
    """The same workload through the real bucketed Environment."""
    env = Environment()
    log = []
    seqs = {}
    victims = {}
    killed = set()

    def fire(node):
        log.append((env.now, node["priority"], seqs[node["id"]], node["id"]))
        target = node["abandon"]
        if target is not None:
            # Mirror the reference: a not-yet-scheduled victim is doomed
            # the moment it enters the queue.
            killed.add(target)
            if target in victims:
                victims[target].abandoned = True
        for child in node["children"]:
            push(child)

    def push(node):
        kind = node["kind"]
        if kind == "deferred":
            env.call_at(node["delay"], fire, node)
        elif kind == "prio":
            ev = Event(env)
            ev.add_callback(lambda _e, n=node: fire(n))
            env._schedule(ev, node["delay"], node["priority"])
        else:  # timeout / victim
            ev = env.timeout(node["delay"])
            ev.add_callback(lambda _e, n=node: fire(n))
            if kind == "victim":
                victims[node["id"]] = ev
                if node["id"] in killed:
                    ev.abandoned = True
        seqs[node["id"]] = env._seq

    for r in roots:
        push(r)
    if stepped:
        from repro.sim.core import SimulationError
        while True:
            try:
                env.step()
            except SimulationError:
                break
    else:
        env.run()
    return log


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_dispatch_sequence_matches_heap_contract(seed):
    roots = _gen_workload(seed)
    assert _run_real(roots) == _run_reference(roots)


@pytest.mark.parametrize("seed", [0, 3, 7])
def test_fuzz_stepped_dispatch_matches_heap_contract(seed):
    """Single-stepping must follow the identical contract — including
    dropping abandoned timers instead of firing the losing wait arm."""
    roots = _gen_workload(seed)
    assert _run_real(roots, stepped=True) == _run_reference(roots)


def test_fuzz_far_horizon_only():
    """All-far-future workload: the ring is empty, migration feeds it."""
    roots = _gen_workload(99)
    for r in roots:
        r["delay"] = r["delay"] + 300.0  # everything beyond the ring
    assert _run_real(roots) == _run_reference(roots)
