"""Unit tests for FairShareLink and SerialLink."""

import pytest

from repro.sim import Environment, FairShareLink, SerialLink


def test_single_flow_takes_bytes_over_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)

    def proc(env):
        yield link.transfer(500.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(5.0)


def test_two_equal_flows_share_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = {}

    def proc(env, tag):
        yield link.transfer(500.0)
        done[tag] = env.now

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    # Both share 100 B/s → each effectively 50 B/s → 10 s.
    assert done["a"] == pytest.approx(10.0)
    assert done["b"] == pytest.approx(10.0)


def test_total_throughput_never_exceeds_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)
    finish = []

    def proc(env, nbytes):
        yield link.transfer(nbytes)
        finish.append(env.now)

    for nbytes in (10.0, 20.0, 30.0):
        env.process(proc(env, nbytes))
    env.run()
    # 60 bytes total through a 10 B/s link: last finisher at exactly 6 s.
    assert max(finish) == pytest.approx(6.0)


def test_short_flow_finishes_first_and_frees_share():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = {}

    def proc(env, tag, nbytes):
        yield link.transfer(nbytes)
        done[tag] = env.now

    env.process(proc(env, "short", 100.0))
    env.process(proc(env, "long", 300.0))
    env.run()
    # Phase 1: both at 50 B/s; short (100 B) done at t=2, long has 200 B left.
    # Phase 2: long alone at 100 B/s → 2 more seconds → t=4.
    assert done["short"] == pytest.approx(2.0)
    assert done["long"] == pytest.approx(4.0)


def test_late_arrival_slows_existing_flow():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = {}

    def first(env):
        yield link.transfer(400.0)
        done["first"] = env.now

    def second(env):
        yield env.timeout(2.0)  # first has 200 B left at t=2
        yield link.transfer(100.0)
        done["second"] = env.now

    env.process(first(env))
    env.process(second(env))
    env.run()
    # t=2..4: both at 50 B/s. second (100 B) done at t=4; first has 100 B
    # left, then alone at 100 B/s → done at t=5.
    assert done["second"] == pytest.approx(4.0)
    assert done["first"] == pytest.approx(5.0)


def test_weighted_flows():
    env = Environment()
    link = FairShareLink(env, bandwidth=90.0)
    done = {}

    def proc(env, tag, nbytes, weight):
        yield link.transfer(nbytes, weight=weight)
        done[tag] = env.now

    env.process(proc(env, "heavy", 120.0, 2.0))
    env.process(proc(env, "light", 60.0, 1.0))
    env.run()
    # heavy gets 60 B/s, light 30 B/s → both finish at t=2.
    assert done["heavy"] == pytest.approx(2.0)
    assert done["light"] == pytest.approx(2.0)


def test_zero_byte_transfer_completes_immediately():
    env = Environment()
    link = FairShareLink(env, bandwidth=1.0)
    ev = link.transfer(0.0)
    assert ev.triggered
    assert link.active_flows == 0


def test_transfer_validation():
    env = Environment()
    link = FairShareLink(env, bandwidth=1.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)
    with pytest.raises(ValueError):
        link.transfer(1.0, weight=0.0)
    with pytest.raises(ValueError):
        FairShareLink(env, bandwidth=0.0)


def test_bytes_transferred_accounting():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)

    def proc(env):
        yield link.transfer(30.0)
        yield link.transfer(20.0)

    env.process(proc(env))
    env.run()
    assert link.bytes_transferred == pytest.approx(50.0)


def test_stream_helper():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)

    def proc(env):
        yield from link.stream(20.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0)


# -------------------------------------------------------------- SerialLink ----
def test_serial_link_latency_only():
    env = Environment()
    link = SerialLink(env, latency=0.5)

    def proc(env):
        yield from link.transact()
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(0.5)


def test_serial_link_latency_plus_bytes():
    env = Environment()
    link = SerialLink(env, latency=1.0, bandwidth=10.0)

    def proc(env):
        yield from link.transact(50.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(6.0)


def test_serial_link_serializes_users():
    env = Environment()
    link = SerialLink(env, latency=1.0)
    done = []

    def proc(env):
        yield from link.transact()
        done.append(env.now)

    for _ in range(3):
        env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_serial_link_accounting():
    env = Environment()
    link = SerialLink(env, latency=1.0, bandwidth=100.0)

    def proc(env):
        yield from link.transact(100.0)
        yield from link.transact(0.0)

    env.process(proc(env))
    env.run()
    assert link.transactions == 2
    assert link.busy_time == pytest.approx(3.0)


def test_serial_link_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SerialLink(env, latency=-1.0)
    with pytest.raises(ValueError):
        SerialLink(env, latency=0.0, bandwidth=0.0)
    link = SerialLink(env, latency=0.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        # transact is a generator; validation happens on first step
        next(link.transact(-5.0))
