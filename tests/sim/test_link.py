"""Unit tests for FairShareLink and SerialLink."""

import pytest

from repro.sim import Environment, FairShareLink, SerialLink


def test_single_flow_takes_bytes_over_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)

    def proc(env):
        yield link.transfer(500.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(5.0)


def test_two_equal_flows_share_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = {}

    def proc(env, tag):
        yield link.transfer(500.0)
        done[tag] = env.now

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    # Both share 100 B/s → each effectively 50 B/s → 10 s.
    assert done["a"] == pytest.approx(10.0)
    assert done["b"] == pytest.approx(10.0)


def test_total_throughput_never_exceeds_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)
    finish = []

    def proc(env, nbytes):
        yield link.transfer(nbytes)
        finish.append(env.now)

    for nbytes in (10.0, 20.0, 30.0):
        env.process(proc(env, nbytes))
    env.run()
    # 60 bytes total through a 10 B/s link: last finisher at exactly 6 s.
    assert max(finish) == pytest.approx(6.0)


def test_short_flow_finishes_first_and_frees_share():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = {}

    def proc(env, tag, nbytes):
        yield link.transfer(nbytes)
        done[tag] = env.now

    env.process(proc(env, "short", 100.0))
    env.process(proc(env, "long", 300.0))
    env.run()
    # Phase 1: both at 50 B/s; short (100 B) done at t=2, long has 200 B left.
    # Phase 2: long alone at 100 B/s → 2 more seconds → t=4.
    assert done["short"] == pytest.approx(2.0)
    assert done["long"] == pytest.approx(4.0)


def test_late_arrival_slows_existing_flow():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = {}

    def first(env):
        yield link.transfer(400.0)
        done["first"] = env.now

    def second(env):
        yield env.timeout(2.0)  # first has 200 B left at t=2
        yield link.transfer(100.0)
        done["second"] = env.now

    env.process(first(env))
    env.process(second(env))
    env.run()
    # t=2..4: both at 50 B/s. second (100 B) done at t=4; first has 100 B
    # left, then alone at 100 B/s → done at t=5.
    assert done["second"] == pytest.approx(4.0)
    assert done["first"] == pytest.approx(5.0)


def test_weighted_flows():
    env = Environment()
    link = FairShareLink(env, bandwidth=90.0)
    done = {}

    def proc(env, tag, nbytes, weight):
        yield link.transfer(nbytes, weight=weight)
        done[tag] = env.now

    env.process(proc(env, "heavy", 120.0, 2.0))
    env.process(proc(env, "light", 60.0, 1.0))
    env.run()
    # heavy gets 60 B/s, light 30 B/s → both finish at t=2.
    assert done["heavy"] == pytest.approx(2.0)
    assert done["light"] == pytest.approx(2.0)


def test_zero_byte_transfer_completes_immediately():
    env = Environment()
    link = FairShareLink(env, bandwidth=1.0)
    ev = link.transfer(0.0)
    assert ev.triggered
    assert link.active_flows == 0


def test_transfer_validation():
    env = Environment()
    link = FairShareLink(env, bandwidth=1.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)
    with pytest.raises(ValueError):
        link.transfer(1.0, weight=0.0)
    with pytest.raises(ValueError):
        FairShareLink(env, bandwidth=0.0)


def test_bytes_transferred_accounting():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)

    def proc(env):
        yield link.transfer(30.0)
        yield link.transfer(20.0)

    env.process(proc(env))
    env.run()
    assert link.bytes_transferred == pytest.approx(50.0)


def test_stream_helper():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)

    def proc(env):
        yield from link.stream(20.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0)


# -------------------------------------------------------------- SerialLink ----
def test_serial_link_latency_only():
    env = Environment()
    link = SerialLink(env, latency=0.5)

    def proc(env):
        yield from link.transact()
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(0.5)


def test_serial_link_latency_plus_bytes():
    env = Environment()
    link = SerialLink(env, latency=1.0, bandwidth=10.0)

    def proc(env):
        yield from link.transact(50.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(6.0)


def test_serial_link_serializes_users():
    env = Environment()
    link = SerialLink(env, latency=1.0)
    done = []

    def proc(env):
        yield from link.transact()
        done.append(env.now)

    for _ in range(3):
        env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_serial_link_accounting():
    env = Environment()
    link = SerialLink(env, latency=1.0, bandwidth=100.0)

    def proc(env):
        yield from link.transact(100.0)
        yield from link.transact(0.0)

    env.process(proc(env))
    env.run()
    assert link.transactions == 2
    assert link.busy_time == pytest.approx(3.0)


def test_serial_link_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SerialLink(env, latency=-1.0)
    with pytest.raises(ValueError):
        SerialLink(env, latency=0.0, bandwidth=0.0)
    link = SerialLink(env, latency=0.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        # transact is a generator; validation happens on first step
        next(link.transact(-5.0))


# -- batched flow entry (transfer_batch) ------------------------------------

def _completion_schedule(use_batch, sizes, weight=1.0, bandwidth=64.0,
                         background=None):
    """Completion (time, index) pairs for one batch of flows.

    *use_batch* picks transfer_batch vs a loop of transfer() calls at the
    same instant — the two must agree exactly (IEEE ``==``).
    """
    env = Environment()
    link = FairShareLink(env, bandwidth=bandwidth)
    done = []

    def starter(env):
        if background:
            for b in background:
                link.transfer(b)
            yield 0.25  # enter the batch with flows already in progress
        if use_batch:
            events = link.transfer_batch(sizes, weight=weight)
        else:
            events = [link.transfer(s, weight=weight) for s in sizes]
        for i, ev in enumerate(events):
            ev.add_callback(lambda e, i=i: done.append((env.now, i)))
        yield 0.0

    env.process(starter(env))
    env.run()
    assert len(done) == len(sizes)
    return done


@pytest.mark.parametrize("sizes", [
    [7.0],
    [128.0, 32.0, 32.0, 96.0],                      # below heapify threshold
    [float(3 + (i * 37) % 101) for i in range(40)],  # bulk-heapify path
    [16.0, 0.0, 16.0, 0.0],                          # interleaved empties
    [0.0, 0.0, 8.0],                                 # leading empties
    [0.0, 0.0],                                      # nothing to schedule
])
def test_transfer_batch_matches_sequential_entry(sizes):
    assert (_completion_schedule(True, sizes)
            == _completion_schedule(False, sizes))


def test_transfer_batch_parity_with_background_flows_and_weight():
    sizes = [float(1 + (i * 13) % 50) for i in range(24)]
    kw = dict(weight=2.0, background=[400.0, 200.0])
    assert (_completion_schedule(True, sizes, **kw)
            == _completion_schedule(False, sizes, **kw))


def test_transfer_batch_accounting_matches_sequential():
    sizes = [5.0, 0.0, 11.0, 3.0]
    links = []
    for use_batch in (True, False):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        if use_batch:
            link.transfer_batch(sizes)
        else:
            for s in sizes:
                link.transfer(s)
        env.run()
        links.append(link)
    batch, seq = links
    assert batch.bytes_transferred == seq.bytes_transferred
    assert batch._flow_seq == seq._flow_seq
    assert batch.active_flows == seq.active_flows == 0


def test_transfer_batch_validation():
    env = Environment()
    link = FairShareLink(env, bandwidth=1.0)
    with pytest.raises(ValueError):
        link.transfer_batch([1.0, -2.0])
    with pytest.raises(ValueError):
        link.transfer_batch([1.0], weight=0.0)


def test_stream_batch_waits_for_all_flows():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)

    def proc(env):
        yield from link.stream_batch([10.0, 30.0])
        return env.now

    p = env.process(proc(env))
    env.run()
    # Two flows share 10 B/s: the short one finishes at 2s, the long one
    # at 2 + 20/10 = 4s; stream_batch returns at the last completion.
    assert p.value == pytest.approx(4.0)


def test_stream_batch_of_empty_flows_completes_at_once():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0)

    def proc(env):
        yield from link.stream_batch([0.0, 0.0])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_array_sweep_completion_matches_pop_loop():
    """A batch large enough to cross the numpy sweep threshold completes
    in the same order, at the same times, as the scalar pop loop."""
    from repro.sim import link as link_mod
    sizes = [float(1 + (i * 29) % 97) for i in range(200)]
    done_vec = _completion_schedule(True, sizes)
    orig = link_mod._np
    link_mod._np = None  # force the pure-python fallback
    try:
        done_scalar = _completion_schedule(True, sizes)
    finally:
        link_mod._np = orig
    assert done_vec == done_scalar
