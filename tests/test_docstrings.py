"""Public-API docstring audit.

Every public symbol of the device API, the window/collective layers, and
the observability package must carry a docstring, and the documented
device-API entry points that can fail must *name* their exceptions in a
``Raises:`` section — the error taxonomy (``docs/faults.md``) is only
useful if the call sites point at it.
"""

import inspect

import pytest

import repro.apps.gemm_stream as gemm_stream
import repro.apps.train_step as train_step
import repro.dcuda.collectives as collectives
import repro.dcuda.collectives.algorithms as coll_algorithms
import repro.dcuda.collectives.autotune as coll_autotune
import repro.dcuda.collectives.core as coll_core
import repro.dcuda.device_api as device_api
import repro.dcuda.window as window
import repro.obs as obs
from repro.dcuda.device_api import DRank

MODULES = (device_api, window, collectives, coll_algorithms,
           coll_autotune, coll_core, gemm_stream, train_step, obs)


def public_symbols(module):
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) or inspect.isclass(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip()


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_every_public_symbol_documented(module):
    missing = [name for name, obj in public_symbols(module)
               if not (getattr(obj, "__doc__", None) or "").strip()]
    assert not missing, (
        f"{module.__name__} exports undocumented symbols: {missing}")


def drank_public_methods():
    for name, member in inspect.getmembers(DRank):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) or isinstance(member, property):
            yield name, member


def test_every_drank_method_documented():
    missing = [name for name, m in drank_public_methods()
               if not ((m.fget.__doc__ if isinstance(m, property)
                        else m.__doc__) or "").strip()]
    assert not missing, f"DRank has undocumented public members: {missing}"


#: Device-API calls that raise typed errors and must say so.  Values:
#: exception names their docstring must mention.
RAISING_API = {
    "win_create": ("DCudaUsageError",),
    "win_free": ("DCudaProtocolError",),
    "barrier": ("DCudaProtocolError",),
    "finish": ("DCudaUsageError",),
    "flush": ("DCudaTimeoutError",),
    "wait_notifications": ("DCudaTimeoutError",),
    "put_notify": ("ValueError",),
    "get_notify": ("ValueError",),
}


@pytest.mark.parametrize("method,exceptions", sorted(RAISING_API.items()))
def test_raising_api_names_its_exceptions(method, exceptions):
    doc = inspect.getdoc(getattr(DRank, method))
    assert doc and "Raises" in doc, (
        f"DRank.{method} raises typed errors but has no Raises section")
    for exc in exceptions:
        assert exc in doc, (
            f"DRank.{method} docstring does not name {exc}")


def test_collectives_name_their_exceptions():
    for fn in (collectives.tree_broadcast, collectives.tree_reduce,
               collectives.hierarchical_broadcast):
        doc = inspect.getdoc(fn)
        assert doc and "Raises" in doc and "DCudaError" in doc


def test_window_check_target_names_valueerror():
    doc = inspect.getdoc(window.Window.check_target)
    assert doc and "ValueError" in doc


def test_error_classes_document_code_and_remediation():
    from repro.errors import ERROR_TABLE, DCudaError

    assert inspect.getdoc(DCudaError)
    for code, (name, remediation) in ERROR_TABLE.items():
        assert remediation, f"{name} ({code}) has no remediation hint"
