"""Tests for the weak-scaling drivers on miniature workloads."""

import numpy as np
import pytest

from repro.apps.diffusion import DiffusionWorkload
from repro.apps.particles import ParticleWorkload
from repro.apps.spmv import SpmvWorkload
from repro.bench import (
    particles_weak_scaling,
    spmv_weak_scaling,
    stencil_weak_scaling,
)


def test_stencil_driver_produces_table():
    wl = DiffusionWorkload(ni=8, nj_per_device=6, nk=2, steps=2)
    table = stencil_weak_scaling(node_counts=(1, 2), wl=wl,
                                 ranks_per_device=3, nblocks=4)
    assert table.column("nodes") == [1, 2]
    d = table.column("dcuda [ms]")
    m = table.column("mpi-cuda [ms]")
    halo = table.column("halo exchange [ms]")
    assert all(v > 0 for v in d + m)
    assert halo[0] == 0.0 and halo[1] > 0.0
    assert "grid points per device" in table.notes[0]


def test_particles_driver_produces_table():
    wl = ParticleWorkload(cells_per_node=8, particles_per_node=48, steps=2)
    table = particles_weak_scaling(node_counts=(1, 2), wl=wl,
                                   ranks_per_device=2, nblocks=4)
    assert table.column("nodes") == [1, 2]
    assert all(v > 0 for v in table.column("dcuda [ms]"))


def test_spmv_driver_produces_table():
    wl = SpmvWorkload(n_per_device=16, density=0.2, iters=1)
    table = spmv_weak_scaling(node_counts=(1, 4), wl=wl,
                              ranks_per_device=2, nblocks=4)
    assert table.column("nodes") == [1, 4]
    comm = table.column("communication [ms]")
    assert comm[0] == 0.0 and comm[1] > 0.0


def test_driver_verification_catches_corruption(monkeypatch):
    """verify=True really compares against the reference."""
    import repro.bench.weak_scaling as ws

    wl = DiffusionWorkload(ni=8, nj_per_device=6, nk=2, steps=2)

    original = ws.diffusion_reference
    monkeypatch.setattr(ws, "diffusion_reference",
                        lambda *a, **k: original(*a, **k) + 1.0)
    with pytest.raises(AssertionError):
        ws.stencil_weak_scaling(node_counts=(1,), wl=wl,
                                ranks_per_device=2, nblocks=4)


def test_driver_verify_false_skips_reference():
    wl = DiffusionWorkload(ni=8, nj_per_device=6, nk=2, steps=2)
    table = stencil_weak_scaling(node_counts=(1,), wl=wl,
                                 ranks_per_device=2, nblocks=4,
                                 verify=False)
    assert len(table.rows) == 1
