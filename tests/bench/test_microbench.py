"""Unit tests for the ping-pong and overlap microbenchmark drivers
(small configurations — the full figures run under benchmarks/)."""

import pytest

from repro.bench import (
    OverlapPoint,
    PingPongResult,
    pingpong_sweep,
    run_overlap,
    run_pingpong,
)


def test_pingpong_latency_positive_and_reasonable():
    res = run_pingpong(shared=True, packet_bytes=0, iterations=20)
    assert isinstance(res, PingPongResult)
    assert 1e-6 < res.latency < 1e-4
    assert res.bandwidth == 0.0  # empty packets carry no payload


def test_pingpong_distributed_slower_than_shared():
    shared = run_pingpong(True, 0, iterations=20)
    distributed = run_pingpong(False, 0, iterations=20)
    assert distributed.latency > shared.latency


def test_pingpong_bandwidth_grows_with_packet():
    small = run_pingpong(True, 1024, iterations=10)
    large = run_pingpong(True, 64 * 1024, iterations=10)
    assert large.bandwidth > small.bandwidth


def test_pingpong_sweep_shapes():
    sweep = pingpong_sweep(True, packet_sizes=[16, 256, 4096],
                           iterations=5)
    assert [p.packet_bytes for p in sweep] == [16, 256, 4096]
    bws = [p.bandwidth for p in sweep]
    assert bws == sorted(bws)


def test_pingpong_rejects_negative_packet():
    with pytest.raises(ValueError):
        run_pingpong(True, -1)


def test_overlap_switches():
    ex = run_overlap("copy", 0, do_compute=False, do_exchange=True,
                     steps=5, num_nodes=2, ranks_per_device=4)
    comp = run_overlap("copy", 32, do_compute=True, do_exchange=False,
                       steps=5, num_nodes=2, ranks_per_device=4)
    both = run_overlap("copy", 32, do_compute=True, do_exchange=True,
                       steps=5, num_nodes=2, ranks_per_device=4)
    assert isinstance(both, OverlapPoint)
    # Sandwich bound: max <= both <= sum (tolerances for sync effects).
    assert both.elapsed >= max(comp.elapsed, ex.elapsed) * 0.99
    assert both.elapsed <= (comp.elapsed + ex.elapsed) * 1.05


def test_overlap_nothing_enabled_is_fast():
    neither = run_overlap("copy", 0, do_compute=False, do_exchange=False,
                          steps=5, num_nodes=2, ranks_per_device=2)
    assert neither.elapsed < 1e-5


def test_overlap_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown overlap mode"):
        run_overlap("quantum", 1, steps=2, num_nodes=1, ranks_per_device=2)


def test_overlap_more_compute_takes_longer():
    a = run_overlap("newton", 8, True, False, steps=5, num_nodes=1,
                    ranks_per_device=4)
    b = run_overlap("newton", 64, True, False, steps=5, num_nodes=1,
                    ranks_per_device=4)
    assert b.elapsed > a.elapsed
