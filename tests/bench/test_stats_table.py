"""Unit tests for the benchmark statistics and table rendering."""

import pytest

from repro.bench import Measurement, Table, ascii_series, format_value
from repro.bench.stats import median, median_ci, summarize


# ------------------------------------------------------------------- stats --
def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
    assert median([7.0]) == 7.0


def test_median_empty_rejected():
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        median_ci([])


def test_median_ci_single_sample():
    assert median_ci([5.0]) == (5.0, 5.0)


def test_median_ci_contains_median_and_shrinks():
    data20 = list(range(20))
    lo20, hi20 = median_ci(data20)
    assert lo20 <= median(data20) <= hi20
    data6 = list(range(6))
    lo6, hi6 = median_ci(data6)
    # More samples -> relatively tighter interval around the median.
    rel20 = (hi20 - lo20) / 19
    rel6 = (hi6 - lo6) / 5
    assert rel20 < rel6


def test_median_ci_tiny_samples_degenerate_to_range():
    data = [1.0, 2.0, 3.0]
    assert median_ci(data) == (1.0, 3.0)


def test_measurement_summary():
    m = summarize([3.0, 1.0, 2.0])
    assert isinstance(m, Measurement)
    assert m.median == 2.0
    assert m.n == 3
    lo, hi = m.ci95
    assert lo <= 2.0 <= hi


def test_identical_samples_collapse_ci():
    m = summarize([5.0] * 20)
    assert m.ci95 == (5.0, 5.0)


# ------------------------------------------------------------------- table --
def test_format_value():
    assert format_value(3) == "3"
    assert format_value("x") == "x"
    assert format_value(0.0) == "0"
    assert format_value(1234.5678) == "1235"
    assert "e" in format_value(1e-9)
    assert "e" in format_value(1e9)


def test_table_render_alignment_and_notes():
    t = Table("demo", ["a", "long_column"], notes=[])
    t.add_row(1, 2.5)
    t.add_row(100, 3.25e-7)
    t.add_note("hello")
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "a" in lines[2] and "long_column" in lines[2]
    assert "note: hello" in text
    # All data lines have equal width.
    data_lines = lines[4:6]
    assert len(set(map(len, data_lines))) == 1


def test_table_row_width_validation():
    t = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_table_column_accessor():
    t = Table("t", ["x", "y"])
    t.add_row(1, 10)
    t.add_row(2, 20)
    assert t.column("y") == [10, 20]
    with pytest.raises(ValueError):
        t.column("z")


def test_ascii_series_renders():
    art = ascii_series([0, 1, 2, 3], [0.0, 1.0, 4.0, 9.0], width=20,
                       height=5, label="quad")
    lines = art.splitlines()
    assert lines[0].startswith("quad")
    assert len(lines) == 6
    assert any("*" in line for line in lines[1:])


def test_ascii_series_validation():
    with pytest.raises(ValueError):
        ascii_series([1], [1, 2])
    with pytest.raises(ValueError):
        ascii_series([], [])
