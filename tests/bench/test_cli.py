"""Tests for the ``python -m repro.bench`` figure runner."""

import subprocess
import sys

import pytest

from repro.bench.__main__ import main


def test_cli_fig6_small(capsys, tmp_path):
    rc = main(["fig6", "--iterations", "3", "-o", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out
    assert (tmp_path / "fig6.txt").exists()


def test_cli_fig10_custom_nodes(capsys):
    # Tiny workload via small node list + no-verify for speed is not
    # supported per-workload from the CLI; use 1-2 nodes and verify.
    rc = main(["fig10", "--nodes", "1", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fig. 10" in out
    assert " 1 " in out and " 2 " in out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_subprocess_entry():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "fig6",
         "--iterations", "2"],
        capture_output=True, text=True, timeout=240)
    assert proc.returncode == 0, proc.stderr[-1000:]
    assert "Fig. 6" in proc.stdout


def test_cli_deduplicates_figures(capsys):
    rc = main(["fig6", "fig6", "--iterations", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("Fig. 6 - put bandwidth") == 1
