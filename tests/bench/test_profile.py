"""Tests for the launch profiler and the Chrome-trace export."""

import json

import numpy as np
import pytest

from repro.bench.profile import LaunchProfile, NodeProfile
from repro.dcuda import launch
from repro.hw import Cluster, greina


def run_small(nodes=2, tracing=True):
    cluster = Cluster(greina(nodes, tracing=tracing))
    buffers = {r: np.zeros(64) for r in range(nodes * 2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        peer = (r + 1) % rank.comm_size()
        yield from rank.compute(flops=1e5, mem_bytes=1e4, detail="work")
        yield from rank.put_notify(win, peer, 0, buffers[r][:16], tag=1)
        yield from rank.wait_notifications(win, tag=1, count=1)
        yield from rank.finish()

    return launch(cluster, kernel, ranks_per_device=2), cluster


def test_profile_counters_populated():
    result, cluster = run_small()
    prof = LaunchProfile.from_result(result)
    assert len(prof.nodes) == 2
    for n in prof.nodes:
        assert isinstance(n, NodeProfile)
        assert n.pcie_mapped_writes > 0          # commands + notifications
        assert 0.0 <= n.mem_utilization <= 1.0
        assert 0.0 <= n.worker_utilization <= 1.0
    # Cross-node puts produced NIC traffic on both nodes (ring).
    assert prof.total("nic_messages") > 0
    assert prof.total("nic_bytes") > 0


def test_profile_activity_breakdown():
    result, _ = run_small(tracing=True)
    prof = LaunchProfile.from_result(result)
    assert prof.activity.get("compute", 0) > 0
    assert prof.activity.get("wait", 0) > 0
    shares = [prof.activity_share(k) for k in prof.activity]
    assert sum(shares) == pytest.approx(1.0)


def test_profile_without_tracing_has_empty_activity():
    result, _ = run_small(tracing=False)
    prof = LaunchProfile.from_result(result)
    assert prof.activity == {}
    assert prof.activity_share("compute") == 0.0


def test_profile_render_contains_all_nodes():
    result, _ = run_small()
    text = LaunchProfile.from_result(result).render()
    assert "launch profile" in text
    assert "simulated time" in text
    assert "block activity" in text


def test_chrome_trace_export_is_valid_json():
    result, cluster = run_small()
    events = cluster.tracer.to_chrome_trace()
    assert events
    blob = json.dumps({"traceEvents": events})
    parsed = json.loads(blob)
    ev = parsed["traceEvents"][0]
    assert ev["ph"] == "X"
    assert set(ev) >= {"name", "cat", "ts", "dur", "pid", "tid"}
    # Timestamps are microseconds and non-negative.
    assert all(e["ts"] >= 0 and e["dur"] >= 0
               for e in parsed["traceEvents"])
    # Every actor got a stable tid.
    tids = {e["args"]["actor"]: e["tid"] for e in parsed["traceEvents"]}
    assert len(set(tids.values())) == len(tids)
