"""Cross-backend x cross-algorithm collective differential tests.

The collectives contract (docs/collectives.md) makes two bit-identity
promises: the reduction order is schedule-determined, so ring, tree,
and hierarchical produce *identical* bytes; and backends move the same
bytes on different clocks, so proxy, device, and stream agree too.
These tests run every (collective, algorithm, backend, topology) cell
and compare final buffers bit-for-bit against one serial expectation.

Payloads are integer-valued float64 (exactly representable sums), so
"bit-for-bit" across *families* is meaningful even though each family
associates the additions differently; separate non-integer runs then
check the per-family invariants that survive inexact arithmetic —
run-to-run bit-reproducibility and cross-backend bit-identity.
"""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.dcuda.collectives import (
    ALGORITHMS,
    all_gather,
    allreduce,
    chunk_bounds,
    reduce_scatter,
    scratch_elems,
)
from repro.hw import COMM_BACKENDS, Cluster, greina
from repro.platform import fat_tree, flat
from repro.platform.topology import LinkSpec

#: Vector length — deliberately not divisible by the group size, so the
#: uneven-chunk paths (first ``n % p`` chunks one element longer) run.
N = 13

#: (name, topology factory) — a flat fabric of single-GPU nodes and a
#: dense fat tree, the two shapes the placement-aware paths branch on.
SHAPES = (
    ("flat", lambda: flat(num_nodes=4, gpus_per_node=1)),
    ("fat_tree", lambda: fat_tree(
        num_nodes=2, gpus_per_node=2,
        intra_link=LinkSpec(bandwidth=50e9, latency=0.25e-6))),
)


def _cluster(topo_factory, backend):
    return Cluster(greina(topology=topo_factory(), comm_backend=backend))


def _contribution(r, integer=True):
    base = np.arange(N, dtype=np.float64)
    if integer:
        return base + r
    # Non-integer payload: sums genuinely depend on association order.
    return np.sin(base + 1.0) * (r + 1) / 7.0


def _run(op, topo_factory, backend, algorithm, integer=True):
    """Run one collective; return {rank: final buffer} plus extras."""
    cluster = _cluster(topo_factory, backend)
    total = cluster.platform.place(1).total_ranks
    group = list(range(total))
    bufs = {}
    for r in group:
        if op == "all_gather":
            bufs[r] = np.zeros(N)
            lo, hi = chunk_bounds(N, total, r)
            bufs[r][lo:hi] = _contribution(r, integer)[lo:hi]
        else:
            bufs[r] = _contribution(r, integer).copy()
    owned = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(bufs[r])
        swin = yield from rank.win_create(
            np.zeros(scratch_elems(total, N)))
        yield from rank.barrier()
        if op == "allreduce":
            yield from allreduce(rank, win, swin, group, bufs[r],
                                 algorithm=algorithm)
        elif op == "reduce_scatter":
            owned[r] = yield from reduce_scatter(rank, win, swin, group,
                                                 bufs[r],
                                                 algorithm=algorithm)
        else:
            yield from all_gather(rank, win, swin, group, bufs[r],
                                  algorithm=algorithm)
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=1)
    return total, bufs, owned


def _expected_sum(total):
    return total * np.arange(N, dtype=np.float64) \
        + total * (total - 1) / 2.0


@pytest.mark.parametrize("backend", COMM_BACKENDS)
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s[0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_allreduce_exact_everywhere(backend, shape, algorithm):
    total, bufs, _ = _run("allreduce", shape[1], backend, algorithm)
    expected = _expected_sum(total)
    for r, buf in bufs.items():
        np.testing.assert_array_equal(buf, expected, err_msg=f"rank {r}")


@pytest.mark.parametrize("backend", COMM_BACKENDS)
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s[0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_reduce_scatter_owned_chunks(backend, shape, algorithm):
    total, bufs, owned = _run("reduce_scatter", shape[1], backend,
                              algorithm)
    expected = _expected_sum(total)
    for i in range(total):
        lo, hi = chunk_bounds(N, total, i)
        assert owned[i] == (lo, hi)
        np.testing.assert_array_equal(bufs[i][lo:hi], expected[lo:hi],
                                      err_msg=f"rank {i}")


@pytest.mark.parametrize("backend", COMM_BACKENDS)
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s[0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_all_gather_assembles_every_chunk(backend, shape, algorithm):
    total, bufs, _ = _run("all_gather", shape[1], backend, algorithm)
    expected = np.concatenate([
        _contribution(i)[lo:hi]
        for i, (lo, hi) in ((i, chunk_bounds(N, total, i))
                            for i in range(total))])
    for r, buf in bufs.items():
        np.testing.assert_array_equal(buf, expected, err_msg=f"rank {r}")


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: s[0])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_inexact_payloads_reproducible_and_close(shape, algorithm):
    """Each family's association order is fixed by the schedule, so on
    inexact payloads a family is bit-reproducible run to run (and
    allclose to the others, which associate differently)."""
    _, first, _ = _run("allreduce", shape[1], "proxy", algorithm,
                       integer=False)
    _, again, _ = _run("allreduce", shape[1], "proxy", algorithm,
                       integer=False)
    _, ring, _ = _run("allreduce", shape[1], "proxy", "ring",
                      integer=False)
    for r in first:
        np.testing.assert_array_equal(again[r], first[r],
                                      err_msg=f"rank {r} not reproducible")
        np.testing.assert_allclose(first[r], ring[r], rtol=1e-12,
                                   err_msg=f"rank {r} far from ring")


@pytest.mark.parametrize("op", ("allreduce", "reduce_scatter",
                                "all_gather"))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backends_bit_identical(op, algorithm):
    """proxy == device == stream final bytes for every family."""
    per_backend = {b: _run(op, SHAPES[1][1], b, algorithm,
                           integer=False)[1]
                   for b in COMM_BACKENDS}
    proxy = per_backend["proxy"]
    for backend in COMM_BACKENDS:
        for r in proxy:
            np.testing.assert_array_equal(
                per_backend[backend][r], proxy[r],
                err_msg=f"{backend} diverges on rank {r}")
