"""Cross-backend differential fuzz: three backends, one semantics.

Every seeded random program (see :mod:`tests.comm.harness`) is replayed
on the proxy, device-initiated, and stream-triggered backends.  The
backends are free to schedule the traffic differently — and do: their
elapsed times differ — but every app-visible observable must be
identical across the three runs *and* match the program's own expected
model (the latter catches the all-backends-equally-wrong failure mode).
"""

import numpy as np
import pytest

from repro.hw.config import COMM_BACKENDS

from .harness import generate_program, run_program

SEEDS = range(18)


@pytest.mark.parametrize("seed", SEEDS)
def test_observables_agree_across_backends(seed):
    program = generate_program(seed)
    runs = {b: run_program(program, b) for b in COMM_BACKENDS}
    reference = runs["proxy"]

    # Expected-model check: the proxy run must match the generator's
    # prediction exactly (puts land whole, gets fetch stable bytes,
    # skipped waits — and only those — survive as leftovers).
    for r in range(program.num_ranks):
        np.testing.assert_array_equal(
            reference.finals[r], program.expected_finals[r],
            err_msg=f"seed {seed}: rank {r} final window diverged from "
                    f"the program model")
        assert [(s, t) for _w, s, t in reference.leftovers[r]] \
            == program.skipped[r], (
            f"seed {seed}: rank {r} leftover notifications != skipped "
            f"waits")
    for key, expected in program.expected_gets.items():
        np.testing.assert_array_equal(
            reference.gets[key], expected,
            err_msg=f"seed {seed}: get {key} fetched wrong bytes")

    # Differential check: every observable identical on every backend.
    for backend in COMM_BACKENDS[1:]:
        obs = runs[backend]
        for r in range(program.num_ranks):
            np.testing.assert_array_equal(
                obs.finals[r], reference.finals[r],
                err_msg=f"seed {seed}: rank {r} final window differs "
                        f"between proxy and {backend}")
            assert obs.leftovers[r] == reference.leftovers[r], (
                f"seed {seed}: rank {r} leftover notifications differ "
                f"between proxy and {backend}")
        assert obs.gets.keys() == reference.gets.keys()
        for key in reference.gets:
            np.testing.assert_array_equal(
                obs.gets[key], reference.gets[key],
                err_msg=f"seed {seed}: get {key} differs between proxy "
                        f"and {backend}")
        assert obs.barrier_snaps == reference.barrier_snaps, (
            f"seed {seed}: committed window snapshot at a barrier "
            f"differs between proxy and {backend}")


def test_programs_exercise_every_path():
    """Guard against a trivially green sweep: across the seeds the
    generator must produce remote puts, shared puts, gets, notify=False
    traffic, and skipped waits."""
    shared_puts = remote_puts = gets = unnotified = skips = 0
    multi_gpu = 0
    for seed in SEEDS:
        program = generate_program(seed)
        multi_gpu += program.gpus > 1
        skips += sum(len(v) for v in program.skipped.values())
        for phase in program.phases:
            for r, ops in phase.ops.items():
                for op in ops:
                    if type(op).__name__ == "GetOp":
                        gets += 1
                    elif (op.target // program.rpd) == (r // program.rpd):
                        shared_puts += 1
                    else:
                        remote_puts += 1
                    unnotified += not op.notify
    assert shared_puts > 10
    assert remote_puts > 10
    assert gets > 10
    assert unnotified > 5
    assert skips > 5
    assert multi_gpu > 0


def test_backends_actually_schedule_differently():
    """The differential pass is only meaningful if the three backends
    really produce different schedules: a seeded remote-heavy program
    must finish at three distinct simulated times."""
    for seed in SEEDS:
        program = generate_program(seed)
        if program.nodes < 2:
            continue
        times = {b: run_program(program, b).elapsed
                 for b in COMM_BACKENDS}
        assert len(set(times.values())) == len(COMM_BACKENDS), (
            f"seed {seed}: backends produced identical elapsed times "
            f"{times} — backend selection is not taking effect")
        return
    pytest.fail("no multi-node program among the seeds")
