"""Differential fuzz harness: seeded random RMA programs, replayed on
every communication backend.

A *program* is a fully deterministic description of what every rank
does: phases of put/get operations, the exact notification waits closing
each phase, and which final-phase waits are deliberately skipped.  The
program is generated once per seed and replayed on each backend; the
backends may schedule the traffic however their cost models dictate
(timestamps differ, same-origin device puts may overtake), but every
*app-visible observable* must agree:

* final window contents of every rank (post-drain),
* every get's fetched bytes,
* per-rank window snapshots of *committed* slots at each phase barrier,
* the multiset of leftover (unconsumed) notifications.

The generator keeps the observables schedule-independent by
construction: every put owns a globally unique (target, slot-range), so
final contents are order-free; every tag is globally unique, so exact
``(source, tag)`` waits consume exactly one specific notification; gets
read only slot ranges that are *committed* (written by an earlier
phase's consumed-notified put) or *reserved* (never written at all), so
the fetched bytes are phase-stable on every backend.
"""

from dataclasses import dataclass, field
from itertools import count
from random import Random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dcuda import launch
from repro.hw import Cluster, greina
from repro.platform import flat

#: Window size in elements, per rank.
WIN = 24

#: Cluster shapes the generator draws from; every backend path appears:
#: same-GPU (shared), cross-GPU same node, and cross-node.
SHAPES = (
    dict(nodes=1, gpus=1, rpd=2),
    dict(nodes=2, gpus=1, rpd=2),
    dict(nodes=2, gpus=2, rpd=1),
    dict(nodes=3, gpus=1, rpd=2),
    dict(nodes=2, gpus=1, rpd=3),
    dict(nodes=2, gpus=2, rpd=2),
)


@dataclass(frozen=True)
class PutOp:
    target: int
    offset: int
    length: int
    tag: int
    notify: bool
    #: Element i of the payload is ``value_base + i``.
    value_base: float


@dataclass(frozen=True)
class GetOp:
    target: int
    offset: int
    length: int
    tag: int
    notify: bool
    #: Key for the fetched bytes in the observables.
    key: int


@dataclass
class Phase:
    #: rank -> its operations, in issue order.
    ops: Dict[int, List[object]] = field(default_factory=dict)
    #: rank -> exact (source, tag) waits, sorted; executed in order.
    waits: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    #: rank -> {offset: expected value} committed slots observable at
    #: this phase's barrier.
    committed: Dict[int, Dict[int, float]] = field(default_factory=dict)


@dataclass
class Program:
    seed: int
    nodes: int
    gpus: int
    rpd: int
    num_ranks: int
    phases: List[Phase]
    #: rank -> sorted skipped (source, tag) pairs = expected leftovers.
    skipped: Dict[int, List[Tuple[int, int]]]
    #: Expected final window contents per rank.
    expected_finals: Dict[int, np.ndarray]
    #: Expected fetched bytes per get key.
    expected_gets: Dict[int, np.ndarray]


def _initial(rank: int) -> np.ndarray:
    return rank * 1000.0 + np.arange(WIN, dtype=np.float64)


def _find_run(free: set, length: int, rng: Random) -> Optional[int]:
    """A random contiguous run of *length* free slots, or ``None``."""
    starts = [o for o in free
              if all(o + i in free for i in range(length))]
    return rng.choice(sorted(starts)) if starts else None


def generate_program(seed: int) -> Program:
    rng = Random(seed)
    shape = SHAPES[rng.randrange(len(SHAPES))]
    num_ranks = shape["nodes"] * shape["gpus"] * shape["rpd"]
    num_phases = rng.randint(2, 3)
    tags = count(1)
    get_keys = count(0)

    free = {t: set(range(WIN)) for t in range(num_ranks)}
    expected_finals = {r: _initial(r) for r in range(num_ranks)}
    expected_gets: Dict[int, np.ndarray] = {}
    #: (target, offset) -> value for committed (consumed-notified) slots.
    committed_slots: Dict[int, Dict[int, float]] = {
        r: {} for r in range(num_ranks)}

    phases: List[Phase] = []
    skipped: Dict[int, List[Tuple[int, int]]] = {
        r: [] for r in range(num_ranks)}

    for p in range(num_phases):
        last = p == num_phases - 1
        phase = Phase(ops={r: [] for r in range(num_ranks)},
                      waits={r: [] for r in range(num_ranks)})
        #: This phase's notified puts/gets: (waiter_rank, source, tag,
        #: skippable, committed_write or None).
        pending_waits: List[Tuple[int, int, int, Dict[int, float]]] = []
        for r in range(num_ranks):
            for _ in range(rng.randint(0, 3)):
                t = rng.randrange(num_ranks)
                length = rng.randint(1, 3)
                off = _find_run(free[t], length, rng)
                if off is None:
                    continue
                for i in range(length):
                    free[t].discard(off + i)
                tag = next(tags)
                notify = rng.random() >= 0.2
                base = float(seed % 97) * 1e4 + tag * 10.0
                op = PutOp(target=t, offset=off, length=length, tag=tag,
                           notify=notify, value_base=base)
                phase.ops[r].append(op)
                expected_finals[t][off:off + length] = \
                    base + np.arange(length)
                if notify:
                    writes = {off + i: base + i for i in range(length)}
                    pending_waits.append((t, r, tag, writes))
            for _ in range(rng.randint(0, 2)):
                t = rng.randrange(num_ranks)
                use_committed = committed_slots[t] and rng.random() < 0.5
                if use_committed:
                    offs = sorted(committed_slots[t])
                    off = rng.choice(offs)
                    length = 1
                    while (off + length in committed_slots[t]
                           and length < 3):
                        length += 1
                    expected = np.array(
                        [committed_slots[t][off + i]
                         for i in range(length)])
                else:
                    length = rng.randint(1, 2)
                    off = _find_run(free[t], length, rng)
                    if off is None:
                        continue
                    # Reserve: nothing may ever write these slots.
                    for i in range(length):
                        free[t].discard(off + i)
                    expected = _initial(t)[off:off + length].copy()
                tag = next(tags)
                notify = rng.random() >= 0.2
                key = next(get_keys)
                phase.ops[r].append(GetOp(target=t, offset=off,
                                          length=length, tag=tag,
                                          notify=notify, key=key))
                expected_gets[key] = expected
                if notify:
                    pending_waits.append((r, t, tag, {}))
        # Close the phase: exact waits sorted by (source, tag); in the
        # final phase a random subset stays unconsumed.
        for waiter, source, tag, writes in pending_waits:
            if last and rng.random() < 0.3:
                skipped[waiter].append((source, tag))
            else:
                phase.waits[waiter].append((source, tag))
                for off, val in writes.items():
                    committed_slots[waiter][off] = val
        for r in range(num_ranks):
            phase.waits[r].sort()
            phase.committed[r] = dict(committed_slots[r])
        phases.append(phase)

    for r in range(num_ranks):
        skipped[r].sort()
    return Program(seed=seed, nodes=shape["nodes"], gpus=shape["gpus"],
                   rpd=shape["rpd"], num_ranks=num_ranks, phases=phases,
                   skipped=skipped, expected_finals=expected_finals,
                   expected_gets=expected_gets)


@dataclass
class Observables:
    """Everything a kernel can see, as captured from one backend run."""

    finals: Dict[int, np.ndarray]
    gets: Dict[int, np.ndarray]
    #: rank -> sorted (win_id, source, tag) of unconsumed notifications.
    leftovers: Dict[int, List[Tuple[int, int, int]]]
    #: (phase, rank) -> {offset: value} snapshot at the barrier.
    barrier_snaps: Dict[Tuple[int, int], Dict[int, float]]
    elapsed: float


def run_program(program: Program, backend: str) -> Observables:
    """Replay *program* on *backend*; returns the captured observables."""
    if program.gpus == 1:
        cfg = greina(program.nodes, comm_backend=backend)
    else:
        cfg = greina(topology=flat(num_nodes=program.nodes,
                                   gpus_per_node=program.gpus),
                     comm_backend=backend)
    cluster = Cluster(cfg)
    buffers = {r: _initial(r) for r in range(program.num_ranks)}
    gets: Dict[int, np.ndarray] = {}
    dranks: Dict[int, object] = {}
    snaps: Dict[Tuple[int, int], Dict[int, float]] = {}

    def kernel(rank):
        r = rank.world_rank
        dranks[r] = rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        for p, phase in enumerate(program.phases):
            for op in phase.ops[r]:
                if isinstance(op, PutOp):
                    src = op.value_base + np.arange(op.length,
                                                    dtype=np.float64)
                    yield from rank.put_notify(win, op.target, op.offset,
                                               src, tag=op.tag,
                                               notify=op.notify)
                else:
                    dst = np.zeros(op.length, dtype=np.float64)
                    gets[op.key] = dst
                    yield from rank.get_notify(win, op.target, op.offset,
                                               dst, tag=op.tag,
                                               notify=op.notify)
            for source, tag in phase.waits[r]:
                yield from rank.wait_notifications(win, source=source,
                                                   tag=tag, count=1)
            snaps[(p, r)] = {off: float(buffers[r][off])
                             for off in phase.committed[r]}
            yield from rank.flush()
            yield from rank.barrier()
        yield from rank.finish()

    res = launch(cluster, kernel, ranks_per_device=program.rpd)

    leftovers = {}
    for r, drank in sorted(dranks.items()):
        drank.matcher.pending_count()  # drain the queue into the indexes
        leftovers[r] = sorted((n.win_id, n.source, n.tag)
                              for n in drank.matcher._pending)
    return Observables(finals={r: buffers[r].copy()
                               for r in range(program.num_ranks)},
                       gets={k: v.copy() for k, v in gets.items()},
                       leftovers=leftovers, barrier_snaps=snaps,
                       elapsed=res.elapsed)
