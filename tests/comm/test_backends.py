"""Unit semantics of the pluggable communication backends.

Backend *selection* (registry, config validation, runtime wiring), the
paths each backend must or must not touch (host command queue, NIC
doorbells, SM-side RMA initiation), typed-error parity, the latency
ordering their cost models imply, and the ``comm_backend`` cache
salting of the sweep engine.
"""

import dataclasses

import numpy as np
import pytest

from repro.comm import build_backend
from repro.comm.device import DeviceBackend
from repro.comm.proxy import ProxyBackend
from repro.comm.stream import StreamBackend
from repro.dcuda import launch
from repro.errors import DCudaUsageError
from repro.exec import RunSpec
from repro.hw import (
    COMM_BACKENDS,
    Cluster,
    DeviceCommConfig,
    StreamCommConfig,
    greina,
)

BACKEND_CLASSES = {"proxy": ProxyBackend, "device": DeviceBackend,
                   "stream": StreamBackend}


# ------------------------------------------------------- selection ----------
def test_registry_covers_every_declared_backend():
    assert set(BACKEND_CLASSES) == set(COMM_BACKENDS)


def test_unknown_backend_rejected_at_config_time():
    with pytest.raises(DCudaUsageError, match="comm_backend"):
        greina(comm_backend="rdma-over-carrier-pigeon")


def test_wrong_cost_config_types_rejected():
    with pytest.raises(DCudaUsageError, match="device_comm"):
        greina(device_comm=StreamCommConfig())
    with pytest.raises(DCudaUsageError, match="stream_comm"):
        greina(stream_comm=DeviceCommConfig())


def test_build_backend_rejects_unknown_name():
    cluster = Cluster(greina(1))
    from repro.runtime.system import DCudaRuntime

    runtime = DCudaRuntime(cluster, 1)
    with pytest.raises(DCudaUsageError, match="unknown comm backend"):
        build_backend("bogus", runtime)


@pytest.mark.parametrize("backend", COMM_BACKENDS)
def test_runtime_wires_the_configured_backend(backend):
    cluster = Cluster(greina(1, comm_backend=backend))
    from repro.runtime.system import DCudaRuntime

    runtime = DCudaRuntime(cluster, 1)
    assert isinstance(runtime.comm, BACKEND_CLASSES[backend])
    costs = runtime.comm.describe_costs()
    assert costs and all(isinstance(v, float) for v in costs.values())


def test_default_backend_is_proxy():
    assert greina().comm_backend == "proxy"


# ------------------------------------------------- path observability -------
def _run_remote_put(backend):
    """One remote notified put on a 2-node cluster.

    Returns:
        ``(cluster, rank0_cmd_queue_enqueues)``.
    """
    cluster = Cluster(greina(2, comm_backend=backend))
    buffers = {r: np.zeros(8) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(4), tag=7)
            yield from rank.flush()
        else:
            yield from rank.wait_notifications(win, source=0, tag=7)
        yield from rank.barrier()
        yield from rank.finish()

    res = launch(cluster, kernel, ranks_per_device=1)
    assert buffers[1][:4].tolist() == [1.0] * 4
    return cluster, res.runtime.state_of(0).cmd_queue.stats.enqueues


def test_proxy_uses_host_path_only():
    cluster, _ = _run_remote_put("proxy")
    assert cluster.nodes[0].gpu(0).rma_initiations == 0
    assert cluster.fabric.nic_stats(0)["doorbells"] == 0


def test_device_backend_bypasses_the_host_command_queue():
    cluster, device_q = _run_remote_put("device")
    # The SM initiated the RMA and rang the NIC doorbell itself...
    assert cluster.nodes[0].gpu(0).rma_initiations > 0
    assert cluster.fabric.nic_stats(0)["doorbells"] == 1
    # ...and the host-side proxy queue never saw a put command: only
    # win_create, two barriers, and finish crossed PCIe.
    _, proxy_q = _run_remote_put("proxy")
    assert device_q == proxy_q - 1


def test_stream_backend_defers_ops_without_doorbells():
    cluster, stream_q = _run_remote_put("stream")
    assert cluster.nodes[0].gpu(0).rma_initiations == 0
    assert cluster.fabric.nic_stats(0)["doorbells"] == 0
    # Stream traffic rides the d2d lane off the host command queue...
    _, proxy_q = _run_remote_put("proxy")
    assert stream_q == proxy_q - 1
    # ...but still crosses the wire as one NIC message.
    assert cluster.fabric.nic_stats(0)["messages"] >= 1


# ------------------------------------------------------ typed errors --------
@pytest.mark.parametrize("backend", COMM_BACKENDS)
def test_remote_out_of_bounds_put_raises_index_error(backend):
    cluster = Cluster(greina(2, comm_backend=backend))
    buffers = {r: np.zeros(8) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            yield from rank.put_notify(win, 1, 6, np.ones(4), tag=1)
            yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    with pytest.raises(IndexError, match="out of bounds"):
        launch(cluster, kernel, ranks_per_device=1)


@pytest.mark.parametrize("backend", COMM_BACKENDS)
def test_shared_dtype_mismatch_raises_type_error(backend):
    cluster = Cluster(greina(1, comm_backend=backend))
    buffers = {r: np.zeros(8, dtype=np.float64) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            yield from rank.put_notify(win, 1, 0,
                                       np.ones(2, dtype=np.float32), tag=1)
        yield from rank.barrier()
        yield from rank.finish()

    with pytest.raises(TypeError, match="dtype"):
        launch(cluster, kernel, ranks_per_device=2)


@pytest.mark.parametrize("backend", COMM_BACKENDS)
def test_remote_out_of_bounds_get_raises_index_error(backend):
    cluster = Cluster(greina(2, comm_backend=backend))
    buffers = {r: np.zeros(8) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            dst = np.zeros(4)
            yield from rank.get_notify(win, 1, 6, dst, tag=1)
            yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    with pytest.raises(IndexError, match="out of bounds"):
        launch(cluster, kernel, ranks_per_device=1)


# ------------------------------------------------------ cost models ---------
def test_latency_ordering_matches_the_initiation_depth():
    """Fewer hops, lower latency: device-initiated skips the host
    round-trip entirely, stream-triggered pays the trigger latency on
    top, and the proxy pays the full PCIe command/poll cycle."""
    from repro.bench.pingpong import run_pingpong

    lat = {b: run_pingpong(False, 256, 4,
                           cfg=greina(comm_backend=b)).latency
           for b in COMM_BACKENDS}
    assert lat["device"] < lat["stream"] < lat["proxy"]
    shared = {b: run_pingpong(True, 256, 4,
                              cfg=greina(comm_backend=b)).latency
              for b in COMM_BACKENDS}
    assert shared["device"] < shared["stream"] < shared["proxy"]


def test_proxy_backend_is_the_unchanged_default_path():
    """The proxy backend must reproduce the paper-calibrated ping-pong
    latencies exactly — it is the historical code path behind a new
    interface, not a reimplementation."""
    from repro.bench.pingpong import run_pingpong

    default = run_pingpong(False, 256, 4).latency
    explicit = run_pingpong(False, 256, 4,
                            cfg=greina(comm_backend="proxy")).latency
    assert default == explicit


# ------------------------------------------------------ cache salting -------
def test_spec_digest_salts_on_comm_backend_param():
    base = dict(shared_mem=False, packet_bytes=256, iterations=4)
    hashes = {RunSpec("pingpong_point",
                      dict(base, comm_backend=b)).content_hash()
              for b in COMM_BACKENDS}
    assert len(hashes) == len(COMM_BACKENDS)
    # Omitting the param is also distinct from naming any backend.
    hashes.add(RunSpec("pingpong_point", base).content_hash())
    assert len(hashes) == len(COMM_BACKENDS) + 1


def test_spec_digest_salts_on_comm_backend_config_field():
    base = greina(2)
    hashes = {RunSpec("overlap_point",
                      dict(mode="copy", compute_iters=4,
                           cfg=dataclasses.replace(base, comm_backend=b))
                      ).content_hash()
              for b in COMM_BACKENDS}
    assert len(hashes) == len(COMM_BACKENDS)
