"""Per-backend golden timestamps: a backend cannot silently change its
cost model.

``tests/fixtures/comm_backend_timestamps.json`` freezes the simulated
times of the fig6/fig7/fig8 miniatures per communication backend.  The
check is exact float equality — ``==``, not ``approx`` — so *any* drift
in a backend's charged costs or event ordering fails here and forces an
intentional fixture regeneration::

    PYTHONPATH=src python -m repro.bench.golden --backends \\
        tests/fixtures/comm_backend_timestamps.json

The proxy entries double as the schedule-preservation witness: they must
be bit-identical to the corresponding entries of the *main* golden
fixture, proving the proxy backend is the historical code path moved
behind an interface, not a reimplementation.
"""

import json
from pathlib import Path

import pytest

from repro.bench.golden import _backend_probe, capture_backends
from repro.hw.config import COMM_BACKENDS

FIXTURE = Path(__file__).parent.parent / "fixtures" / \
    "comm_backend_timestamps.json"
MAIN_FIXTURE = Path(__file__).parent.parent / "fixtures" / \
    "golden_timestamps.json"

#: proxy fixture key -> main-fixture key it must equal bit-for-bit.
PROXY_ALIASES = {
    "proxy.pingpong.shared.latency": "fig6.shared.latency",
    "proxy.pingpong.distributed.latency": "fig6.distributed.latency",
    "proxy.overlap.newton.elapsed": "fig7.newton.elapsed",
    "proxy.overlap.copy.elapsed": "fig8.copy.elapsed",
}


@pytest.fixture(scope="module")
def frozen():
    with open(FIXTURE) as fh:
        return json.load(fh)


def test_fixture_covers_every_backend(frozen):
    for backend in COMM_BACKENDS:
        keys = [k for k in frozen if k.startswith(f"{backend}.")]
        assert len(keys) == 4, (
            f"fixture has {len(keys)} entries for backend {backend!r}; "
            f"regenerate it after adding a backend or probe")


@pytest.mark.parametrize("backend", COMM_BACKENDS)
def test_backend_schedule_is_bit_identical_to_fixture(backend, frozen):
    captured = _backend_probe(backend)
    for key, value in captured.items():
        assert key in frozen, (
            f"{key} missing from fixture — regenerate "
            f"{FIXTURE.name} after an intentional probe change")
        assert value == frozen[key], (
            f"{key}: captured {value!r} != frozen {frozen[key]!r} — the "
            f"{backend} backend's schedule moved; if intentional, "
            f"regenerate {FIXTURE.name}")


def test_backend_fixtures_are_pairwise_distinct(frozen):
    """Three cost models, three schedules: identical values across
    backends would mean backend selection silently stopped working."""
    for suffix in ("pingpong.shared.latency",
                   "pingpong.distributed.latency",
                   "overlap.newton.elapsed", "overlap.copy.elapsed"):
        values = [frozen[f"{b}.{suffix}"] for b in COMM_BACKENDS]
        assert len(set(values)) == len(values), (
            f"{suffix}: backends share a frozen timestamp ({values})")


def test_proxy_entries_equal_the_main_golden_fixture(frozen):
    with open(MAIN_FIXTURE) as fh:
        main = json.load(fh)
    for proxy_key, main_key in PROXY_ALIASES.items():
        assert frozen[proxy_key] == main[main_key], (
            f"{proxy_key} != {main_key}: the proxy backend no longer "
            f"reproduces the pre-refactor schedule bit-for-bit")


def test_capture_backends_is_the_union_of_probes(frozen):
    assert set(capture_backends()) == set(frozen)
