"""Tests for the RunSpec task model and the canonical content hash."""

import pickle

import numpy as np
import pytest

from repro.apps.diffusion import DiffusionWorkload
from repro.errors import DCudaUsageError
from repro.exec import (
    RunSpec,
    canonical_digest,
    entrypoint,
    registered_entrypoints,
    resolve_entrypoint,
)
from repro.hw import greina


class TestCanonicalDigest:
    def test_stable_across_calls(self):
        value = {"a": 1, "b": [1.5, "x", None, True]}
        assert canonical_digest(value) == canonical_digest(value)

    def test_dict_insertion_order_never_matters(self):
        assert (canonical_digest({"a": 1, "b": 2})
                == canonical_digest({"b": 2, "a": 1}))

    def test_distinct_values_distinct_digests(self):
        seen = {canonical_digest(v) for v in
                (None, True, False, 0, 1, 1.0, "1", b"1", [1], {"k": 1})}
        assert len(seen) == 10

    def test_no_concatenation_collisions(self):
        assert (canonical_digest(("ab", "c"))
                != canonical_digest(("a", "bc")))
        assert canonical_digest([1, 23]) != canonical_digest([12, 3])

    def test_numpy_array_content_sensitivity(self):
        a = np.arange(6, dtype=np.float64)
        b = a.copy()
        assert canonical_digest(a) == canonical_digest(b)
        b[3] += 1e-12
        assert canonical_digest(a) != canonical_digest(b)
        # dtype and shape are part of the identity too.
        assert (canonical_digest(a.astype(np.float32))
                != canonical_digest(a))
        assert (canonical_digest(a.reshape(2, 3))
                != canonical_digest(a))

    def test_non_contiguous_array_equals_contiguous_copy(self):
        a = np.arange(10, dtype=np.int64)[::2]
        assert canonical_digest(a) == canonical_digest(a.copy())

    def test_nested_dataclasses_hash(self):
        wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
        cfg = greina(2)
        d1 = canonical_digest({"wl": wl, "cfg": cfg})
        d2 = canonical_digest({"wl": wl, "cfg": greina(2)})
        assert d1 == d2
        d3 = canonical_digest({"wl": wl, "cfg": greina(4)})
        assert d1 != d3

    def test_unsupported_type_raises_typed_error(self):
        with pytest.raises(DCudaUsageError):
            canonical_digest(object())
        with pytest.raises(DCudaUsageError):
            canonical_digest({"nested": {"deep": set()}})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(DCudaUsageError):
            canonical_digest({1: "a"})


class TestRunSpec:
    def test_content_hash_ignores_label_and_cacheable(self):
        a = RunSpec("sleep_probe", {"seconds": 0.5}, label="x")
        b = RunSpec("sleep_probe", {"seconds": 0.5}, label="y",
                    cacheable=False)
        assert a.content_hash() == b.content_hash()

    def test_content_hash_covers_entrypoint_and_params(self):
        a = RunSpec("sleep_probe", {"seconds": 0.5})
        assert (a.content_hash()
                != RunSpec("crash_probe", {"seconds": 0.5}).content_hash())
        assert (a.content_hash()
                != RunSpec("sleep_probe", {"seconds": 0.6}).content_hash())

    def test_hash_stable_across_pickle_roundtrip(self):
        wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
        spec = RunSpec("chaos_case", dict(seed=3, wl=wl), label="c3")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.content_hash() == spec.content_hash()
        assert clone.label == "c3"

    def test_describe_prefers_label(self):
        assert RunSpec("sleep_probe", label="nap").describe() == "nap"
        anon = RunSpec("sleep_probe").describe()
        assert anon.startswith("sleep_probe[")


class TestRegistry:
    def test_known_entrypoints_registered(self):
        names = set(registered_entrypoints())
        assert {"chaos_case", "pingpong_point", "overlap_point",
                "weak_scaling_point", "queue_burst_point", "staging_point",
                "simperf_probe", "sleep_probe", "crash_probe"} <= names

    def test_unknown_entrypoint_raises_typed_error(self):
        with pytest.raises(DCudaUsageError, match="unknown entrypoint"):
            resolve_entrypoint("no_such_point")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DCudaUsageError, match="already registered"):
            @entrypoint("sleep_probe")
            def imposter(params, shared):
                return None

    def test_reregistering_same_function_is_idempotent(self):
        fn = resolve_entrypoint("sleep_probe")
        assert entrypoint("sleep_probe")(fn) is fn
