"""Tests for the deterministic sweep engine: serial/parallel bit-identity,
crash isolation, timeouts, cache interplay."""

import random

import pytest

from repro.errors import (
    DCudaTimeoutError,
    DCudaUsageError,
    DCudaWorkerError,
)
from repro.exec import (
    ResultCache,
    RunSpec,
    canonical_digest,
    default_workers,
    run_specs,
)

#: Cheap but real simulation points (~10 ms each): enough structure for
#: results to be distinguishable, cheap enough to fuzz across pools.
FUZZ_SPECS = [
    RunSpec("pingpong_point",
            dict(shared_mem=shared_mem, packet_bytes=size, iterations=3),
            label=f"fuzz:{shared_mem}:{size}")
    for shared_mem in (True, False) for size in (1, 64, 4096)
]


def _digest(results):
    return canonical_digest([(r.latency, r.bandwidth, r.packet_bytes)
                             for r in results])


class TestSerial:
    def test_results_in_spec_order(self):
        report = run_specs(FUZZ_SPECS)
        assert report.tasks == report.executed == len(FUZZ_SPECS)
        assert report.workers == 1 and report.cache_hits == 0
        for spec, result in zip(FUZZ_SPECS, report.results):
            assert result.packet_bytes == spec.params["packet_bytes"]

    def test_serial_exceptions_propagate_raw(self):
        # The in-process path keeps the historical debugging behaviour:
        # no DCudaWorkerError wrapping (that is the pool's job).
        with pytest.raises(RuntimeError, match="boom"):
            run_specs([RunSpec("crash_probe", {"message": "boom"})])

    def test_unknown_entrypoint_is_usage_error(self):
        with pytest.raises(DCudaUsageError, match="unknown entrypoint"):
            run_specs([RunSpec("no_such_point")])

    def test_empty_sweep(self):
        report = run_specs([])
        assert report.results == [] and report.cache_hit_rate == 0.0


class TestWorkersKnob:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        assert default_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "4")
        assert default_workers() == 4

    def test_invalid_env_is_usage_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "many")
        with pytest.raises(DCudaUsageError):
            default_workers()


class TestCacheInterplay:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_specs(FUZZ_SPECS, cache=cache)
        warm = run_specs(FUZZ_SPECS, cache=cache)
        assert cold.executed == len(FUZZ_SPECS) and cold.cache_hits == 0
        assert warm.executed == 0
        assert warm.cache_hits == len(FUZZ_SPECS)
        assert warm.cache_hit_rate == 1.0
        assert _digest(cold.results) == _digest(warm.results)

    def test_cache_accepts_path(self, tmp_path):
        path = tmp_path / "cache-by-path"
        run_specs(FUZZ_SPECS[:2], cache=path)
        warm = run_specs(FUZZ_SPECS[:2], cache=str(path))
        assert warm.cache_hits == 2

    def test_non_cacheable_specs_always_execute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec("sleep_probe", {"seconds": 0.0}, cacheable=False)
        assert run_specs([spec], cache=cache).executed == 1
        assert run_specs([spec], cache=cache).executed == 1

    def test_shared_payload_salts_cache_keys(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs, _ = _chaos_micro_specs(seeds=(0,))
        a = run_specs(specs, cache=cache, shared={"salt": 1})
        b = run_specs(specs, cache=cache, shared={"salt": 2})
        c = run_specs(specs, cache=cache, shared={"salt": 1})
        assert a.executed == 1 and b.executed == 1  # different shared
        assert c.cache_hits == 1                    # same shared


def _chaos_micro_specs(seeds=(0, 1, 2)):
    """A miniature chaos sweep: the cheapest shared-payload consumer."""
    from repro.faults.report import chaos_specs

    return chaos_specs(seeds, num_nodes=2, ranks_per_device=2)


@pytest.mark.slow
class TestParallel:
    """Process-pool behaviour: spawn startup makes these the slow ones."""

    def test_bit_identity_across_worker_counts_and_order(self):
        serial = run_specs(FUZZ_SPECS, workers=1)
        want = _digest(serial.results)
        for workers in (2, 4):
            report = run_specs(FUZZ_SPECS, workers=workers)
            assert report.workers == workers
            assert _digest(report.results) == want

        # Shuffled submission order: result i still belongs to spec i.
        shuffled = FUZZ_SPECS[:]
        random.Random(7).shuffle(shuffled)
        report = run_specs(shuffled, workers=2)
        by_label = {s.label: r for s, r in zip(shuffled, report.results)}
        for spec, result in zip(FUZZ_SPECS, serial.results):
            assert _digest([by_label[spec.label]]) == _digest([result])

    def test_shared_payload_reaches_workers(self):
        specs, shared = _chaos_micro_specs(seeds=(0, 1))
        serial = run_specs(specs, workers=1, shared=shared)
        parallel = run_specs(specs, workers=2, shared=shared)
        assert parallel.results == serial.results
        for outcome in parallel.results:
            assert outcome.clean

    def test_worker_crash_wrapped_in_typed_error(self):
        specs = [RunSpec("crash_probe", {"message": "kaboom"},
                         label="crasher"),
                 RunSpec("sleep_probe", {"seconds": 0.0})]
        with pytest.raises(DCudaWorkerError) as exc_info:
            run_specs(specs, workers=2)
        message = str(exc_info.value)
        assert "crasher" in message and "kaboom" in message
        assert exc_info.value.code == "DCUDA_WORKER"

    def test_stuck_worker_times_out_typed(self):
        specs = [RunSpec("sleep_probe", {"seconds": 60.0}, label="stuck"),
                 RunSpec("sleep_probe", {"seconds": 60.0})]
        with pytest.raises(DCudaTimeoutError, match="stuck"):
            run_specs(specs, workers=2, timeout=3.0)

    def test_parallel_results_feed_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_specs(FUZZ_SPECS, workers=2, cache=cache)
        assert cold.cache_hits == 0
        warm = run_specs(FUZZ_SPECS, workers=1, cache=cache)
        assert warm.cache_hits == len(FUZZ_SPECS)
        assert _digest(cold.results) == _digest(warm.results)
