"""The topo suite: spec shape, CLI flags, and kind validation."""

import json

import pytest

from repro.errors import DCudaUsageError
from repro.exec.__main__ import main
from repro.exec.suites import build_suite


class TestBuildSuite:
    def test_default_sweeps_all_kinds(self):
        suite = build_suite("topo")
        # 3 kinds x (3 latency pairs + 3 overlap runs), proxy backend.
        assert len(suite.specs) == 18
        labels = [s.label for s in suite.specs]
        assert "topo:proxy:flat:same-node" in labels
        assert "topo:proxy:ring:far" in labels
        assert "topo-overlap:proxy:fat_tree:both" in labels

    def test_kind_subset(self):
        suite = build_suite("topo", topology=("ring",))
        assert len(suite.specs) == 6
        latency = [s for s in suite.specs
                   if s.label.startswith("topo:")]
        assert len(latency) == 3
        assert all(s.params["kind"] == "ring" for s in latency)

    def test_backend_axis_multiplies_the_suite(self):
        suite = build_suite("topo", topology=("flat",),
                            backends=("proxy", "device", "stream"))
        assert len(suite.specs) == 18
        for backend in ("proxy", "device", "stream"):
            assert f"topo:{backend}:flat:far" in [s.label
                                                  for s in suite.specs]

    def test_unknown_backend_rejected(self):
        with pytest.raises(DCudaUsageError, match="comm backend"):
            build_suite("topo", backends=("smoke-signals",))

    def test_unknown_kind_rejected(self):
        with pytest.raises(DCudaUsageError, match="interconnect kind"):
            build_suite("topo", topology=("torus",))

    def test_far_pair_is_ring_diameter(self):
        suite = build_suite("topo", topo_nodes=6, topo_gpus=1)
        far = [s for s in suite.specs
               if s.label == "topo:proxy:ring:far"][0]
        assert far.params["b"] == (3, 0)


def test_cli_runs_one_kind(tmp_path, capsys):
    rc = main(["run", "topo", "--topology", "ring", "--topo-nodes", "4",
               "--topo-gpus", "1", "--iterations", "3",
               "--cache-dir", str(tmp_path / "cache"),
               "--json", str(tmp_path / "sweep.json")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Topology matrix" in out
    assert "Overlap efficiency" in out
    record = json.loads((tmp_path / "sweep.json").read_text())
    assert record["suite"] == "topo" and record["tasks"] == 6


def test_topology_results_are_cacheable(tmp_path, capsys):
    args = ["run", "topo", "--topology", "flat", "--topo-nodes", "2",
            "--topo-gpus", "1", "--iterations", "3",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "sweep.json")]
    assert main(args) == 0
    cold = json.loads((tmp_path / "sweep.json").read_text())
    assert main(args + ["--require-cached"]) == 0
    warm = json.loads((tmp_path / "sweep.json").read_text())
    assert warm["results_digest"] == cold["results_digest"]
    assert warm["cache_hits"] == warm["tasks"]
