"""Tests for the content-addressed result cache (corruption, fingerprints,
gc)."""

import pytest

from repro.exec import ResultCache, RunSpec, run_specs
from repro.exec.fingerprint import source_fingerprint

FP_A = "a" * 64
FP_B = "b" * 64


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", fingerprint=FP_A)


def _entry_files(cache):
    return sorted(cache.root.rglob("*.pkl"))


class TestRoundTrip:
    def test_put_get(self, cache):
        cache.put("k1", {"value": 42}, label="t")
        hit, result = cache.get("k1")
        assert hit and result == {"value": 42}

    def test_absent_key_misses(self, cache):
        hit, result = cache.get("missing")
        assert not hit and result is None

    def test_keys_salted_by_shared_digest(self, cache):
        spec = RunSpec("sleep_probe", {"seconds": 0.1})
        assert cache.key_for(spec, "") != cache.key_for(spec, "digest1")
        assert (cache.key_for(spec, "digest1")
                == cache.key_for(spec, "digest1"))

    def test_unpicklable_result_silently_not_cached(self, cache):
        cache.put("k", lambda: None)
        hit, _ = cache.get("k")
        assert not hit


class TestCorruptionRecovery:
    """Any on-disk deviation is a miss plus best-effort deletion."""

    def _one_entry(self, cache):
        cache.put("k", [1, 2, 3])
        (path,) = _entry_files(cache)
        return path

    def test_truncated_entry_is_miss_and_deleted(self, cache):
        path = self._one_entry(cache)
        path.write_bytes(path.read_bytes()[:20])
        hit, _ = cache.get("k")
        assert not hit
        assert not path.exists()

    def test_flipped_payload_byte_is_miss(self, cache):
        path = self._one_entry(cache)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        hit, _ = cache.get("k")
        assert not hit
        assert not path.exists()

    def test_bad_magic_is_miss(self, cache):
        path = self._one_entry(cache)
        path.write_bytes(b"not-a-cache-entry\njunk\njunk")
        hit, _ = cache.get("k")
        assert not hit

    def test_engine_reruns_after_corruption(self, cache):
        spec = RunSpec("sleep_probe", {"seconds": 0.0})
        first = run_specs([spec], cache=cache)
        assert first.executed == 1
        for path in _entry_files(cache):
            path.write_bytes(b"garbage")
        again = run_specs([spec], cache=cache)
        assert again.executed == 1 and again.cache_hits == 0
        assert again.results == first.results
        # ...and the re-run repaired the entry.
        warm = run_specs([spec], cache=cache)
        assert warm.cache_hits == 1


class TestFingerprintInvalidation:
    def test_different_fingerprints_do_not_share(self, tmp_path):
        old = ResultCache(tmp_path / "cache", fingerprint=FP_A)
        old.put("k", "result-from-old-code")
        new = ResultCache(tmp_path / "cache", fingerprint=FP_B)
        hit, _ = new.get("k")
        assert not hit
        # The old generation is untouched (no destructive invalidation).
        hit, result = old.get("k")
        assert hit and result == "result-from-old-code"

    def test_source_fingerprint_tracks_content(self, tmp_path):
        (tmp_path / "mod.py").write_text("X = 1\n")
        fp1 = source_fingerprint(tmp_path, refresh=True)
        assert fp1 == source_fingerprint(tmp_path)  # memoized
        (tmp_path / "mod.py").write_text("X = 2\n")
        fp2 = source_fingerprint(tmp_path, refresh=True)
        assert fp1 != fp2

    def test_source_fingerprint_tracks_new_and_renamed_files(self, tmp_path):
        (tmp_path / "a.py").write_text("pass\n")
        fp1 = source_fingerprint(tmp_path, refresh=True)
        (tmp_path / "b.py").write_text("pass\n")
        fp2 = source_fingerprint(tmp_path, refresh=True)
        assert fp1 != fp2
        (tmp_path / "b.py").rename(tmp_path / "c.py")
        fp3 = source_fingerprint(tmp_path, refresh=True)
        assert fp3 not in (fp1, fp2)

    def test_live_fingerprint_is_default(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.fingerprint == source_fingerprint()


class TestMaintenance:
    def test_stats_and_gc(self, tmp_path):
        stale = ResultCache(tmp_path / "cache", fingerprint=FP_B)
        stale.put("old1", 1)
        stale.put("old2", 2)
        live = ResultCache(tmp_path / "cache", fingerprint=FP_A)
        live.put("new", 3)

        stats = live.stats()
        assert stats.entries == 1 and stats.stale_entries == 2
        assert stats.generations == 2
        assert stats.bytes > 0 and stats.stale_bytes > 0

        removed, freed = live.gc()
        assert removed == 2 and freed > 0
        after = live.stats()
        assert after.stale_entries == 0 and after.entries == 1
        hit, _ = live.get("new")
        assert hit

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint=FP_A)
        cache.put("k1", 1)
        cache.put("k2", 2)
        removed, _ = cache.clear()
        assert removed == 2
        assert cache.stats().entries == 0

    def test_gc_on_missing_root_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created", fingerprint=FP_A)
        assert cache.gc() == (0, 0)
        assert cache.clear() == (0, 0)
        assert cache.stats().entries == 0
