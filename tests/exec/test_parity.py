"""Parallel-vs-serial parity on the repo's own acceptance surfaces.

The engine's determinism claim is only interesting if it holds for the
*real* sweeps the repo ships: the chaos contract (typed-failure envelope
with bit-identical numerics) and the figure points guarded by the golden
simulated-timestamp fixture.  These tests replay miniature versions of
both through serial and 2-worker execution and require exact equality —
``==`` on floats, never ``approx``.
"""

import pytest

from repro.apps.diffusion import DiffusionWorkload
from repro.bench.weak_scaling import weak_scaling_specs
from repro.exec import run_specs
from repro.faults.report import chaos_specs, chaos_sweep

SEEDS = range(4)


class TestChaosParity:
    def test_serial_engine_matches_historical_loop(self):
        """The engine-backed chaos_sweep reproduces per-case execution."""
        from repro.faults.report import run_chaos_case

        specs, shared = chaos_specs(SEEDS)
        via_engine = run_specs(specs, shared=shared).results
        inline = [run_chaos_case(seed, 2, 2,
                                 wl=specs[0].params["wl"],
                                 baseline=shared["baseline"])
                  for seed in SEEDS]
        assert via_engine == inline

    @pytest.mark.slow
    def test_parallel_sweep_bit_identical_to_serial(self):
        serial = chaos_sweep(SEEDS)
        parallel = chaos_sweep(SEEDS, workers=2)
        # ChaosOutcome is a frozen dataclass: == compares every field,
        # including the float simulated times, exactly.
        assert parallel == serial
        for outcome in parallel:
            assert outcome.clean


class TestGoldenWorkloadParity:
    """A golden-fixture-scale figure point through 1 and 2 workers."""

    WL = DiffusionWorkload(ni=8, nj_per_device=8, nk=2, steps=2)

    def _rows(self, workers):
        specs, _ = weak_scaling_specs("stencil", (1, 2), wl=self.WL,
                                      ranks_per_device=4, verify=False)
        return run_specs(specs, workers=workers).results

    @pytest.mark.slow
    def test_stencil_rows_exactly_equal(self):
        serial = self._rows(workers=1)
        parallel = self._rows(workers=2)
        # ScalingRow is frozen: exact float equality on simulated times.
        assert parallel == serial
