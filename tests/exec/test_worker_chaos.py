"""Worker-loss chaos fuzz: kill real workers mid-campaign, digest holds.

The tentpole's hard invariant, attacked with real process murder: over
``FUZZ_ROUNDS`` seeded rounds, K random subprocess workers are
SIGKILLed while a campaign runs, and the merged digest must equal the
serial digest *every* time — retry-on-worker-loss is allowed to cost
wall-clock, never bits.  The quarantine rule gets the complementary
treatment: a spec that hard-kills its worker on every dispatch must
surface as exactly one typed :class:`~repro.errors.DCudaWorkerError`
after the healthy remainder of the sweep completes — quarantine, not a
hang, and not N cascading failures.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import DCudaWorkerError
from repro.exec import RunSpec, canonical_digest, run_specs
from repro.exec.executors import SubprocessWorkerExecutor

#: Seeded fuzz rounds (the satellite demands >= 20).
FUZZ_ROUNDS = 20
#: Workers killed per round.
KILLS_PER_ROUND = 2

#: The campaign: cheap echo points with a deterministic payload, enough
#: of them that kills land mid-flight, small sleeps so workers are
#: actually *in* a task when the signal arrives.
CAMPAIGN = [RunSpec("selftest_point",
                    {"token": i, "mode": "sleep", "seconds": 0.02},
                    label=f"chaos-{i}", cacheable=False)
            for i in range(24)]


def _digest(results):
    return canonical_digest([r["token"] for r in results])


SERIAL_DIGEST = None


def _serial_digest():
    global SERIAL_DIGEST
    if SERIAL_DIGEST is None:
        SERIAL_DIGEST = _digest(run_specs(CAMPAIGN, workers=1).results)
    return SERIAL_DIGEST


def _kill_workers_mid_campaign(executor, rng, kills, stop_event):
    """Assassin thread: SIGKILL random live workers while specs run."""
    killed = 0
    while killed < kills and not stop_event.is_set():
        time.sleep(rng.uniform(0.01, 0.08))
        pids = executor.worker_pids()
        if not pids:
            continue
        victim = rng.choice(pids)
        try:
            os.kill(victim, signal.SIGKILL)
            killed += 1
        except (OSError, ProcessLookupError):
            continue
    return killed


@pytest.mark.slow
class TestWorkerLossFuzz:
    def test_digest_bit_identical_across_20_seeded_kill_rounds(self):
        import random

        want = _serial_digest()
        for seed in range(FUZZ_ROUNDS):
            rng = random.Random(seed)
            ex = SubprocessWorkerExecutor(workers=3)
            stop = threading.Event()
            assassin = threading.Thread(
                target=_kill_workers_mid_campaign,
                args=(ex, rng, KILLS_PER_ROUND, stop), daemon=True)
            try:
                assassin.start()
                report = run_specs(CAMPAIGN, workers=3, executor=ex,
                                   max_attempts=10)
            finally:
                stop.set()
                assassin.join(timeout=5.0)
                ex.stop(force=True)
            assert _digest(report.results) == want, \
                f"digest diverged under worker loss (seed {seed})"
            assert report.executor == "subprocess"

    def test_retries_are_reported_when_kills_land(self):
        """At least one fuzz round should actually exercise the retry
        path (sanity check that the assassin is not a no-op)."""
        import random

        rng = random.Random(1234)
        total_retries = 0
        for _ in range(5):
            ex = SubprocessWorkerExecutor(workers=3)
            stop = threading.Event()
            assassin = threading.Thread(
                target=_kill_workers_mid_campaign,
                args=(ex, rng, KILLS_PER_ROUND, stop), daemon=True)
            try:
                assassin.start()
                report = run_specs(CAMPAIGN, workers=3, executor=ex,
                                   max_attempts=10)
            finally:
                stop.set()
                assassin.join(timeout=5.0)
                ex.stop(force=True)
            total_retries += report.retries
            if total_retries:
                break
        assert total_retries > 0, \
            "assassin never landed a kill in 5 rounds — harness broken"


@pytest.mark.slow
class TestPoisonedSpecQuarantine:
    def test_spec_failing_on_3_distinct_workers_is_one_typed_error(self):
        specs = [RunSpec("selftest_point", {"token": i},
                         label=f"healthy-{i}") for i in range(4)]
        specs.insert(2, RunSpec("selftest_point", {"mode": "exit"},
                                label="poison-pill", cacheable=False))
        ex = SubprocessWorkerExecutor(workers=2)
        with pytest.raises(DCudaWorkerError) as exc_info:
            run_specs(specs, workers=2, executor=ex, max_attempts=3)
        message = str(exc_info.value)
        assert "quarantined" in message and "poison-pill" in message
        # Three *distinct* worker identities took the hit.
        import re

        workers = re.findall(r"worker-\d+-pid\d+", message)
        assert len(workers) == 3 and len(set(workers)) == 3, message
        assert exc_info.value.code == "DCUDA_WORKER"

    def test_healthy_sweep_unaffected_by_one_poison_round_trip(self):
        """After the quarantine error, the same healthy specs rerun
        cleanly — the executor/quarantine state does not leak."""
        healthy = [RunSpec("selftest_point", {"token": i},
                           label=f"h{i}") for i in range(3)]
        report = run_specs(healthy, workers=2, executor="subprocess")
        assert [r["token"] for r in report.results] == [0, 1, 2]
        assert report.retries == 0
