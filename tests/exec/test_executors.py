"""Tests for the executor protocol and its four transports.

The protocol contract under test: an executor accepts Job submissions,
yields Completion events in *any* order, names the worker behind each
one, and reports worker loss as a ``worker_lost`` completion (never an
exception, never silence).  Everything above — ordering, retry, digest
identity — is the coordinator's job and tested separately.
"""

import pickle
import threading

import pytest

from repro.errors import DCudaUsageError, DCudaWorkerError
from repro.exec.executors import (
    EXECUTOR_NAMES,
    Completion,
    HTTPWorkerExecutor,
    Job,
    LocalPoolExecutor,
    SerialExecutor,
    SubprocessWorkerExecutor,
    build_executor,
)
from repro.exec.worker import run_job_payload, serve_http


def _drain(executor, count, timeout=60.0):
    """Collect *count* completions from *executor* (order-insensitive)."""
    out = []
    while len(out) < count:
        comp = executor.next_completion(timeout=timeout)
        assert comp is not None, f"drained only {len(out)}/{count}"
        out.append(comp)
    return out


def _echo_jobs(n):
    return [Job(job_id=i, entrypoint="selftest_point",
                params={"token": i}, label=f"echo-{i}") for i in range(n)]


class TestBuildExecutor:
    def test_names_round_trip(self):
        assert build_executor("serial").name == "serial"
        assert build_executor("local", workers=2).name == "local"
        assert build_executor("subprocess", workers=2).name == "subprocess"
        assert build_executor("http", hosts=["127.0.0.1:1"]).name == "http"

    def test_unknown_name_rejected(self):
        with pytest.raises(DCudaUsageError, match="unknown executor"):
            build_executor("carrier-pigeon")

    def test_http_requires_hosts(self):
        with pytest.raises(DCudaUsageError, match="host:port"):
            build_executor("http")

    def test_names_constant_is_complete(self):
        assert set(EXECUTOR_NAMES) == {"serial", "local", "subprocess",
                                       "http"}


class TestSerialExecutor:
    def test_jobs_run_lazily_in_order(self):
        ex = SerialExecutor()
        ex.start({}, expected_jobs=3)
        for job in _echo_jobs(3):
            ex.submit(job)
        comps = _drain(ex, 3)
        assert [c.job_id for c in comps] == [0, 1, 2]
        assert all(c.ok and c.worker == "serial" for c in comps)
        assert comps[1].value["token"] == 1
        ex.stop()

    def test_exceptions_propagate_raw(self):
        ex = SerialExecutor()
        ex.start({})
        ex.submit(Job(0, "selftest_point",
                      {"mode": "raise", "message": "bang"}))
        with pytest.raises(RuntimeError, match="bang"):
            ex.next_completion()
        ex.stop()

    def test_not_preemptive(self):
        assert SerialExecutor.preemptive is False


class TestLocalPoolPythonPathHygiene:
    def test_double_stop_preserves_callers_pythonpath(self, monkeypatch):
        """stop() must only undo its *own* PYTHONPATH edit: a second
        stop() (the coordinator and a context manager can both call it)
        or a stop() without start() must not delete the caller's
        value."""
        monkeypatch.setenv("PYTHONPATH", "caller-value")
        import os

        ex = LocalPoolExecutor(workers=1)
        ex.stop()  # never started: environment untouched
        assert os.environ["PYTHONPATH"] == "caller-value"
        ex2 = LocalPoolExecutor(workers=1)
        ex2.start({}, expected_jobs=1)
        ex2.stop()
        assert os.environ["PYTHONPATH"] == "caller-value"
        ex2.stop()  # idempotent
        assert os.environ["PYTHONPATH"] == "caller-value"


@pytest.mark.slow
class TestLocalPoolExecutor:
    def test_completes_all_jobs(self):
        with LocalPoolExecutor(workers=2) as ex:
            ex.start({"payload": "p"}, expected_jobs=4)
            for job in _echo_jobs(4):
                ex.submit(job)
            comps = _drain(ex, 4)
        assert sorted(c.job_id for c in comps) == [0, 1, 2, 3]
        for c in comps:
            assert c.ok and c.value["payload"] == ["payload"]
            assert c.worker.startswith("pool-gen")

    def test_task_exception_is_typed_completion(self):
        with LocalPoolExecutor(workers=1) as ex:
            ex.start({}, expected_jobs=1)
            ex.submit(Job(0, "selftest_point",
                          {"mode": "raise", "message": "pow"}, "boomtask"))
            (comp,) = _drain(ex, 1)
        assert not comp.ok and not comp.worker_lost
        assert isinstance(comp.error, DCudaWorkerError)
        assert "pow" in str(comp.error)

    def test_worker_death_is_worker_lost_and_pool_recovers(self):
        with LocalPoolExecutor(workers=1) as ex:
            ex.start({}, expected_jobs=2)
            ex.submit(Job(0, "selftest_point", {"mode": "exit"}, "killer"))
            (lost,) = _drain(ex, 1)
            assert lost.worker_lost and not lost.ok
            gen_before = lost.worker
            # The next submit must rebuild the pool (a fresh generation).
            ex.submit(Job(1, "selftest_point", {"token": "after"}))
            (ok,) = _drain(ex, 1)
        assert ok.ok and ok.value["token"] == "after"
        assert ok.worker != gen_before  # distinct worker identity


@pytest.mark.slow
class TestSubprocessWorkerExecutor:
    def test_completes_jobs_across_fleet(self):
        with SubprocessWorkerExecutor(workers=2) as ex:
            ex.start({"shared": 1}, expected_jobs=6)
            assert len(ex.worker_pids()) == 2
            for job in _echo_jobs(6):
                ex.submit(job)
            comps = _drain(ex, 6)
        assert sorted(c.job_id for c in comps) == list(range(6))
        for c in comps:
            assert c.ok and c.worker.startswith("worker-")
            assert c.value["payload"] == ["shared"]

    def test_worker_death_reported_and_respawned(self):
        with SubprocessWorkerExecutor(workers=1) as ex:
            ex.start({}, expected_jobs=2)
            ex.submit(Job(0, "selftest_point", {"mode": "exit"}, "poison"))
            (lost,) = _drain(ex, 1)
            assert lost.worker_lost
            ex.submit(Job(1, "selftest_point", {"token": "alive"}))
            (ok,) = _drain(ex, 1)
        assert ok.ok and ok.value["token"] == "alive"
        assert ok.worker != lost.worker  # respawn = new pid = new identity

    def test_typed_error_crosses_the_pipe(self):
        with SubprocessWorkerExecutor(workers=1) as ex:
            ex.start({}, expected_jobs=1)
            ex.submit(Job(0, "selftest_point",
                          {"mode": "raise", "message": "wired"}, "t"))
            (comp,) = _drain(ex, 1)
        assert isinstance(comp.error, DCudaWorkerError)
        assert "wired" in str(comp.error)


@pytest.fixture
def http_worker():
    """An in-process HTTP worker daemon on an ephemeral port."""
    server = serve_http(0, serve_forever=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host = f"127.0.0.1:{server.server_address[1]}"
    yield host, server
    state = server.worker_state
    with state.cond:
        state.stopping = True
        state.cond.notify_all()
    server.shutdown()
    server.server_close()


class TestHTTPWorkerExecutor:
    def test_completes_jobs_via_daemon(self, http_worker):
        host, _ = http_worker
        ex = HTTPWorkerExecutor([host], poll_wait=0.2)
        ex.start({"k": 1}, expected_jobs=3)
        try:
            for job in _echo_jobs(3):
                ex.submit(job)
            comps = _drain(ex, 3)
        finally:
            ex.stop()
        assert sorted(c.job_id for c in comps) == [0, 1, 2]
        for c in comps:
            assert c.ok and c.worker == f"http:{host}"
            assert c.value["payload"] == ["k"]

    def test_unreachable_daemon_reports_worker_lost_not_hang(self):
        ex = HTTPWorkerExecutor(["127.0.0.1:1"], poll_wait=0.1,
                                reconnect_interval=0.01,
                                max_reconnect_failures=3)
        ex.start({}, expected_jobs=1)
        try:
            ex.submit(Job(0, "selftest_point", {}))
            deadline = 50
            while ex.alive_workers() > 0 and deadline:
                deadline -= 1
                import time
                time.sleep(0.1)
            assert ex.alive_workers() == 0  # gave up typed, not hung
        finally:
            ex.stop()

    def test_stale_frames_from_dead_session_never_credited(
            self, http_worker):
        """Daemon reuse across sweeps: a straggler frame left by a
        previous sweep (same job_id space!) must not be recorded as
        this sweep's result — epoch tags fence it off."""
        host, server = http_worker
        state = server.worker_state
        # A dead session's unpolled result, colliding on job_id 0.
        with state.cond:
            state.finished.append({"kind": "done", "job_id": 0,
                                   "ok": True, "value": {"token": "STALE"},
                                   "epoch": "dead-session"})
            state.cond.notify_all()
        ex = HTTPWorkerExecutor([host], poll_wait=0.2)
        ex.start({}, expected_jobs=1)
        try:
            ex.submit(Job(0, "selftest_point", {"token": "fresh"}))
            (comp,) = _drain(ex, 1)
        finally:
            ex.stop()
        assert comp.ok and comp.value["token"] == "fresh"

    def test_init_clears_dead_session_state(self, http_worker):
        """POST /init starts a session: stale queue + outbox dropped."""
        host, server = http_worker
        state = server.worker_state
        with state.cond:
            state.finished.append({"kind": "done", "job_id": 9,
                                   "ok": True, "value": "old",
                                   "epoch": "dead"})
        state.reset({"fresh": True})
        with state.cond:
            assert state.finished == [] and state.jobs == []
            assert state.shared == {"fresh": True}

    def test_daemon_stats_route(self, http_worker):
        host, server = http_worker
        ex = HTTPWorkerExecutor([host], poll_wait=0.2)
        ex.start({}, expected_jobs=1)
        try:
            ex.submit(Job(0, "selftest_point", {"token": "t"}))
            _drain(ex, 1)
        finally:
            ex.stop()
        import http.client

        hostname, _, port = host.partition(":")
        conn = http.client.HTTPConnection(hostname, int(port), timeout=5)
        conn.request("GET", "/stats")
        stats = pickle.loads(conn.getresponse().read())
        conn.close()
        assert stats["served"] == 1


class TestWorkerPayload:
    """run_job_payload: every outcome must cross the wire typed."""

    def _job(self, **params):
        return {"kind": "job", "job_id": 7, "entrypoint": "selftest_point",
                "params": params, "label": "t"}

    def test_success_frame(self):
        frame = run_job_payload(self._job(token="x"), {"s": 1})
        assert frame["ok"] and frame["job_id"] == 7
        assert frame["value"]["token"] == "x"

    def test_untyped_exception_wrapped_with_traceback(self):
        frame = run_job_payload(self._job(mode="raise", message="deep"),
                                {})
        assert not frame["ok"]
        assert isinstance(frame["error"], DCudaWorkerError)
        assert "deep" in str(frame["error"])
        assert "Traceback" in str(frame["error"])

    def test_typed_error_passes_through(self):
        job = {"kind": "job", "job_id": 1, "entrypoint": "no_such_point",
               "params": {}, "label": "t"}
        frame = run_job_payload(job, {})
        assert not frame["ok"]
        assert isinstance(frame["error"], DCudaUsageError)

    def test_frame_is_picklable_even_for_weird_errors(self):
        frame = run_job_payload(self._job(mode="raise", message="x"), {})
        assert pickle.loads(pickle.dumps(frame))


class TestFrameProtocol:
    def test_round_trip(self, tmp_path):
        from repro.exec.worker import recv_frame, send_frame

        path = tmp_path / "pipe"
        with open(path, "wb") as w:
            send_frame(w, {"kind": "job", "n": 1})
            send_frame(w, {"kind": "shutdown"})
        with open(path, "rb") as r:
            assert recv_frame(r) == {"kind": "job", "n": 1}
            assert recv_frame(r) == {"kind": "shutdown"}
            assert recv_frame(r) is None  # clean EOF

    def test_truncated_payload_raises_eof(self, tmp_path):
        from repro.exec.worker import recv_frame, send_frame

        path = tmp_path / "pipe"
        with open(path, "wb") as w:
            send_frame(w, {"kind": "job", "blob": "x" * 100})
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])
        with open(path, "rb") as r, pytest.raises(EOFError):
            recv_frame(r)

    def test_absurd_length_header_raises_eof(self, tmp_path):
        from repro.exec.worker import recv_frame

        path = tmp_path / "pipe"
        path.write_bytes(b"\xff\xff\xff\xff")
        with open(path, "rb") as r, pytest.raises(EOFError):
            recv_frame(r)


def test_completion_shapes():
    ok = Completion(1, ok=True, value=3, worker="w")
    lost = Completion(2, worker="w", worker_lost=True)
    assert ok.ok and not ok.worker_lost
    assert not lost.ok and lost.worker_lost and lost.error is None
