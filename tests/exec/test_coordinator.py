"""Tests for the sweep coordinator: dedup, retry, quarantine, progress.

A scripted in-process executor plays back worker-loss scenarios
deterministically, so the retry and quarantine policies are tested
without real process churn (the real transports get that treatment in
``test_worker_chaos.py``).
"""

import json

import pytest

from repro.errors import DCudaWorkerError
from repro.exec import ResultCache, RunSpec
from repro.exec.coordinator import (
    STATUS_FILENAME,
    Coordinator,
    ProgressEvent,
    SweepReport,
)
from repro.exec.executors import Completion, Executor, SerialExecutor
from repro.exec.spec import resolve_entrypoint


class ScriptedExecutor(Executor):
    """Runs jobs in-process, but kills scripted (label, attempt) pairs.

    ``deaths`` maps a job label to the number of times it should present
    as worker loss before (ever) succeeding.  Each simulated death comes
    from a fresh worker identity, modelling the distinct-workers
    quarantine condition.
    """

    name = "scripted"
    preemptive = True

    def __init__(self, deaths=None):
        self.deaths = dict(deaths or {})
        self._pending = []
        self._shared = {}
        self._seen = {}
        self._worker_serial = 0

    def start(self, shared, expected_jobs=None):
        self._shared = dict(shared or {})

    def submit(self, job):
        self._pending.append(job)

    def next_completion(self, timeout=None):
        if not self._pending:
            return None
        job = self._pending.pop(0)
        attempt = self._seen.get(job.label, 0)
        self._seen[job.label] = attempt + 1
        self._worker_serial += 1
        worker = f"scripted-{self._worker_serial}"
        if attempt < self.deaths.get(job.label, 0):
            return Completion(job.job_id, worker=worker, worker_lost=True)
        fn = resolve_entrypoint(job.entrypoint)
        value = fn(dict(job.params), self._shared)
        return Completion(job.job_id, ok=True, value=value, worker=worker)

    def stop(self, force=False):
        self._pending.clear()

    def alive_workers(self):
        return 1


def _specs(n, **extra):
    return [RunSpec("selftest_point", {"token": i, **extra},
                    label=f"t{i}") for i in range(n)]


class TestRetry:
    def test_single_loss_is_retried_to_success(self):
        ex = ScriptedExecutor(deaths={"t1": 1})
        report = Coordinator(ex).run(_specs(3))
        assert [r["token"] for r in report.results] == [0, 1, 2]
        assert report.retries == 1
        assert report.executed == 3

    def test_two_losses_within_budget_still_succeed(self):
        ex = ScriptedExecutor(deaths={"t0": 2})
        report = Coordinator(ex, max_attempts=3).run(_specs(2))
        assert report.retries == 2
        assert [r["token"] for r in report.results] == [0, 1]


class TestQuarantine:
    def test_poisoned_spec_is_one_typed_error_after_drain(self):
        ex = ScriptedExecutor(deaths={"t1": 99})
        events = []
        coord = Coordinator(ex, max_attempts=3, on_event=events.append)
        with pytest.raises(DCudaWorkerError) as exc_info:
            coord.run(_specs(3))
        message = str(exc_info.value)
        assert "quarantined" in message and "t1" in message
        assert "3" in message  # names the attempt budget
        # Three distinct workers are named in the quarantine report.
        assert message.count("scripted-") == 3
        # The rest of the sweep completed before the error surfaced.
        done = [e for e in events if e.kind == "done"]
        assert {e.label for e in done} == {"t0", "t2"}
        assert [e.kind for e in events].count("quarantine") == 1

    def test_healthy_specs_cached_despite_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="c" * 64)
        ex = ScriptedExecutor(deaths={"t0": 99})
        with pytest.raises(DCudaWorkerError):
            Coordinator(ex, cache=cache, max_attempts=2).run(_specs(3))
        # t1/t2 were published; a healthy re-run is served from cache.
        report = Coordinator(SerialExecutor(), cache=cache).run(
            _specs(3)[1:])
        assert report.cache_hits == 2 and report.executed == 0


class TestDedup:
    def test_identical_specs_run_once_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="d" * 64)
        spec = RunSpec("selftest_point", {"token": "same"}, label="dup")
        report = Coordinator(SerialExecutor(), cache=cache).run([spec] * 4)
        assert report.executed == 1
        assert report.dedup_hits == 3
        assert all(r["token"] == "same" for r in report.results)

    def test_no_cache_means_no_dedup(self):
        spec = RunSpec("selftest_point", {"token": "same"})
        report = Coordinator(SerialExecutor()).run([spec] * 4)
        assert report.executed == 4 and report.dedup_hits == 0

    def test_non_cacheable_specs_never_dedup(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="d" * 64)
        spec = RunSpec("selftest_point", {"token": "wall-clock"},
                       cacheable=False)
        report = Coordinator(SerialExecutor(), cache=cache).run([spec] * 3)
        assert report.executed == 3 and report.dedup_hits == 0

    def test_dedup_and_cache_compose(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="d" * 64)
        spec = RunSpec("selftest_point", {"token": "x"})
        Coordinator(SerialExecutor(), cache=cache).run([spec])
        report = Coordinator(SerialExecutor(), cache=cache).run([spec] * 3)
        assert report.cache_hits == 3 and report.executed == 0


class TestProgressStream:
    def test_event_sequence_and_counts(self):
        events = []
        Coordinator(SerialExecutor(), on_event=events.append).run(_specs(2))
        kinds = [e.kind for e in events]
        assert kinds[0] == "start" and kinds[-1] == "finish"
        assert kinds.count("done") == 2
        final = events[-1]
        assert final.done == 2 and final.total == 2

    def test_status_file_written_and_final(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="e" * 64)
        Coordinator(SerialExecutor(), cache=cache).run(_specs(2))
        record = json.loads((cache.root / STATUS_FILENAME).read_text())
        assert record["state"] == "done"
        assert record["done"] == 2 and record["total"] == 2
        assert record["executor"] == "serial"

    def test_event_line_renders_counts(self):
        line = ProgressEvent(kind="done", done=3, total=9, cache_hits=2,
                             retries=1).line()
        assert "3/9" in line and "2 cached" in line and "retried" in line


class TestSerialFallback:
    def test_single_job_skips_transport(self):
        ex = ScriptedExecutor()
        report = Coordinator(ex, serial_fallback=True,
                             workers_hint=4).run(_specs(1))
        assert report.executor == "serial"
        assert report.workers == 4  # the hint survives the swap

    def test_multi_job_keeps_transport(self):
        ex = ScriptedExecutor()
        report = Coordinator(ex, serial_fallback=True).run(_specs(2))
        assert report.executor == "scripted"


class TestReport:
    def test_summary_mentions_executor_and_retries(self):
        report = SweepReport(results=[1], tasks=1, executed=1,
                             cache_hits=0, workers=2, wall_s=0.5,
                             retries=3, executor="subprocess")
        text = report.summary()
        assert "[subprocess]" in text and "retried" in text

    def test_empty_sweep(self):
        report = Coordinator(SerialExecutor()).run([])
        assert report.results == [] and report.tasks == 0
        assert report.cache_hit_rate == 0.0
