"""Tests for the ``python -m repro.exec`` command-line frontend."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec.__main__ import EXIT_NOT_CACHED, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(tmp_path, *extra, suite="chaos"):
    argv = ["run", suite, "--seeds", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "sweep.json"), *extra]
    return main(argv)


class TestRun:
    def test_run_writes_sweep_record(self, tmp_path, capsys):
        assert _run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "Chaos-sweep envelope" in out
        assert "results digest:" in out

        record = json.loads((tmp_path / "sweep.json").read_text())
        assert record["suite"] == "chaos"
        assert record["tasks"] == 2 and record["executed"] == 2
        assert record["cache_hits"] == 0
        assert len(record["results_digest"]) == 64

    def test_warm_replay_same_digest_all_hits(self, tmp_path, capsys):
        _run(tmp_path)
        cold = json.loads((tmp_path / "sweep.json").read_text())
        assert _run(tmp_path, "--require-cached") == 0
        warm = json.loads((tmp_path / "sweep.json").read_text())
        assert warm["results_digest"] == cold["results_digest"]
        assert warm["cache_hits"] == warm["tasks"]
        assert warm["cache_hit_rate"] == 1.0
        assert "require-cached: ok" in capsys.readouterr().out

    def test_require_cached_cold_exits_3(self, tmp_path, capsys):
        assert _run(tmp_path, "--require-cached") == EXIT_NOT_CACHED
        assert "require-cached: FAILED" in capsys.readouterr().err

    def test_no_cache_never_hits(self, tmp_path):
        _run(tmp_path)
        assert _run(tmp_path, "--no-cache", "--require-cached") \
            == EXIT_NOT_CACHED

    def test_no_json_skips_record(self, tmp_path, capsys):
        argv = ["run", "chaos", "--seeds", "1",
                "--cache-dir", str(tmp_path / "cache"), "--no-json"]
        assert main(argv) == 0
        assert not (tmp_path / "sweep.json").exists()
        assert "record:" not in capsys.readouterr().out

    def test_unknown_suite_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "fig99"])
        assert exc_info.value.code == 2


class TestCacheMaintenance:
    def test_status_reports_census(self, tmp_path, capsys):
        _run(tmp_path)
        capsys.readouterr()
        assert main(["status", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "live entries:   2" in out

    def test_clear_empties_cache(self, tmp_path, capsys):
        _run(tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        assert "removed 2 entries" in capsys.readouterr().out
        assert _run(tmp_path, "--require-cached") == EXIT_NOT_CACHED

    def test_gc_on_empty_cache(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir",
                     str(tmp_path / "empty")]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_stats_shard_breakdown(self, tmp_path, capsys):
        _run(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--shard", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "shards:" in out
        assert "shard-" in out  # per-shard rows printed

    def test_status_shows_last_sweep_progress(self, tmp_path, capsys):
        _run(tmp_path)
        capsys.readouterr()
        assert main(["status", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "last sweep:" in out
        assert "done [serial]: 2/2 done" in out

    def test_cache_migrate_moves_legacy_entries(self, tmp_path, capsys):
        _run(tmp_path)
        # Demote every sharded entry to the legacy flat layout.
        from repro.exec import ResultCache

        cache = ResultCache(tmp_path / "cache")
        gen = cache._generation_dir()
        for entry in list(gen.rglob("*.pkl")):
            entry.rename(gen / entry.name)
        capsys.readouterr()
        assert main(["cache", "migrate", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        assert "moved 2" in capsys.readouterr().out
        # Migrated cache serves the warm replay in full.
        assert _run(tmp_path, "--require-cached") == 0


class TestWorkerSubcommand:
    def test_worker_requires_a_mode(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["worker"])
        assert exc_info.value.code == 2

    def test_worker_modes_mutually_exclusive(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["worker", "--stdio", "--port", "0"])
        assert exc_info.value.code == 2

    @pytest.mark.slow
    def test_stdio_worker_round_trip(self):
        """`worker --stdio` speaks the frame protocol over its pipes."""
        import io
        import pickle

        from repro.exec.worker import recv_frame, send_frame

        request = io.BytesIO()
        send_frame(request, {"kind": "init", "shared": pickle.dumps({})})
        send_frame(request, {"kind": "job", "job_id": 0,
                             "entrypoint": "selftest_point",
                             "params": {"token": "cli"}, "label": "t"})
        send_frame(request, {"kind": "shutdown"})
        proc = subprocess.run(
            [sys.executable, "-m", "repro.exec", "worker", "--stdio"],
            input=request.getvalue(), capture_output=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"),
                 "PATH": "/usr/bin:/bin"}, timeout=60)
        assert proc.returncode == 0, proc.stderr.decode()
        out = io.BytesIO(proc.stdout)
        assert recv_frame(out)["kind"] == "ready"
        done = recv_frame(out)
        assert done["kind"] == "done" and done["ok"]
        assert done["value"]["token"] == "cli"


@pytest.mark.slow
def test_module_entry_point(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.exec", "run", "chaos", "--seeds", "1",
         "--cache-dir", str(tmp_path / "cache"),
         "--json", str(tmp_path / "sweep.json")],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stderr
    assert "results digest:" in proc.stdout
