"""The ml suite: spec shape, entrypoint contracts, CLI, and caching."""

import json

import pytest

from repro.errors import DCudaUsageError
from repro.exec.__main__ import main
from repro.exec.points import collective_point, gemm_point, train_point
from repro.exec.suites import build_suite

TINY = dict(kind="flat", num_nodes=2, gpus_per_node=1)


class TestBuildSuite:
    def test_default_shape(self):
        suite = build_suite("ml")
        # 1 backend x 2 kinds x (3 collectives + 3 gemm modes + 2 train).
        assert len(suite.specs) == 16
        labels = [s.label for s in suite.specs]
        assert "ml-coll:proxy:flat:ring" in labels
        assert "ml-coll:proxy:fat_tree:hierarchical" in labels
        assert "ml-gemm:proxy:flat:stream" in labels
        assert "ml-train:proxy:fat_tree:65536" in labels

    def test_backend_axis_multiplies_the_suite(self):
        suite = build_suite("ml", backends=("proxy", "device", "stream"))
        assert len(suite.specs) == 48
        for backend in ("proxy", "device", "stream"):
            assert f"ml-train:{backend}:flat:64" in [s.label
                                                     for s in suite.specs]

    def test_kind_subset(self):
        suite = build_suite("ml", topology=("fat_tree",))
        assert len(suite.specs) == 8
        assert all(s.params["kind"] == "fat_tree" for s in suite.specs)

    def test_unknown_kind_rejected(self):
        # The ml story needs flat vs fat_tree; ring is a topo-suite kind.
        with pytest.raises(DCudaUsageError, match="ml topology kind"):
            build_suite("ml", topology=("ring",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(DCudaUsageError, match="comm backend"):
            build_suite("ml", backends=("pigeon",))


class TestEntrypoints:
    @pytest.mark.parametrize("op", ("allreduce", "reduce_scatter",
                                    "all_gather"))
    def test_collective_point_verifies_in_process(self, op):
        result = collective_point(
            dict(TINY, op=op, algorithm="ring", elems=10), {})
        assert result["ok"] and result["elapsed"] > 0
        assert result["algorithm"] == "ring"

    def test_collective_point_rejects_unknown_op(self):
        with pytest.raises(DCudaUsageError, match="collective op"):
            collective_point(dict(TINY, op="scan", elems=4), {})

    def test_gemm_point_bit_identity_in_both_mode(self):
        result = gemm_point(
            dict(kind="fat_tree", num_nodes=2, gpus_per_node=2,
                 mode="both", m=24, k=6, batch=8, tiles=4), {})
        assert result["ok"]
        assert result["elapsed"] > 0 and result["gather"] > 0

    def test_gemm_point_stream_mode_skips_verification(self):
        result = gemm_point(dict(TINY, mode="stream", m=8, k=6,
                                 batch=8, tiles=4), {})
        assert result["ok"] and result["gather"] == 0.0

    def test_train_point_autotunes_and_verifies(self):
        result = train_point(
            dict(kind="fat_tree", num_nodes=2, gpus_per_node=2,
                 features=64, steps=2, algorithm="auto"), {})
        assert result["ok"]
        # On 2 nodes hierarchical pays fewer inter-node latency terms
        # than tree (2 vs 4), so it wins even for a small gradient.
        assert result["algorithm"] == "hierarchical"
        assert result["predicted"] > 0

    def test_train_point_pinned_algorithm_has_no_prediction(self):
        result = train_point(dict(TINY, features=16, steps=1,
                                  algorithm="ring"), {})
        assert result["ok"] and result["algorithm"] == "ring"
        assert result["predicted"] is None

    def test_ml_cluster_rejects_unknown_kind(self):
        with pytest.raises(DCudaUsageError, match="ml-suite topology"):
            collective_point(dict(kind="ring", elems=4), {})


def test_cli_runs_tiny_ml_suite(tmp_path, capsys):
    rc = main(["run", "ml", "--topology", "flat", "--topo-nodes", "2",
               "--topo-gpus", "1",
               "--cache-dir", str(tmp_path / "cache"),
               "--json", str(tmp_path / "sweep.json")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ML collectives" in out
    assert "Pipelined GEMM" in out
    assert "Autotuned data-parallel SGD" in out
    assert "NO" not in out  # every exactness/verification cell passed
    record = json.loads((tmp_path / "sweep.json").read_text())
    assert record["suite"] == "ml" and record["tasks"] == 8


def test_ml_results_are_cacheable(tmp_path, capsys):
    args = ["run", "ml", "--topology", "flat", "--topo-nodes", "2",
            "--topo-gpus", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--json", str(tmp_path / "sweep.json")]
    assert main(args) == 0
    cold = json.loads((tmp_path / "sweep.json").read_text())
    assert main(args + ["--require-cached"]) == 0
    warm = json.loads((tmp_path / "sweep.json").read_text())
    assert warm["results_digest"] == cold["results_digest"]
    assert warm["cache_hits"] == warm["tasks"]
