"""Sharded-store regression tests: layout, migration, corruption.

The non-negotiable property under test: a damaged or legacy cache can
cost *time* (a miss and a re-run) but never *correctness* (a wrong or
stale result served as a hit) — including every step of the
unsharded-to-sharded migration path.
"""

import json

import pytest

from repro.errors import DCudaUsageError
from repro.exec import ResultCache, RunSpec, run_specs
from repro.exec.cache import DEFAULT_SHARDS

FP = "a" * 64


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", fingerprint=FP, shards=8)


def _legacy_put(cache, key, result):
    """Write an entry the way the pre-sharding store did: flat in the
    generation directory, same self-verifying format."""
    sharded = ResultCache(cache.root, fingerprint=cache.fingerprint,
                          shards=cache.shard_count())
    sharded.put(key, result)
    entry = sharded._entry_path(key)
    legacy = cache._generation_dir() / entry.name
    entry.rename(legacy)
    # Drop the meta.json the helper created: a legacy cache has none.
    meta = cache._generation_dir() / "meta.json"
    if meta.exists():
        meta.unlink()
    return legacy


class TestShardedLayout:
    def test_entries_land_in_shard_dirs(self, cache):
        for i in range(16):
            cache.put(f"{i:02x}{'0' * 62}", i)
        gen = cache._generation_dir()
        flat = [p for p in gen.glob("*.pkl")]
        assert not flat  # nothing outside shards
        shard_dirs = sorted(p.name for p in gen.iterdir()
                            if p.is_dir())
        assert all(name.startswith("shard-") for name in shard_dirs)
        assert len(shard_dirs) > 1  # keys actually spread out

    def test_meta_json_records_shard_count(self, cache):
        cache.put("k" * 64, 1)
        meta = json.loads(
            (cache._generation_dir() / "meta.json").read_text())
        assert meta["shards"] == 8

    def test_disk_shard_count_wins_over_constructor(self, cache):
        cache.put("deadbeef" + "0" * 56, "v")
        # Reopen with a *different* configured width: reads must agree
        # with the width recorded on disk, not the new default.
        reopened = ResultCache(cache.root, fingerprint=FP, shards=64)
        assert reopened.shard_count() == 8
        hit, value = reopened.get("deadbeef" + "0" * 56)
        assert hit and value == "v"

    def test_default_shard_count(self, tmp_path):
        cache = ResultCache(tmp_path / "c", fingerprint=FP)
        cache.put("aa" + "0" * 62, 1)
        assert cache.shard_count() == DEFAULT_SHARDS

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(DCudaUsageError, match="shard count"):
            ResultCache(tmp_path / "c", fingerprint=FP, shards=0)

    def test_same_key_same_shard_across_instances(self, cache):
        key = "0123456789abcdef" * 4
        a = cache._entry_path(key)
        b = ResultCache(cache.root, fingerprint=FP,
                        shards=8)._entry_path(key)
        assert a == b


class TestCorruptShardEntry:
    def test_corrupt_entry_is_miss_and_rerun_never_wrong(self, cache):
        spec = RunSpec("selftest_point", {"token": "gold"})
        first = run_specs([spec], cache=cache)
        assert first.executed == 1
        # Flip bytes in the (sharded) entry.
        (entry,) = cache.root.rglob("*.pkl")
        entry.write_bytes(b"repro-cache-v1\nforged-digest\njunk")
        again = run_specs([spec], cache=cache)
        assert again.executed == 1 and again.cache_hits == 0
        assert again.results == first.results  # re-ran, same answer
        warm = run_specs([spec], cache=cache)  # repaired on the re-run
        assert warm.cache_hits == 1

    def test_truncated_shard_entry_deleted(self, cache):
        cache.put("ab" + "0" * 62, [1, 2])
        (entry,) = cache.root.rglob("*.pkl")
        entry.write_bytes(entry.read_bytes()[:10])
        hit, _ = cache.get("ab" + "0" * 62)
        assert not hit and not entry.exists()


class TestLegacyMigration:
    def test_legacy_entry_hits_and_migrates_on_read(self, cache):
        key = "cd" + "1" * 62
        legacy = _legacy_put(cache, key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        # The read moved the entry home: legacy gone, shard populated.
        assert not legacy.exists()
        assert cache._entry_path(key).exists()
        hit, value = cache.get(key)  # …and it keeps hitting
        assert hit and value == {"answer": 42}

    def test_corrupt_legacy_entry_is_miss_and_deleted(self, cache):
        key = "ef" + "2" * 62
        legacy = _legacy_put(cache, key, "good")
        legacy.write_bytes(b"rotten")
        hit, _ = cache.get(key)
        assert not hit and not legacy.exists()
        assert not cache._entry_path(key).exists()  # no forged promotion

    def test_bulk_migrate_moves_good_drops_bad(self, cache):
        keys = [f"{i:02x}{'3' * 62}" for i in range(6)]
        for i, key in enumerate(keys):
            _legacy_put(cache, key, i)
        bad = _legacy_put(cache, "ff" + "4" * 62, "doomed")
        bad.write_bytes(b"bit rot")
        migrated, dropped = cache.migrate()
        assert migrated == 6 and dropped == 1
        for i, key in enumerate(keys):
            hit, value = cache.get(key)
            assert hit and value == i
        assert cache.stats().legacy_entries == 0

    def test_legacy_cache_end_to_end_through_run_specs(self, cache):
        """A sweep against a pre-sharding cache keeps its hits."""
        spec = RunSpec("selftest_point", {"token": "old-world"})
        shared_digest = ""
        key = cache.key_for(spec, shared_digest)
        result = {"token": "old-world", "payload": [], "mode": "echo"}
        _legacy_put(cache, key, result)
        report = run_specs([spec], cache=cache)
        assert report.cache_hits == 1 and report.executed == 0
        assert report.results == [result]

    def test_migrate_missing_generation_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "never", fingerprint=FP)
        assert cache.migrate() == (0, 0)


class TestShardStats:
    def test_breakdown_covers_all_entries(self, cache):
        for i in range(12):
            cache.put(f"{i:02x}{'5' * 62}", i)
        stats = cache.stats()
        assert stats.entries == 12 and stats.shards == 8
        assert sum(s.entries for s in stats.shard_breakdown) == 12
        assert sum(s.bytes for s in stats.shard_breakdown) == stats.bytes
        assert all(s.name.startswith("shard-")
                   for s in stats.shard_breakdown)

    def test_legacy_entries_counted_separately(self, cache):
        cache.put("aa" + "6" * 62, 1)
        _legacy_put(cache, "bb" + "6" * 62, 2)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.legacy_entries == 1

    def test_gc_reclaims_sharded_stale_generations(self, tmp_path):
        stale = ResultCache(tmp_path / "c", fingerprint="b" * 64,
                            shards=4)
        for i in range(4):
            stale.put(f"{i:02x}{'7' * 62}", i)
        live = ResultCache(tmp_path / "c", fingerprint=FP, shards=4)
        live.put("aa" + "8" * 62, "keep")
        removed, freed = live.gc()
        assert removed == 4 and freed > 0
        assert live.stats().stale_entries == 0
        hit, _ = live.get("aa" + "8" * 62)
        assert hit

    def test_clear_reclaims_everything_including_legacy(self, cache):
        cache.put("aa" + "9" * 62, 1)
        _legacy_put(cache, "bb" + "9" * 62, 2)
        removed, _ = cache.clear()
        assert removed == 2
        assert cache.stats().entries == 0
