"""Unit tests for the data-parallel collective algorithms.

The differential matrix (``tests/comm/test_collectives_differential.py``)
covers the (algorithm, backend, topology) cross product; these tests pin
the per-function contracts — partitioning helpers, subset groups,
window offsets, tag-range isolation, custom reduction ops, and the
typed error surface.
"""

import numpy as np
import pytest

from repro.dcuda import DCudaError, launch
from repro.dcuda.collectives import (
    ALGORITHMS,
    CollectiveAutotuner,
    all_gather,
    allreduce,
    chunk_bounds,
    node_groups,
    placement_ring_order,
    reduce_scatter,
    scratch_elems,
)
from repro.hw import Cluster, greina
from repro.platform import fat_tree, flat


# ----------------------------------------------------------- partitioning --
def test_chunk_bounds_partition_exactly():
    for n in (0, 1, 7, 13, 16):
        for p in (1, 3, 4, 5):
            spans = [chunk_bounds(n, p, i) for i in range(p)]
            assert spans[0][0] == 0 and spans[-1][1] == n
            for (alo, ahi), (blo, bhi) in zip(spans, spans[1:]):
                assert ahi == blo and ahi >= alo and bhi >= blo
            sizes = [hi - lo for lo, hi in spans]
            assert max(sizes) - min(sizes) <= 1


def test_chunk_bounds_rejects_bad_partition():
    with pytest.raises(DCudaError):
        chunk_bounds(8, 4, 4)
    with pytest.raises(DCudaError):
        chunk_bounds(8, 0, 0)


def test_scratch_elems_covers_every_family():
    # Must cover tree levels * n, ring per-step slots, and both stacked
    # (the hierarchical composition); spot-check the documented floor.
    assert scratch_elems(4, 8) >= 2 * 8 + 3 * 2  # levels*n + (p-1)*chunk
    assert scratch_elems(1, 0) >= 1
    with pytest.raises(DCudaError):
        scratch_elems(0, 4)
    with pytest.raises(DCudaError):
        scratch_elems(4, -1)


def _placement(topo):
    return Cluster(greina(topology=topo)).platform.place(1)


def test_placement_ring_order_walks_device_by_device():
    placement = _placement(fat_tree(num_nodes=2, gpus_per_node=2))
    order = placement_ring_order(placement, [3, 1, 2, 0])
    devices = [placement.device_of(r) for r in order]
    assert sorted(order) == [0, 1, 2, 3]
    assert devices == sorted(devices)


def test_node_groups_partitions_with_leaders():
    placement = _placement(fat_tree(num_nodes=2, gpus_per_node=2))
    groups = node_groups(placement, [0, 1, 2, 3])
    assert [node for node, _ in groups] == sorted(
        {placement.node_of(r) for r in range(4)})
    members = [m for _, ms in groups for m in ms]
    assert sorted(members) == [0, 1, 2, 3]
    for node, ms in groups:
        assert all(placement.node_of(m) == node for m in ms)


# ------------------------------------------------------------- semantics --
def _launch_collective(topo, kernel, rpd=1):
    launch(Cluster(greina(topology=topo)), kernel, ranks_per_device=rpd)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_allreduce_over_subset_group(algorithm):
    """Ranks outside the group sit the collective out entirely."""
    topo = fat_tree(num_nodes=2, gpus_per_node=2)
    group = [1, 2, 3]
    n = 5
    bufs = {r: np.arange(n, dtype=float) * (r + 1) for r in range(4)}
    expected = sum(np.arange(n, dtype=float) * (r + 1) for r in group)

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(bufs[r])
        swin = yield from rank.win_create(
            np.zeros(scratch_elems(len(group), n)))
        yield from rank.barrier()
        if r in group:
            yield from allreduce(rank, win, swin, group, bufs[r],
                                 algorithm=algorithm)
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    _launch_collective(topo, kernel)
    for r in group:
        np.testing.assert_array_equal(bufs[r], expected)
    np.testing.assert_array_equal(bufs[0], np.arange(n, dtype=float))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_allreduce_at_window_offset(algorithm):
    """The collective touches only the region at *offset*."""
    topo = flat(num_nodes=4, gpus_per_node=1)
    off, n = 3, 6
    arrays = {r: np.full(off + n, -1.0) for r in range(4)}
    for r in range(4):
        arrays[r][off:] = np.arange(n, dtype=float) + r

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(arrays[r])
        swin = yield from rank.win_create(np.zeros(scratch_elems(4, n)))
        yield from rank.barrier()
        yield from allreduce(rank, win, swin, list(range(4)),
                             arrays[r][off:], algorithm=algorithm,
                             offset=off)
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    _launch_collective(topo, kernel)
    expected = 4 * np.arange(n, dtype=float) + 6.0
    for r in range(4):
        np.testing.assert_array_equal(arrays[r][:off], -np.ones(off))
        np.testing.assert_array_equal(arrays[r][off:], expected)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_back_to_back_collectives_tag_isolation(algorithm):
    """tag_base striding keeps consecutive collectives from
    cross-matching notifications (the per-step training pattern)."""
    topo = fat_tree(num_nodes=2, gpus_per_node=2)
    steps = 3
    n = 4
    bufs = {r: np.ones(n) * (r + 1) for r in range(4)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(bufs[r])
        swin = yield from rank.win_create(np.zeros(scratch_elems(4, n)))
        yield from rank.barrier()
        for step in range(steps):
            yield from allreduce(rank, win, swin, list(range(4)),
                                 bufs[r], algorithm=algorithm,
                                 tag_base=step * 1000)
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    _launch_collective(topo, kernel)
    # (((1+2+3+4) summed) summed) summed = 10 * 4 * 4 = 160 each.
    for r in range(4):
        np.testing.assert_array_equal(bufs[r], np.full(n, 160.0))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_allreduce_custom_op_maximum(algorithm):
    topo = fat_tree(num_nodes=2, gpus_per_node=2)
    n = 6
    bufs = {r: np.arange(n, dtype=float) * ((-1.0) ** r) * (r + 1)
            for r in range(4)}
    expected = np.maximum.reduce([bufs[r].copy() for r in range(4)])

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(bufs[r])
        swin = yield from rank.win_create(np.zeros(scratch_elems(4, n)))
        yield from rank.barrier()
        yield from allreduce(rank, win, swin, list(range(4)), bufs[r],
                             op=np.maximum, algorithm=algorithm)
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    _launch_collective(topo, kernel)
    for r in range(4):
        np.testing.assert_array_equal(bufs[r], expected)


def test_singleton_group_is_noop():
    buf = np.arange(4, dtype=float)

    def kernel(rank):
        win = yield from rank.win_create(buf)
        swin = yield from rank.win_create(np.zeros(scratch_elems(1, 4)))
        ran = yield from allreduce(rank, win, swin, [0], buf,
                                   algorithm="tree")
        assert ran == "tree"
        lo, hi = yield from reduce_scatter(rank, win, swin, [0], buf)
        assert (lo, hi) == (0, 4)
        yield from all_gather(rank, win, swin, [0], buf)
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=1)
    np.testing.assert_array_equal(buf, np.arange(4, dtype=float))


def test_auto_resolves_through_pinned_tuner():
    """algorithm='auto' + an override-pinned tuner runs that family on
    every rank — the in-kernel escape hatch."""
    topo = flat(num_nodes=2, gpus_per_node=1)
    tuner = CollectiveAutotuner(override="tree")
    n = 4
    bufs = {r: np.full(n, float(r + 1)) for r in range(2)}
    ran = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(bufs[r])
        swin = yield from rank.win_create(np.zeros(scratch_elems(2, n)))
        yield from rank.barrier()
        ran[r] = yield from allreduce(rank, win, swin, [0, 1], bufs[r],
                                      algorithm="auto", tuner=tuner)
        yield from rank.flush()
        yield from rank.barrier()
        yield from rank.finish()

    _launch_collective(topo, kernel)
    assert ran == {0: "tree", 1: "tree"}
    for r in range(2):
        np.testing.assert_array_equal(bufs[r], np.full(n, 3.0))


# ---------------------------------------------------------------- errors --
def test_unknown_algorithm_raises():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        swin = yield from rank.win_create(np.zeros(scratch_elems(2, 4)))
        yield from allreduce(rank, win, swin, [0, 1], np.zeros(4),
                             algorithm="butterfly")
        yield from rank.finish()

    with pytest.raises(DCudaError, match="unknown collective algorithm"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=2)


def test_non_member_caller_raises():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        swin = yield from rank.win_create(np.zeros(scratch_elems(2, 4)))
        yield from allreduce(rank, win, swin, [5, 6], np.zeros(4))
        yield from rank.finish()

    with pytest.raises(DCudaError, match="not in collective group"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_undersized_scratch_raises(algorithm):
    topo = fat_tree(num_nodes=2, gpus_per_node=2)

    def kernel(rank):
        win = yield from rank.win_create(np.zeros(16))
        swin = yield from rank.win_create(np.zeros(2))
        yield from rank.barrier()
        yield from allreduce(rank, win, swin, list(range(4)),
                             np.zeros(16), algorithm=algorithm)
        yield from rank.finish()

    with pytest.raises(DCudaError, match="scratch"):
        _launch_collective(topo, kernel)
