"""Unit tests for the collective algorithm autotuner.

Pins the acceptance contract of the cost model: tree for small
messages, ring for large messages on flat fabrics, hierarchical for
large messages on dense multi-node machines — plus the congestion
factor's measured/declared fallback chain, calibration from machine
configs, overrides, and the typed error surface.
"""

import math

import numpy as np
import pytest

from repro.dcuda import DCudaError, launch
from repro.dcuda.collectives import (
    CollectiveAutotuner,
    LinkProfile,
    congestion_factor,
)
from repro.hw import Cluster, greina
from repro.platform import fat_tree, flat
from repro.platform.topology import LinkSpec

NVLINK = LinkSpec(bandwidth=50e9, latency=0.25e-6)

SMALL = 512          # latency-dominated message [bytes]
LARGE = 512 * 1024   # bandwidth-dominated message [bytes]


def _choice(topo, message_bytes, override=None, link_stats=None):
    cluster = Cluster(greina(topology=topo))
    tuner = CollectiveAutotuner.from_config(cluster.cfg, link_stats,
                                            override=override)
    placement = cluster.platform.place(1)
    group = list(range(placement.total_ranks))
    return tuner.choose("allreduce", placement, group, message_bytes)


# -------------------------------------------------------------- decisions --
def test_small_messages_pick_tree_everywhere():
    for topo in (flat(num_nodes=8, gpus_per_node=1),
                 fat_tree(num_nodes=4, gpus_per_node=2,
                          intra_link=NVLINK)):
        choice = _choice(topo, SMALL)
        assert choice.algorithm == "tree", choice.costs


def test_large_messages_pick_ring_on_flat():
    choice = _choice(flat(num_nodes=8, gpus_per_node=1), LARGE)
    assert choice.algorithm == "ring", choice.costs
    # No two-level structure: hierarchical must not even be a candidate.
    assert choice.costs["hierarchical"] == math.inf


def test_large_messages_pick_hierarchical_on_fat_tree():
    choice = _choice(fat_tree(num_nodes=4, gpus_per_node=2,
                              intra_link=NVLINK), LARGE)
    assert choice.algorithm == "hierarchical", choice.costs
    assert choice.nodes == 4 and choice.group_size == 8


def test_choice_records_full_cost_breakdown():
    choice = _choice(flat(num_nodes=4, gpus_per_node=1), LARGE)
    assert set(choice.costs) == {"ring", "tree", "hierarchical"}
    assert all(c > 0 for c in choice.costs.values())
    assert choice.costs[choice.algorithm] == min(choice.costs.values())
    assert not choice.pinned


def test_override_pins_regardless_of_cost():
    choice = _choice(flat(num_nodes=8, gpus_per_node=1), LARGE,
                     override="tree")
    assert choice.algorithm == "tree" and choice.pinned
    assert choice.costs["ring"] < choice.costs["tree"]  # model disagreed


def test_unknown_override_raises():
    with pytest.raises(DCudaError, match="unknown autotuner override"):
        CollectiveAutotuner(override="butterfly")


def test_single_node_group_uses_intra_terms():
    """A one-node group never touches the fabric: costs scale with the
    intra-node parameters, and hierarchical is not applicable."""
    profile = LinkProfile(alpha_inter=1e-3, beta_inter=1e-3,
                          alpha_intra=1e-7, beta_intra=1e-10)
    tuner = CollectiveAutotuner(profile)
    costs = tuner.costs(4096, group_size=4, nodes=1, ranks_per_node=4)
    assert costs["hierarchical"] == math.inf
    # With inter terms a million times worse, sub-ms costs prove the
    # intra path was charged.
    assert max(costs["ring"], costs["tree"]) < 1e-3


def test_costs_validate_group_shape():
    tuner = CollectiveAutotuner()
    with pytest.raises(DCudaError, match="invalid group shape"):
        tuner.costs(1024, group_size=0, nodes=1, ranks_per_node=1)
    with pytest.raises(DCudaError, match="invalid group shape"):
        tuner.costs(-1, group_size=2, nodes=2, ranks_per_node=1)


def test_choose_rejects_empty_group():
    cluster = Cluster(greina(topology=flat(num_nodes=2,
                                           gpus_per_node=1)))
    tuner = CollectiveAutotuner.from_config(cluster.cfg)
    with pytest.raises(DCudaError, match="empty collective group"):
        tuner.choose("allreduce", cluster.platform.place(1), [], 1024)


# ------------------------------------------------------------- congestion --
def test_congestion_factor_from_synthetic_link_stats():
    # Hottest edge carries 4x the mean of (4k, 1k, 1k) = 2k -> 2.0.
    stats = {"e0": {"bytes": 4000.0}, "e1": {"bytes": 1000.0},
             "e2": {"bytes": 1000.0}}
    assert congestion_factor(stats) == pytest.approx(2.0)


def test_congestion_factor_even_traffic_is_one():
    stats = {"e0": {"bytes": 7.0}, "e1": {"bytes": 7.0}}
    assert congestion_factor(stats) == 1.0


def test_congestion_factor_static_fallback():
    assert congestion_factor({}) == 1.0
    ft = fat_tree(num_nodes=4, gpus_per_node=2, oversubscription=3.0)
    assert congestion_factor({}, ft) == 3.0
    assert congestion_factor({}, flat(num_nodes=4)) == 1.0
    # All-zero stats are "no traffic yet", not "perfectly even".
    assert congestion_factor({"e0": {"bytes": 0.0}}, ft) == 3.0


def test_measured_congestion_moves_the_crossover():
    """Congestion scales every bandwidth term, so it advantages the
    algorithm moving fewer bytes: a hot fabric pulls the tree-to-ring
    crossover down below message sizes where the idle model still
    prefers tree."""
    topo = flat(num_nodes=8, gpus_per_node=1)
    mid = 32 * 1024  # idle crossover on the Greina preset is ~58 KiB
    assert _choice(topo, mid).algorithm == "tree"
    hot = {"e0": {"bytes": 50e6}, "e1": {"bytes": 0.5e6},
           "e2": {"bytes": 0.5e6}}
    assert congestion_factor(hot) > 2.5
    assert _choice(topo, mid, link_stats=hot).algorithm == "ring"


# ------------------------------------------------------------ calibration --
def test_profile_calibration_from_config():
    link = LinkSpec(bandwidth=10e9, latency=0.9e-6)
    topo = fat_tree(num_nodes=4, gpus_per_node=2, intra_link=NVLINK,
                    oversubscription=2.0, link=link)
    cfg = greina(topology=topo)
    profile = LinkProfile.from_config(cfg)
    assert profile.alpha_inter == pytest.approx(
        link.latency + cfg.fabric.injection_overhead)
    assert profile.beta_inter == pytest.approx(1.0 / link.bandwidth)
    assert profile.alpha_intra == pytest.approx(NVLINK.latency)
    assert profile.beta_intra == pytest.approx(1.0 / NVLINK.bandwidth)
    assert profile.congestion == pytest.approx(2.0)  # declared fallback
    assert profile.overhead == pytest.approx(
        cfg.host.poll_latency + cfg.devicelib.command_assembly
        + cfg.fabric.injection_overhead)


def test_sparse_nodes_calibrate_intra_from_gpu_copy_path():
    cfg = greina(topology=flat(num_nodes=4, gpus_per_node=1))
    profile = LinkProfile.from_config(cfg)
    assert profile.alpha_intra == pytest.approx(cfg.gpu.mem_latency)
    assert profile.beta_intra == pytest.approx(
        1.0 / cfg.gpu.block_mem_bandwidth)


def test_from_runtime_uses_measured_link_stats():
    """After real traffic crosses a fat tree, from_runtime's congestion
    comes from the fabric's own edge counters — and every rank computes
    the same decision, the agreement collective correctness needs."""
    topo = fat_tree(num_nodes=2, gpus_per_node=1)
    cluster = Cluster(greina(topology=topo))
    bufs = {r: np.zeros(64) for r in range(2)}
    decisions = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(bufs[r])
        yield from rank.barrier()
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(64), tag=1)
        else:
            yield from rank.wait_notifications(win, source=0, tag=1,
                                               count=1)
        yield from rank.flush()
        # Decide at a synchronization point: mid-flight snapshots could
        # differ between ranks, and a split decision deadlocks.
        yield from rank.barrier()
        tuner = CollectiveAutotuner.from_runtime(rank.runtime)
        decisions[r] = tuner.choose(
            "allreduce", rank.runtime.placement, [0, 1], LARGE)
        yield from rank.barrier()
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=1)
    # Rank-local snapshots can differ by in-flight bytes (costs move in
    # the third decimal), but the decision itself must agree.
    assert decisions[0].algorithm == decisions[1].algorithm
    assert decisions[0].costs["hierarchical"] == math.inf  # m == 1
    # The host-side pattern (apps.train_step.autotune_step): one
    # decision from the post-run fabric counters, shipped to all ranks.
    stats = cluster.fabric.link_stats()
    assert stats, "expected measured edge traffic"
    assert sum(e["bytes"] for e in stats.values()) > 0
    tuner = CollectiveAutotuner.from_config(cluster.cfg, stats)
    assert tuner.profile.congestion == pytest.approx(
        congestion_factor(stats))
