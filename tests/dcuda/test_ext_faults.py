"""§V extensions under fault injection: one schedule interaction each.

The fault plane threads through every layer the extensions touch, so each
extension gets a direct test against a targeted schedule: the nonblocking
barrier under a block stall, notify-all under queue duplication, 2-D puts
under link degradation, and host ranks under notification-queue drops.
"""

import numpy as np

from repro.dcuda import DRank, launch
from repro.dcuda.ext import (
    HostRank,
    get_2d,
    ibarrier,
    put_notify_2d,
    put_notify_all,
    wait_collective,
)
from repro.faults import FaultEvent, FaultsConfig
from repro.hw import Cluster, greina
from repro.runtime import DCudaRuntime


def faulty(*events, **cfg_kw):
    return FaultsConfig(enabled=True, events=tuple(events), **cfg_kw)


# ---------------------------------------------------- ibarrier + stall ------
def test_ibarrier_completes_under_block_stall():
    done = {}

    def kernel(rank):
        yield from ibarrier(rank, tag=5)
        yield from rank.compute(flops=1e4)
        yield from wait_collective(rank, tag=5)
        done[rank.world_rank] = rank.now
        yield from rank.finish()

    cfg = faulty(FaultEvent("block_stall", start=0.0, duration=1.0,
                            target="node0.gpu.b0", factor=10.0))
    cluster = Cluster(greina(1, faults=cfg))
    launch(cluster, kernel, ranks_per_device=2)
    assert set(done) == {0, 1}
    assert cluster.faults.total_injections() > 0
    # The stalled rank computes 10x longer, so it consumes its completion
    # notification no earlier than the clean rank.
    assert done[0] >= done[1]


# ------------------------------------------------- notify-all + queue dup ---
def test_put_notify_all_survives_duplicated_notifications():
    shared = np.zeros(8)
    got = []

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(shared)
        if r == 0:
            yield from put_notify_all(rank, win, [1, 2, 3], 0,
                                      np.full(4, 7.0), tag=2)
        else:
            # Exactly one notification each — duplicates must have been
            # discarded by the sequence-validity check, or the *second*
            # wait below would consume a phantom.
            yield from rank.wait_notifications(win, source=0, tag=2,
                                               count=1)
            extra = yield from rank.test_notifications(win, source=0, tag=2)
            got.append((r, shared[0], extra))
        yield from rank.finish()

    cfg = faulty(FaultEvent("queue_dup", start=0.0, duration=1.0,
                            target="ntf:", count=4))
    cluster = Cluster(greina(1, faults=cfg))
    launch(cluster, kernel, ranks_per_device=4)
    assert sorted(r for r, _, _ in got) == [1, 2, 3]
    assert all(v == 7.0 for _, v, _ in got)
    assert all(extra == 0 for _, _, extra in got), \
        "a duplicated notification leaked through the stale-seq filter"
    assert cluster.faults.injections.get(("queue_dup", "ntf:r1"), 0) \
        + cluster.faults.injections.get(("queue_dup", "ntf:r2"), 0) \
        + cluster.faults.injections.get(("queue_dup", "ntf:r3"), 0) > 0


# ------------------------------------------------------ 2-D + degrade -------
def test_put_get_2d_exact_under_link_degradation():
    stride = 8
    buffers = {r: np.zeros(4 * stride) for r in range(2)}
    rect = np.arange(12, dtype=np.float64).reshape(3, 4)
    out = np.zeros((2, 4))

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from put_notify_2d(rank, win, 1, target_offset=2,
                                     target_stride=stride, src=rect, tag=9)
            yield from get_2d(rank, win, 1, target_offset=2,
                              target_stride=stride, dst=out, tag=3)
            yield from rank.wait_notifications(win, source=1, tag=3,
                                               count=1)
        else:
            yield from rank.wait_notifications(win, source=0, tag=9,
                                               count=1)
        yield from rank.barrier()
        yield from rank.finish()

    cfg = faulty(FaultEvent("link_degrade", start=0.0, duration=1.0,
                            factor=5.0))
    cluster = Cluster(greina(2, faults=cfg))
    launch(cluster, kernel, ranks_per_device=1)
    np.testing.assert_array_equal(
        buffers[1].reshape(4, stride)[:3, 2:6], rect)
    np.testing.assert_array_equal(out, rect[:2])
    assert any(k == "link_degrade" for k, _ in cluster.faults.injections)


# --------------------------------------------------- host rank + drop -------
def test_host_rank_put_recovers_from_notification_drop():
    cfg = faulty(FaultEvent("queue_drop", start=0.0, duration=1.0,
                            target="ntf:r0", count=1))
    cluster = Cluster(greina(1, faults=cfg))
    runtime = DCudaRuntime(cluster, ranks_per_device=1)
    runtime.start()
    host = HostRank(runtime, 0)
    buf = np.zeros(8)
    state = {}

    def kernel(rank):
        win = yield from rank.win_create(buf)
        state["win"] = win
        yield from rank.wait_notifications(win, source=host.rank_id,
                                           tag=4, count=1)
        yield from rank.finish()

    def host_proc(env):
        while "win" not in state:
            yield env.timeout(1e-6)
        yield from host.put_notify(state["win"], 0, 2,
                                   np.array([9.0, 9.5]), tag=4)

    cluster.env.process(kernel(DRank(runtime, 0)))
    cluster.env.process(host_proc(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(buf[2:4], [9.0, 9.5])
    # The notification really was dropped once and redelivered.
    ntf = runtime.state_of(0).notif_queue
    assert ntf.stats.dropped_writes == 1
    assert ntf.stats.recovered == 1
