"""Tests for the §V extensions: nonblocking collectives, 2-D puts,
notify-all shared-memory puts, and host ranks."""

import numpy as np
import pytest

from repro.dcuda import DCudaError, launch
from repro.dcuda.ext import (
    HostRank,
    get_2d,
    ibarrier,
    notify_host,
    put_notify_2d,
    put_notify_all,
    wait_collective,
)
from repro.hw import Cluster, greina


# ------------------------------------------------------- nonblocking barrier --
def test_ibarrier_synchronizes_eventually():
    enter = {}
    done = {}

    def kernel(rank):
        r = rank.world_rank
        yield rank.env.timeout(r * 1e-4)
        enter[r] = rank.now
        yield from ibarrier(rank, tag=5)
        yield from wait_collective(rank, tag=5)
        done[r] = rank.now
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=2)
    assert all(t >= max(enter.values()) for t in done.values())


def test_ibarrier_overlaps_computation():
    """Work issued between ibarrier and wait must run before the barrier
    completes for a late rank — the whole point of the extension."""
    progress = {}

    def kernel(rank):
        r = rank.world_rank
        if r == 1:
            yield rank.env.timeout(5e-4)  # late arrival
        yield from ibarrier(rank, tag=1)
        # Overlapped work between start and completion:
        yield from rank.compute(flops=1e4)
        progress[r] = rank.now
        yield from wait_collective(rank, tag=1)
        if r == 0:
            # rank 0's compute finished long before the late rank arrived
            assert progress[0] < 4e-4
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=2)


# ------------------------------------------------------------------- 2-D put --
def test_put_notify_2d_writes_rectangle():
    stride = 8
    buffers = {r: np.zeros(4 * stride) for r in range(2)}
    rect = np.arange(12, dtype=np.float64).reshape(3, 4)

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from put_notify_2d(rank, win, 1, target_offset=2,
                                     target_stride=stride, src=rect, tag=9)
        else:
            # A single notification for the whole rectangle.
            yield from rank.wait_notifications(win, source=0, tag=9,
                                               count=1)
            got = buffers[1].reshape(4, stride)[:3, 2:6]
            np.testing.assert_array_equal(got, rect)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    np.testing.assert_array_equal(
        buffers[1].reshape(4, stride)[:3, 2:6], rect)


def test_get_2d_reads_rectangle():
    stride = 6
    target = np.arange(3 * stride, dtype=np.float64)
    buffers = {0: np.zeros(4), 1: target}
    out = np.zeros((3, 4))

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from get_2d(rank, win, 1, target_offset=1,
                              target_stride=stride, dst=out, tag=3)
            yield from rank.wait_notifications(win, source=1, tag=3,
                                               count=1)
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    expected = target.reshape(3, stride)[:, 1:5]
    np.testing.assert_array_equal(out, expected)


def test_put_2d_validation():
    buffers = {r: np.zeros(16) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from put_notify_2d(rank, win, 1, 0, target_stride=2,
                                     src=np.zeros((2, 4)))  # stride < cols
        yield from rank.finish()

    with pytest.raises(ValueError, match="stride"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


# ------------------------------------------------------------- notify-all --
def test_put_notify_all_single_transfer():
    shared = np.zeros(8)
    got = []

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(shared)  # overlapping windows
        if r == 0:
            yield from put_notify_all(rank, win, [1, 2, 3], 0,
                                      np.full(4, 7.0), tag=2)
        else:
            yield from rank.wait_notifications(win, source=0, tag=2,
                                               count=1)
            got.append((r, shared[0]))
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=4)
    assert sorted(r for r, _ in got) == [1, 2, 3]
    assert all(v == 7.0 for _, v in got)


def test_put_notify_all_rejects_cross_device_targets():
    buffers = {r: np.zeros(4) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from put_notify_all(rank, win, [1], 0, np.ones(1))
        yield from rank.finish()

    with pytest.raises(DCudaError, match="shared-memory"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


# ------------------------------------------------------------- host ranks --
def test_host_rank_put_into_device_window():
    from repro.runtime import DCudaRuntime
    from repro.dcuda import DRank

    cluster = Cluster(greina(1))
    runtime = DCudaRuntime(cluster, ranks_per_device=1)
    runtime.start()
    host = HostRank(runtime, 0)
    buf = np.zeros(8)
    state = {}

    def kernel(rank):
        win = yield from rank.win_create(buf)
        state["win"] = win
        yield from rank.wait_notifications(win, source=host.rank_id,
                                           tag=4, count=1)
        assert buf[2] == 9.0
        yield from rank.finish()

    def host_proc(env):
        while "win" not in state:
            yield env.timeout(1e-6)
        yield from host.put_notify(state["win"], 0, 2,
                                   np.array([9.0, 9.5]), tag=4)

    drank = DRank(runtime, 0)
    cluster.env.process(kernel(drank))
    cluster.env.process(host_proc(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(buf[2:4], [9.0, 9.5])


def test_host_rank_get_and_device_notify():
    from repro.runtime import DCudaRuntime
    from repro.dcuda import DRank

    cluster = Cluster(greina(1))
    runtime = DCudaRuntime(cluster, ranks_per_device=1)
    runtime.start()
    host = HostRank(runtime, 0)
    buf = np.arange(8, dtype=np.float64)
    state = {}
    fetched = {}

    def kernel(rank):
        win = yield from rank.win_create(buf)
        state["win"] = win
        yield from notify_host(rank, host, tag=7)  # data ready
        yield from rank.finish()

    def host_proc(env):
        yield from host.wait_notifications(source=0, tag=7, count=1)
        data = yield from host.get(state["win"], 0, 4, count=3)
        fetched["data"] = data

    drank = DRank(runtime, 0)
    cluster.env.process(kernel(drank))
    cluster.env.process(host_proc(cluster.env))
    cluster.run()
    np.testing.assert_array_equal(fetched["data"], [4.0, 5.0, 6.0])
