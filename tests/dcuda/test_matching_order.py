"""End-to-end tests for matching order and queue compaction (§III-C):
matching happens in order of arrival, matched entries are removed, and
mismatched entries survive in place."""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina


def run_pattern(send_tags, wait_plan, rpd=2):
    """Rank 0 sends notifications with *send_tags* (in order, flushed so
    arrival order == send order); rank 1 executes *wait_plan* = list of
    (tag, count) waits and records the consumption order via the
    matcher's pending snapshots."""
    buffers = {r: np.zeros(8) for r in range(rpd)}
    observed = {"pending_after": []}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            for i, tag in enumerate(send_tags):
                yield from rank.put_notify(win, 1, i % 8, np.ones(1),
                                           tag=tag)
                # Serialize arrivals deterministically.
                yield from rank.flush(win)
        elif r == 1:
            # Let everything arrive first.
            yield rank.env.timeout(2e-3)
            for tag, count in wait_plan:
                yield from rank.wait_notifications(win, tag=tag,
                                                   count=count)
                observed["pending_after"].append(
                    [n.tag for n in rank.matcher._pending])
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=rpd)
    return observed


def test_out_of_order_consumption_preserves_remainder_order():
    obs = run_pattern(send_tags=[1, 2, 1, 3],
                      wait_plan=[(2, 1), (-1, 3)])
    # After consuming tag 2, the remainder keeps arrival order: 1, 1, 3.
    assert obs["pending_after"][0] == [1, 1, 3]
    # The wildcard wait then drains everything.
    assert obs["pending_after"][1] == []


def test_matching_consumes_oldest_first():
    obs = run_pattern(send_tags=[5, 5, 5, 7],
                      wait_plan=[(5, 2), (-1, 2)])
    # Two tag-5 matches consume the two oldest; one tag-5 remains before 7.
    assert obs["pending_after"][0] == [5, 7]


def test_interleaved_tags_with_partial_waits():
    obs = run_pattern(send_tags=[9, 8, 9, 8, 9],
                      wait_plan=[(8, 1), (9, 2), (-1, 2)])
    assert obs["pending_after"][0] == [9, 9, 8, 9]
    assert obs["pending_after"][1] == [8, 9]
    assert obs["pending_after"][2] == []
