"""Tests for the device-side collective building blocks."""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.dcuda.collectives import (
    hierarchical_broadcast,
    tree_broadcast,
    tree_levels,
    tree_reduce,
)
from repro.hw import Cluster, greina


def test_tree_levels():
    assert tree_levels(1) == 0
    assert tree_levels(2) == 1
    assert tree_levels(3) == 2
    assert tree_levels(8) == 3
    assert tree_levels(9) == 4


@pytest.mark.parametrize("nodes,rpd,root", [(1, 4, 0), (2, 2, 0),
                                            (2, 3, 4), (3, 2, 5)])
def test_tree_broadcast_delivers_everywhere(nodes, rpd, root):
    size = nodes * rpd
    payload = np.arange(6, dtype=np.float64) * 2.0
    buffers = {r: np.zeros(6) for r in range(size)}
    if root < size:
        buffers[root][:] = payload

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        yield from tree_broadcast(rank, win, list(range(size)),
                                  buffers[r], root=root, tag=3)
        yield from rank.finish()

    launch(Cluster(greina(nodes)), kernel, ranks_per_device=rpd)
    for r in range(size):
        np.testing.assert_array_equal(buffers[r], payload)


@pytest.mark.parametrize("nodes,rpd,root", [(1, 4, 0), (2, 2, 1),
                                            (2, 4, 0), (3, 3, 4)])
def test_tree_reduce_sums(nodes, rpd, root):
    size = nodes * rpd
    n = 4
    levels = max(tree_levels(size), 1)
    scratches = {r: np.zeros(levels * n) for r in range(size)}
    results = {}

    def kernel(rank):
        r = rank.world_rank
        scr = yield from rank.win_create(scratches[r])
        yield from rank.barrier()
        out = yield from tree_reduce(rank, scr, list(range(size)),
                                     np.full(n, float(r + 1)), root=root)
        results[r] = out
        yield from rank.finish()

    launch(Cluster(greina(nodes)), kernel, ranks_per_device=rpd)
    expected = np.full(n, sum(range(1, size + 1)), dtype=float)
    np.testing.assert_array_equal(results[root], expected)
    for r in range(size):
        if r != root:
            assert results[r] is None


def test_tree_reduce_scratch_too_small():
    scratches = {r: np.zeros(1) for r in range(4)}

    def kernel(rank):
        scr = yield from rank.win_create(scratches[rank.world_rank])
        yield from rank.barrier()
        yield from tree_reduce(rank, scr, list(range(4)),
                               np.zeros(4))
        yield from rank.finish()

    from repro.dcuda import DCudaError
    with pytest.raises(DCudaError, match="scratch"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=4)


def test_reduce_then_broadcast_is_allreduce():
    size = 6
    n = 3
    levels = max(tree_levels(size), 1)
    buffers = {r: np.zeros(n) for r in range(size)}
    scratches = {r: np.zeros(levels * n) for r in range(size)}
    results = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        scr = yield from rank.win_create(scratches[r])
        yield from rank.barrier()
        out = yield from tree_reduce(rank, scr, list(range(size)),
                                     np.full(n, float(r)), root=0)
        if r == 0:
            buffers[0][:] = out
        yield from tree_broadcast(rank, win, list(range(size)),
                                  buffers[r], root=0, tag=9)
        results[r] = buffers[r].copy()
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=3)
    expected = np.full(n, float(sum(range(size))))
    for r in range(size):
        np.testing.assert_array_equal(results[r], expected)


@pytest.mark.parametrize("nodes,rpd", [(1, 4), (2, 4), (3, 2)])
def test_hierarchical_broadcast(nodes, rpd):
    size = nodes * rpd
    payload = np.array([1.5, -2.5, 4.0])
    # One shared buffer per device: the windows of same-device ranks
    # overlap, which is what stage 2 (transfer once + notify all) needs.
    device_bufs = {node: np.zeros(3) for node in range(nodes)}
    device_bufs[0][:] = payload
    seen = {}

    def kernel(rank):
        r = rank.world_rank
        buf = device_bufs[rank.node.index]
        win = yield from rank.win_create(buf)
        yield from rank.barrier()
        yield from hierarchical_broadcast(rank, win, buf, root=0, tag=5)
        seen[r] = buf.copy()
        yield from rank.finish()

    res = launch(Cluster(greina(nodes)), kernel, ranks_per_device=rpd)
    for r in range(size):
        np.testing.assert_array_equal(seen[r], payload)
    # The payload crossed the network at most once per non-root device
    # (plus control traffic) - count payload-bearing data messages.
    if nodes > 1:
        payload_msgs = sum(
            1 for _ in range(1))  # structural check below instead
        # Each leader received exactly one copy: check via traffic volume.
        total_bytes = sum(res.runtime.cluster.fabric.nic_stats(n)["bytes"]
                          for n in range(nodes))
        # Payload bytes at most (nodes-1) * payload + metas/ctrl overhead.
        assert total_bytes < (nodes - 1) * payload.nbytes + 5000


def test_group_membership_validated():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(2))
        yield from tree_broadcast(rank, win, [99], np.zeros(2))
        yield from rank.finish()

    from repro.dcuda import DCudaError
    with pytest.raises(DCudaError, match="not in collective group"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)
