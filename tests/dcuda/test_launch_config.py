"""``launch``/``DCudaRuntime`` accept a bare ``MachineConfig``.

Regression tests for the convenience auto-wrap: a machine description is
promoted to a fresh :class:`Cluster` (with its own simulation clock), and
the config-built run is indistinguishable from the explicit-cluster one.
"""

import numpy as np

from repro.dcuda import launch
from repro.hw import Cluster, greina
from repro.runtime.system import DCudaRuntime


def _counting_kernel(rank, out):
    out[rank.world_rank] = (rank.comm_rank(), rank.comm_size())
    yield from rank.finish()


def test_launch_accepts_machine_config():
    out = {}
    result = launch(greina(2), _counting_kernel, ranks_per_device=2,
                    kernel_args={"out": out})
    assert isinstance(result.runtime.cluster, Cluster)
    assert result.runtime.cluster.num_nodes == 2
    assert out[0] == (0, 4)
    assert out[3] == (3, 4)


def test_launch_config_matches_explicit_cluster():
    """Config-built and cluster-built launches produce identical timing."""
    buffers_a = {r: np.zeros(4) for r in range(2)}
    buffers_b = {r: np.zeros(4) for r in range(2)}

    def kernel(rank, buffers):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.full(2, 5.0), tag=9)
        else:
            yield from rank.wait_notifications(win, source=0, tag=9,
                                               count=1)
        yield from rank.win_free(win)
        yield from rank.finish()

    res_cfg = launch(greina(2), kernel, ranks_per_device=1,
                     kernel_args={"buffers": buffers_a})
    res_cluster = launch(Cluster(greina(2)), kernel, ranks_per_device=1,
                         kernel_args={"buffers": buffers_b})
    assert res_cfg.elapsed == res_cluster.elapsed
    np.testing.assert_array_equal(buffers_a[1], buffers_b[1])


def test_runtime_accepts_machine_config():
    runtime = DCudaRuntime(greina(1), ranks_per_device=2)
    assert isinstance(runtime.cluster, Cluster)
    assert runtime.cluster.num_nodes == 1
    assert runtime.total_ranks == 2
    # The auto-built cluster owns a fresh clock at t=0.
    assert runtime.env.now == 0.0


def test_runtime_config_builds_fresh_clusters():
    """Two config-built runtimes must not share environment state."""
    cfg = greina(1)
    rt_a = DCudaRuntime(cfg, ranks_per_device=1)
    rt_b = DCudaRuntime(cfg, ranks_per_device=1)
    assert rt_a.cluster is not rt_b.cluster
    assert rt_a.env is not rt_b.env
