"""End-to-end tests of the dCUDA stack: windows, notified puts/gets,
flush, barrier, shared- vs distributed-memory paths."""

import numpy as np
import pytest

from repro.dcuda import (
    DCUDA_ANY_SOURCE,
    DCUDA_ANY_TAG,
    DCUDA_COMM_DEVICE,
    DCUDA_COMM_WORLD,
    launch,
)
from repro.hw import Cluster, greina


def test_identity_queries():
    out = {}

    def kernel(rank):
        out[rank.world_rank] = (
            rank.comm_rank(), rank.comm_size(),
            rank.comm_rank(DCUDA_COMM_DEVICE),
            rank.comm_size(DCUDA_COMM_DEVICE))
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=2)
    assert out[0] == (0, 4, 0, 2)
    assert out[3] == (3, 4, 1, 2)


def test_put_notify_distributed():
    """Rank 0 (node 0) puts into rank 1's (node 1) window."""
    buffers = {r: np.zeros(8) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 2, np.array([7.0, 8.0]),
                                       tag=5)
        else:
            yield from rank.wait_notifications(win, source=0, tag=5, count=1)
            assert buffers[1][2] == 7.0 and buffers[1][3] == 8.0
        yield from rank.win_free(win)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    np.testing.assert_array_equal(buffers[1][2:4], [7.0, 8.0])


def test_put_notify_shared_memory():
    """Two ranks on the same device communicate without the network."""
    buffers = {r: np.zeros(8) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.full(4, 3.0), tag=1)
        else:
            yield from rank.wait_notifications(win, source=0, tag=1, count=1)
            assert buffers[1][0] == 3.0
        yield from rank.win_free(win)
        yield from rank.finish()

    result = launch(Cluster(greina(1)), kernel, ranks_per_device=2)
    np.testing.assert_array_equal(buffers[1][:4], 3.0)
    # No network traffic for shared-memory ranks.
    assert result.runtime.cluster.fabric.nic_stats(0)["messages"] == 0


def test_overlapping_windows_zero_copy():
    """Shared-memory ranks registering the same memory: put is a no-op copy
    but the notification still arrives."""
    shared = np.arange(8, dtype=np.float64)

    def kernel(rank):
        win = yield from rank.win_create(shared)  # both register SAME array
        r = rank.world_rank
        if r == 0:
            # Source slice == target slice -> zero copy.
            yield from rank.put_notify(win, 1, 2, shared[2:5], tag=9)
        else:
            yield from rank.wait_notifications(win, source=0, tag=9, count=1)
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=2)
    np.testing.assert_array_equal(shared, np.arange(8))  # untouched


def test_get_notify_distributed():
    buffers = {0: np.zeros(4), 1: np.arange(4, dtype=np.float64) + 10.0}
    got = np.zeros(2)

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.get_notify(win, 1, 1, got, tag=3)
            yield from rank.wait_notifications(win, source=1, tag=3, count=1)
            np.testing.assert_array_equal(got, [11.0, 12.0])
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    np.testing.assert_array_equal(got, [11.0, 12.0])


def test_get_shared_memory():
    buffers = {0: np.zeros(4), 1: np.arange(4, dtype=np.float64)}
    out = np.zeros(4)

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.get_notify(win, 1, 0, out, tag=2)
            yield from rank.wait_notifications(win, source=1, tag=2, count=1)
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=2)
    np.testing.assert_array_equal(out, np.arange(4))


def test_flush_completes_unnotified_puts():
    buffers = {r: np.zeros(4) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put(win, 1, 0, np.ones(4))
            yield from rank.flush(win)
        yield from rank.barrier()
        if r == 1:
            np.testing.assert_array_equal(buffers[1], np.ones(4))
        yield from rank.win_free(win)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_barrier_synchronizes_all_ranks():
    enter = {}
    leave = {}

    def kernel(rank):
        r = rank.world_rank
        yield rank.env.timeout(r * 1e-3)  # staggered arrival
        enter[r] = rank.now
        yield from rank.barrier()
        leave[r] = rank.now
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=3)
    assert all(t >= max(enter.values()) for t in leave.values())


def test_device_barrier_is_local():
    def kernel(rank):
        yield from rank.barrier(DCUDA_COMM_DEVICE)
        yield from rank.finish()

    result = launch(Cluster(greina(2)), kernel, ranks_per_device=2)
    # Device barriers must not touch the network; finish does (1 arrive +
    # 1 release per extra node).
    stats0 = result.runtime.world.messages_sent
    assert stats0 <= 2


def test_wait_any_source_counts():
    """Stencil-style: wait for lsend+rsend notifications with wildcards."""
    n = 4
    buffers = {r: np.zeros(8) for r in range(n)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        lsend = r - 1 >= 0
        rsend = r + 1 < n
        if lsend:
            yield from rank.put_notify(win, r - 1, 0, np.full(2, float(r)),
                                       tag=7)
        if rsend:
            yield from rank.put_notify(win, r + 1, 2, np.full(2, float(r)),
                                       tag=7)
        yield from rank.wait_notifications(win, DCUDA_ANY_SOURCE,
                                           DCUDA_ANY_TAG,
                                           count=int(lsend) + int(rsend))
        yield from rank.win_free(win)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=2)
    # Interior rank 1 got halo values from 0 (left) and 2 (right).
    np.testing.assert_array_equal(buffers[1][:2], 2.0)
    np.testing.assert_array_equal(buffers[1][2:4], 0.0)


def test_notification_tag_filtering_keeps_mismatches():
    buffers = {r: np.zeros(4) for r in range(2)}
    matched = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(1), tag=100)
            yield from rank.put_notify(win, 1, 1, np.ones(1), tag=200)
        else:
            # Wait for tag 200 first; the tag-100 notification must survive.
            yield from rank.wait_notifications(win, tag=200, count=1)
            n100 = yield from rank.test_notifications(win, tag=100, count=5)
            matched["n100_after"] = n100
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    assert matched["n100_after"] == 1


def test_compute_runs_fn_and_charges_time():
    acc = []

    def kernel(rank):
        t0 = rank.now
        val = yield from rank.compute(flops=1e6, fn=lambda: 42)
        acc.append((val, rank.now - t0))
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=1)
    val, dt = acc[0]
    assert val == 42
    assert dt >= 1e6 / greina().gpu.flops_per_sm * 0.99


def test_log_records_collected():
    def kernel(rank):
        yield from rank.log(f"hello from {rank.world_rank}")
        yield from rank.finish()

    result = launch(Cluster(greina(1)), kernel, ranks_per_device=2)
    messages = sorted(m for _, _, m in result.log_records)
    assert messages == ["hello from 0", "hello from 1"]


def test_put_validation():
    buffers = {r: np.zeros(4) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 5, 0, np.ones(1))  # bad rank
        yield from rank.finish()

    with pytest.raises(ValueError, match="not a participant"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_ranks_per_device_capped():
    cluster = Cluster(greina(1))
    cap = cluster.cfg.gpu.max_blocks

    def kernel(rank):
        yield from rank.finish()

    with pytest.raises(ValueError, match="in-flight limit|exceeds"):
        launch(cluster, kernel, ranks_per_device=cap + 1)


def test_multiple_windows_translation():
    """Two windows created in sequence get distinct ids and notifications
    match the right window."""
    a = {r: np.zeros(4) for r in range(2)}
    b = {r: np.zeros(4) for r in range(2)}
    got = {}

    def kernel(rank):
        r = rank.world_rank
        win_a = yield from rank.win_create(a[r])
        win_b = yield from rank.win_create(b[r])
        assert win_a.global_id != win_b.global_id
        if r == 0:
            yield from rank.put_notify(win_b, 1, 0, np.full(1, 5.0), tag=0)
        else:
            # Waiting specifically on win_b must match.
            yield from rank.wait_notifications(win_b, count=1)
            got["b"] = b[1][0]
            n_a = yield from rank.test_notifications(win_a, count=1)
            got["a_matches"] = n_a
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    assert got["b"] == 5.0
    assert got["a_matches"] == 0
