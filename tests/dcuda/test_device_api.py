"""Unit tests for DRank surface details not covered by the end-to-end
tests: flush variants, unnotified ops, identity helpers, window handles,
and the notification matcher's edge cases."""

import numpy as np
import pytest

from repro.dcuda import (
    DCUDA_COMM_DEVICE,
    DCUDA_COMM_WORLD,
    DRank,
    Window,
    launch,
    same_memory,
)
from repro.hw import Cluster, greina


# ------------------------------------------------------------- same_memory --
def test_same_memory_identical_views():
    a = np.arange(10.0)
    assert same_memory(a[2:6], a[2:6])
    assert not same_memory(a[2:6], a[3:7])
    assert not same_memory(a[2:6], a[2:7])


def test_same_memory_different_arrays():
    a = np.arange(4.0)
    b = np.arange(4.0)
    assert not same_memory(a, b)


def test_same_memory_dtype_mismatch():
    a = np.zeros(8, dtype=np.float64)
    b = a.view(np.float32)[:8]
    assert not same_memory(a, b)


# ------------------------------------------------------------------ window --
def test_window_properties():
    buf = np.zeros(16)
    win = Window(local_id=3, global_id=("world", 1), comm_name="world",
                 owner_rank=2, buffer=buf, participants=(0, 1, 2))
    assert win.size == 16
    assert win.dtype == np.float64
    assert "world" in repr(win)
    win.check_target(1, 0, 16)
    with pytest.raises(ValueError, match="not a participant"):
        win.check_target(9, 0, 1)
    with pytest.raises(ValueError, match="negative"):
        win.check_target(1, -2, 1)


# -------------------------------------------------------------- identities --
def test_comm_participants():
    seen = {}

    def kernel(rank):
        seen[rank.world_rank] = (
            rank.comm_participants(DCUDA_COMM_WORLD),
            rank.comm_participants(DCUDA_COMM_DEVICE))
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=2)
    assert seen[0] == ((0, 1, 2, 3), (0, 1))
    assert seen[3] == ((0, 1, 2, 3), (2, 3))


def test_unknown_comm_rejected():
    def kernel(rank):
        rank.comm_rank("nebula")
        yield from rank.finish()

    with pytest.raises(ValueError, match="unknown communicator"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_now_property_advances():
    samples = []

    def kernel(rank):
        samples.append(rank.now)
        yield rank.env.timeout(1e-5)
        samples.append(rank.now)
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=1)
    assert samples[1] - samples[0] == pytest.approx(1e-5)


# ------------------------------------------------------------------- flush --
def test_flush_all_vs_window_flush():
    """flush(None) waits for ALL outstanding ops; flush(win) only for that
    window's ops."""
    buffers = {r: np.zeros(8) for r in range(2)}
    times = {}

    def kernel(rank):
        r = rank.world_rank
        win_a = yield from rank.win_create(buffers[r])
        win_b = yield from rank.win_create(np.zeros(8))
        yield from rank.barrier()
        if r == 0:
            yield from rank.put(win_a, 1, 0, np.ones(4))
            t0 = rank.now
            yield from rank.flush(win_a)
            times["win_a"] = rank.now - t0
            t0 = rank.now
            yield from rank.flush()       # nothing new outstanding
            times["all_after"] = rank.now - t0
            t0 = rank.now
            yield from rank.flush(win_b)  # win_b never used: instant
            times["win_b"] = rank.now - t0
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    assert times["win_a"] > 0
    assert times["all_after"] == 0.0
    assert times["win_b"] == 0.0


def test_flush_orders_multiple_puts():
    """After flush, every previously issued put is visible at the target."""
    buffers = {r: np.zeros(32) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            for i in range(16):
                yield from rank.put(win, 1, i, np.full(1, float(i + 1)))
            yield from rank.flush(win)
            yield from rank.put_notify(win, 1, 31, np.full(1, -1.0), tag=9)
        else:
            yield from rank.wait_notifications(win, tag=9, count=1)
            # All 16 earlier puts were flushed before the notified one...
            # ordering guarantee: flush -> all visible.
            np.testing.assert_array_equal(
                buffers[1][:16], np.arange(1.0, 17.0))
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)


# -------------------------------------------------------------- notifications --
def test_wait_count_zero_is_noop():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        t0 = rank.now
        yield from rank.wait_notifications(win, count=0)
        assert rank.now == t0
        n = yield from rank.test_notifications(win, count=0)
        assert n == 0
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_negative_count_rejected():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        yield from rank.wait_notifications(win, count=-1)
        yield from rank.finish()

    with pytest.raises(ValueError, match="negative"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_pending_count_reflects_arrivals():
    counts = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(np.zeros(8))
        yield from rank.barrier()
        if r == 0:
            for i in range(3):
                yield from rank.put_notify(win, 1, i, np.ones(1), tag=i)
            yield from rank.flush(win)
        yield from rank.barrier()
        if r == 1:
            yield rank.env.timeout(5e-5)  # let notifications land
            counts["pending"] = rank.matcher.pending_count()
            yield from rank.wait_notifications(win, count=3)
            counts["after"] = rank.matcher.pending_count()
            counts["matched"] = rank.matcher.matched_total
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=2)
    assert counts["pending"] == 3
    assert counts["after"] == 0
    assert counts["matched"] == 3


def test_compute_without_fn():
    def kernel(rank):
        val = yield from rank.compute(flops=1e3)
        assert val is None
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_puts_between_many_ranks_same_device():
    """All-pairs shared-memory puts on one device."""
    n = 6
    buffers = {r: np.zeros(n) for r in range(n)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        for t in range(n):
            if t != r:
                yield from rank.put_notify(win, t, r,
                                           np.full(1, float(r)), tag=r)
        yield from rank.wait_notifications(win, count=n - 1)
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=n)
    for r in range(n):
        expected = np.arange(float(n))
        expected[r] = 0.0
        np.testing.assert_array_equal(buffers[r], expected)
