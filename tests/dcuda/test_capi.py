"""Tests for the C-style calling-convention wrappers (Fig. 2 fidelity)."""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.dcuda.capi import (
    DCUDA_ANY_SOURCE,
    DCUDA_COMM_DEVICE,
    DCUDA_COMM_WORLD,
    dcuda_barrier,
    dcuda_comm_rank,
    dcuda_comm_size,
    dcuda_finish,
    dcuda_get,
    dcuda_get_notify,
    dcuda_put,
    dcuda_put_notify,
    dcuda_test_notifications,
    dcuda_wait_notifications,
    dcuda_win_create,
    dcuda_win_flush,
    dcuda_win_free,
)
from repro.hw import Cluster, greina


def test_full_capi_surface_roundtrip():
    """Exercise every capi function in one program."""
    buffers = {r: np.zeros(8) for r in range(4)}
    out = {}

    def kernel(ctx):
        size = dcuda_comm_size(ctx, DCUDA_COMM_WORLD)
        rank = dcuda_comm_rank(ctx, DCUDA_COMM_WORLD)
        assert dcuda_comm_size(ctx, DCUDA_COMM_DEVICE) == 2
        win = yield from dcuda_win_create(ctx, DCUDA_COMM_WORLD,
                                          buffers[rank])
        yield from dcuda_barrier(ctx)

        if rank == 0:
            # notified put to 1, plain put to 2 + flush, notified get
            # from 3.
            yield from dcuda_put_notify(ctx, win, 1, 0,
                                        np.array([1.0, 2.0]), 5)
            yield from dcuda_put(ctx, win, 2, 4, np.array([3.0]))
            yield from dcuda_win_flush(ctx, win)
            got = np.zeros(2)
            yield from dcuda_get_notify(ctx, win, 3, 0, got, 6)
            yield from dcuda_wait_notifications(ctx, win, 3, 6, 1)
            out["got"] = got.copy()
        elif rank == 1:
            yield from dcuda_wait_notifications(ctx, win,
                                                DCUDA_ANY_SOURCE, 5, 1)
            out["r1"] = buffers[1][:2].copy()
        elif rank == 3:
            buffers[3][:2] = [9.0, 8.0]

        yield from dcuda_barrier(ctx)
        if rank == 2:
            out["r2"] = buffers[2][4]
            n = yield from dcuda_test_notifications(ctx, win, count=3)
            out["r2_notifs"] = n  # plain put carries no notification
        yield from dcuda_win_free(ctx, win)
        yield from dcuda_finish(ctx)

    launch(Cluster(greina(2)), kernel, ranks_per_device=2)
    np.testing.assert_array_equal(out["r1"], [1.0, 2.0])
    assert out["r2"] == 3.0
    assert out["r2_notifs"] == 0
    np.testing.assert_array_equal(out["got"], [9.0, 8.0])


def test_capi_matches_method_api_timing():
    """The wrappers add no modeled cost: a capi program and the equivalent
    method-API program take identical simulated time."""
    def run(use_capi):
        buffers = {r: np.zeros(4) for r in range(2)}

        def kernel(ctx):
            if use_capi:
                win = yield from dcuda_win_create(ctx, DCUDA_COMM_WORLD,
                                                  buffers[ctx.world_rank])
                if dcuda_comm_rank(ctx) == 0:
                    yield from dcuda_put_notify(ctx, win, 1, 0,
                                                np.ones(2), 1)
                else:
                    yield from dcuda_wait_notifications(ctx, win,
                                                        DCUDA_ANY_SOURCE,
                                                        1, 1)
                yield from dcuda_finish(ctx)
            else:
                win = yield from ctx.win_create(buffers[ctx.world_rank])
                if ctx.comm_rank() == 0:
                    yield from ctx.put_notify(win, 1, 0, np.ones(2), tag=1)
                else:
                    yield from ctx.wait_notifications(win, tag=1, count=1)
                yield from ctx.finish()

        return launch(Cluster(greina(2)), kernel, 1).elapsed

    assert run(True) == pytest.approx(run(False), rel=1e-12)
