"""Indexed fast path vs wildcard scan parity for notification matching.

The matcher keeps indexed buckets for the common fully-specified and
any-source patterns and an insertion-ordered map for everything else.  The
two implementations must be observationally identical: same matches in the
same order, same remaining pending set, same *charged* simulated cost
(``match_base + match_per_entry x |pending|`` regardless of path).  The
``_force_scan`` hook routes every pass through the wildcard fallback so
the property can compare them on identical workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dcuda.notifications import NotificationMatcher
from repro.hw import Cluster, greina
from repro.runtime import DCudaRuntime
from repro.runtime.commands import Notification


@st.composite
def notification_batches(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    return [Notification(win_id=draw(st.integers(0, 2)),
                         source=draw(st.integers(0, 3)),
                         tag=draw(st.integers(0, 2)))
            for _ in range(n)]


@st.composite
def query_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return [(draw(st.integers(-1, 2)),    # win_id (may be ANY)
             draw(st.integers(-1, 3)),    # source (may be ANY)
             draw(st.integers(-1, 2)),    # tag    (may be ANY)
             draw(st.integers(0, 8)))     # count
            for _ in range(n)]


def _run_queries(batch, queries, force_scan):
    """Run *queries* against a fresh matcher; returns every observable."""
    cluster = Cluster(greina(1))
    rt = DCudaRuntime(cluster, ranks_per_device=1)
    state = rt.state_of(0)
    matcher = NotificationMatcher(state, cluster.node(0).device,
                                  state.block, cluster.cfg.devicelib)
    matcher._force_scan = force_scan
    matcher._pending = list(batch)
    out = {"consumed": [], "times": []}

    def proc(env):
        for win, source, tag, count in queries:
            got = yield from matcher.test(win, source, tag, count=count)
            out["consumed"].append(got)
            out["times"].append(env.now)

    cluster.env.process(proc(cluster.env))
    cluster.run()
    out["pending"] = matcher._pending
    out["matched_total"] = matcher.matched_total
    return out


@given(notification_batches(), query_sequences())
@settings(max_examples=100, deadline=None)
def test_indexed_and_scan_paths_are_identical(batch, queries):
    fast = _run_queries(batch, queries, force_scan=False)
    scan = _run_queries(batch, queries, force_scan=True)
    assert fast["consumed"] == scan["consumed"]
    assert fast["pending"] == scan["pending"]
    assert fast["matched_total"] == scan["matched_total"]
    # Charged cost parity: every pass completes at the exact same
    # simulated time whichever implementation found the matches.
    assert fast["times"] == scan["times"]


@given(notification_batches())
@settings(max_examples=50, deadline=None)
def test_any_source_bucket_matches_scan(batch):
    """The (win, tag) any-source index — the ubiquitous wait pattern —
    agrees with the scan for every concrete (win, tag) pair."""
    queries = [(w, -1, t, 4) for w in range(3) for t in range(3)]
    fast = _run_queries(batch, queries, force_scan=False)
    scan = _run_queries(batch, queries, force_scan=True)
    assert fast["consumed"] == scan["consumed"]
    assert fast["pending"] == scan["pending"]
    assert fast["times"] == scan["times"]
