"""Property-based tests for the circular queue under random interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import PCIeConfig, PCIeLink
from repro.runtime import CircularQueue
from repro.sim import Environment


@given(size=st.integers(1, 16), n_items=st.integers(0, 60),
       producer_gaps=st.lists(st.floats(0, 5.0, allow_nan=False),
                              min_size=0, max_size=60),
       consumer_gaps=st.lists(st.floats(0, 5.0, allow_nan=False),
                              min_size=0, max_size=60))
@settings(max_examples=80, deadline=None)
def test_queue_fifo_and_conservation(size, n_items, producer_gaps,
                                     consumer_gaps):
    """Whatever the queue size and timing jitter: every item arrives,
    exactly once, in order."""
    env = Environment()
    link = PCIeLink(env, PCIeConfig())
    q = CircularQueue(env, size, link)
    got = []

    def producer(env):
        for i in range(n_items):
            gap = producer_gaps[i % len(producer_gaps)] \
                if producer_gaps else 0.0
            yield env.timeout(gap * 1e-6)
            yield from q.enqueue(i)

    def consumer(env):
        for i in range(n_items):
            gap = consumer_gaps[i % len(consumer_gaps)] \
                if consumer_gaps else 0.0
            yield env.timeout(gap * 1e-6)
            item = yield from q.dequeue()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == list(range(n_items))
    assert q.occupancy == 0
    assert q.stats.enqueues == n_items
    assert q.stats.dequeues == n_items


@given(size=st.integers(1, 8), n_items=st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_queue_reload_bound(size, n_items):
    """Credit reloads are bounded by ~n_items/size + 1 when the consumer
    keeps pace (the amortization guarantee of the paper's design)."""
    env = Environment()
    link = PCIeLink(env, PCIeConfig())
    q = CircularQueue(env, size, link)

    def producer(env):
        for i in range(n_items):
            yield from q.enqueue(i)

    def consumer(env):
        for _ in range(n_items):
            yield from q.dequeue()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # A starved sender may reload twice per slot (empty-handed reload,
    # wait, reload); that bounds reloads at 2 per enqueue even for a
    # one-entry queue.  With headroom the amortization kicks in.
    assert q.stats.credit_reloads <= 2 * n_items + 1
    if size >= 4:
        assert q.stats.credit_reloads <= 4 * (n_items // size + 1)
