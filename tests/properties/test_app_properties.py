"""Property-based tests on the mini-applications.

The strongest invariant a distributed-memory program can have:
**decomposition invariance** — the result must not depend on how many
nodes or ranks the domain is split over.  These tests drive the actual
dCUDA stack (windows, notified puts, matching) with randomized shapes and
decompositions and require bit-compatible results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.diffusion import (
    DiffusionWorkload,
    reference as diffusion_reference,
    run_dcuda_diffusion,
)
from repro.apps.spmv import (
    SpmvWorkload,
    reference as spmv_reference,
    run_dcuda_spmv,
)
from repro.apps.stencil2d import (
    Stencil2DWorkload,
    reference as stencil_reference,
    run_dcuda_stencil2d,
)
from repro.hw import Cluster, greina


@given(ni=st.integers(4, 24), nj=st.integers(4, 12),
       steps=st.integers(1, 5), nodes=st.sampled_from([1, 2, 3]),
       rpd=st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_stencil_decomposition_invariance(ni, nj, steps, nodes, rpd):
    wl = Stencil2DWorkload(ni=ni, nj_per_device=nj, steps=steps)
    if nj < rpd:
        return
    _, result, _ = run_dcuda_stencil2d(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(result, stencil_reference(wl, nodes),
                               rtol=1e-12, atol=1e-14)


@given(ni=st.integers(4, 16), nj=st.integers(4, 10), nk=st.integers(1, 4),
       steps=st.integers(1, 3), nodes=st.sampled_from([1, 2]),
       rpd=st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_diffusion_decomposition_invariance(ni, nj, nk, steps, nodes, rpd):
    wl = DiffusionWorkload(ni=ni, nj_per_device=nj, nk=nk, steps=steps)
    if nj < rpd:
        return
    _, result, _ = run_dcuda_diffusion(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(result, diffusion_reference(wl, nodes),
                               rtol=1e-12, atol=1e-14)


@given(n=st.integers(8, 40), density=st.floats(0.01, 0.3),
       nodes=st.sampled_from([1, 4]), rpd=st.integers(1, 4),
       seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_spmv_decomposition_invariance(n, density, nodes, rpd, seed):
    wl = SpmvWorkload(n_per_device=n, density=density, iters=1, seed=seed)
    if n < rpd:
        return
    _, y, _ = run_dcuda_spmv(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(y, spmv_reference(wl, nodes), rtol=1e-9,
                               atol=1e-12)


@given(steps=st.integers(1, 6), cells=st.integers(4, 10),
       particles=st.integers(8, 60), nodes=st.sampled_from([1, 2]),
       rpd=st.integers(1, 3))
@settings(max_examples=8, deadline=None)
def test_particles_decomposition_invariance(steps, cells, particles, nodes,
                                            rpd):
    from repro.apps.particles import (
        ParticleWorkload,
        reference,
        run_dcuda_particles,
    )
    wl = ParticleWorkload(cells_per_node=cells,
                          particles_per_node=particles, steps=steps)
    if cells < rpd:
        return
    _, state, _ = run_dcuda_particles(Cluster(greina(nodes)), wl, rpd)
    np.testing.assert_allclose(state, reference(wl, nodes), rtol=1e-12,
                               atol=1e-12)
