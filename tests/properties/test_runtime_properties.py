"""Property-based tests for runtime data structures and matching."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.stats import median, median_ci
from repro.apps.decomp import block_range, partition_1d
from repro.apps.particles import pack_rows, unpack_rows
from repro.runtime import FlushTracker
from repro.runtime.commands import Notification


# ------------------------------------------------------------ flush tracker --
@given(st.permutations(list(range(1, 15))))
def test_flush_tracker_any_completion_order(order):
    """Whatever the completion order, the counter ends at the maximum and
    never exceeds the longest completed prefix along the way."""
    t = FlushTracker()
    done = set()
    for fid in order:
        t.complete(fid)
        done.add(fid)
        prefix = 0
        while prefix + 1 in done:
            prefix += 1
        assert t.counter == prefix
    assert t.counter == len(order)


# ---------------------------------------------------------------- partition --
@given(st.integers(min_value=1, max_value=1000),
       st.integers(min_value=1, max_value=50))
def test_partition_covers_exactly(total, parts):
    if total < parts:
        return
    sizes = partition_1d(total, parts)
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    # block_range tiles the index space exactly.
    cursor = 0
    for i in range(parts):
        lo, hi = block_range(total, parts, i)
        assert lo == cursor
        cursor = hi
    assert cursor == total


# ------------------------------------------------------------- pack/unpack --
@given(st.integers(min_value=0, max_value=40), st.integers(0, 2 ** 31))
def test_pack_unpack_roundtrip(k, seed):
    rng = np.random.default_rng(seed)
    if k == 0:
        assert unpack_rows(pack_rows(None)) is None
        return
    rows = {name: rng.standard_normal(k)
            for name in ("pid", "x", "y", "vx", "vy")}
    out = unpack_rows(pack_rows(rows))
    for name in rows:
        np.testing.assert_array_equal(out[name], rows[name])


# ------------------------------------------------------------------- stats --
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=60))
def test_median_between_min_and_max(samples):
    m = median(samples)
    assert min(samples) <= m <= max(samples)
    lo, hi = median_ci(samples)
    assert min(samples) <= lo <= hi <= max(samples)
    assert lo <= m <= hi


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=40),
       st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
       st.floats(min_value=-100, max_value=100, allow_nan=False))
def test_median_affine_equivariance(samples, scale, shift):
    transformed = [scale * x + shift for x in samples]
    assert abs(median(transformed) - (scale * median(samples) + shift)) \
        < 1e-6 * max(1.0, abs(scale * median(samples) + shift))


# ------------------------------------------------------- matching semantics --
@st.composite
def notification_batches(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    return [Notification(win_id=draw(st.integers(0, 2)),
                         source=draw(st.integers(0, 3)),
                         tag=draw(st.integers(0, 2)))
            for _ in range(n)]


@given(notification_batches(),
       st.integers(-1, 2), st.integers(-1, 3), st.integers(-1, 2),
       st.integers(0, 30))
@settings(max_examples=100)
def test_matcher_consumes_in_arrival_order(batch, win, source, tag, want):
    """Model-based test of the matcher against a straightforward spec."""
    from repro.dcuda.notifications import NotificationMatcher
    from repro.hw import Cluster, greina

    cluster = Cluster(greina(1))
    from repro.runtime import DCudaRuntime
    rt = DCudaRuntime(cluster, ranks_per_device=1)
    state = rt.state_of(0)
    matcher = NotificationMatcher(state, cluster.node(0).device,
                                  state.block, cluster.cfg.devicelib)
    # Inject arrivals directly into the pending list (pure matching test).
    matcher._pending = list(batch)

    def spec(pending, win, source, tag, want):
        kept, consumed = [], 0
        for n in pending:
            if consumed < want and \
                    (win == -1 or n.win_id == win) and \
                    (source == -1 or n.source == source) and \
                    (tag == -1 or n.tag == tag):
                consumed += 1
            else:
                kept.append(n)
        return kept, consumed

    expected_kept, expected_consumed = spec(batch, win, source, tag, want)

    result = {}

    def proc(env):
        got = yield from matcher.test(win, source, tag, count=want)
        result["got"] = got

    cluster.env.process(proc(cluster.env))
    cluster.run()
    assert result["got"] == expected_consumed
    assert matcher._pending == expected_kept
