"""Property-based tests for the observability instruments and exporter."""

import json
import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import chrome_trace, chrome_trace_events
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OccupancySeries,
)
from repro.sim import Tracer

import pytest

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)
nonneg = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=0.0, max_value=1e9)


# ------------------------------------------------------------------ counter --
@given(st.lists(nonneg, max_size=50))
def test_counter_monotonic_and_sums(amounts):
    c = Counter("c")
    seen = 0.0
    for a in amounts:
        before = c.value
        c.inc(a)
        assert c.value >= before
        seen += a
    assert c.value == seen


@given(st.floats(max_value=-1e-12, allow_nan=False))
def test_counter_rejects_negative(amount):
    c = Counter("c")
    with pytest.raises(ValueError):
        c.inc(amount)
    assert c.value == 0.0


@given(st.lists(finite, max_size=30))
def test_gauge_tracks_running_sum(deltas):
    g = Gauge("g")
    for d in deltas:
        g.inc(d)
    # Naive accumulation vs fsum: allow float rounding at large magnitudes.
    assert g.value == pytest.approx(math.fsum(deltas), rel=1e-9, abs=1e-6)


# ---------------------------------------------------------------- histogram --
bounds_strategy = st.lists(
    st.floats(min_value=1e-9, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=8, unique=True).map(sorted)


@given(bounds_strategy, st.lists(nonneg, max_size=100))
def test_histogram_bucket_sums_equal_count(bounds, observations):
    h = Histogram("h", bounds)
    for v in observations:
        h.observe(v)
    assert sum(h.counts) == h.count == len(observations)
    assert h.total == pytest.approx(math.fsum(observations))
    if observations:
        assert h.min == min(observations)
        assert h.max == max(observations)
        assert h.mean == pytest.approx(h.total / h.count)
    else:
        assert h.min is None and h.max is None and h.mean == 0.0


@given(bounds_strategy, st.lists(nonneg, min_size=1, max_size=60))
def test_histogram_bucket_assignment(bounds, observations):
    """Bucket i counts bounds[i-1] < x <= bounds[i]; last is overflow."""
    h = Histogram("h", bounds)
    for v in observations:
        h.observe(v)
    reference = [0] * (len(bounds) + 1)
    for v in observations:
        for i, b in enumerate(h.bounds):
            if v <= b:
                reference[i] += 1
                break
        else:
            reference[-1] += 1
    assert h.counts == reference


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", [])
    with pytest.raises(ValueError):
        Histogram("h", [1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("h", [2.0, 1.0])


# --------------------------------------------------------- occupancy series --
steps_strategy = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
              st.integers(min_value=0, max_value=64)),
    min_size=1, max_size=30,
).map(lambda pts: sorted(pts, key=lambda p: p[0]))


def _reference_integral(times, values, t0, t1):
    """Hand-rolled step-function integral for cross-checking."""
    total = 0.0
    for i, (t, v) in enumerate(zip(times, values)):
        seg_start = max(t, t0)
        seg_end = times[i + 1] if i + 1 < len(times) else t1
        seg_end = min(seg_end, t1)
        if seg_end > seg_start:
            total += v * (seg_end - seg_start)
    return total


@given(steps_strategy)
def test_series_integral_matches_reference(points):
    s = OccupancySeries("s")
    for t, v in points:
        s.sample(t, v)
    # Deduplicate: same-time samples collapse to the last value.
    collapsed = {}
    for t, v in points:
        collapsed[t] = v
    times = sorted(collapsed)
    values = [collapsed[t] for t in times]
    assert list(s.times) == times
    assert list(s.values) == values
    t0, t1 = times[0], times[-1] + 1.0
    assert s.integral(t0, t1) == pytest.approx(
        _reference_integral(times, values, t0, t1))
    if t1 > t0:
        assert s.time_weighted_mean(t0, t1) == pytest.approx(
            s.integral(t0, t1) / (t1 - t0))
    lo, hi = min(values), max(values)
    assert lo * (t1 - t0) - 1e-9 <= s.integral(t0, t1) <= hi * (t1 - t0) + 1e-9


def test_series_hand_computed_integral():
    s = OccupancySeries("s")
    s.sample(0.0, 2)   # 2 over [0, 1)
    s.sample(1.0, 5)   # 5 over [1, 3)
    s.sample(3.0, 0)   # 0 over [3, ...)
    assert s.integral(0.0, 4.0) == pytest.approx(2 * 1 + 5 * 2 + 0 * 1)
    assert s.integral(0.5, 2.0) == pytest.approx(2 * 0.5 + 5 * 1.0)
    assert s.time_weighted_mean(0.0, 4.0) == pytest.approx(12.0 / 4.0)
    assert s.value_at(0.5) == 2
    assert s.value_at(1.0) == 5
    assert s.value_at(-1.0) == 0.0
    assert s.max_value() == 5


def test_series_rejects_backwards_time():
    s = OccupancySeries("s")
    s.sample(2.0, 1)
    with pytest.raises(ValueError):
        s.sample(1.0, 2)


@given(steps_strategy)
def test_series_value_at_is_right_continuous(points):
    s = OccupancySeries("s")
    for t, v in points:
        s.sample(t, v)
    for t, v in zip(s.times, s.values):
        assert s.value_at(t) == v


# ----------------------------------------------------------- chrome export --
interval_strategy = st.lists(
    st.tuples(st.sampled_from(["node0.gpu.b0", "node0.gpu.b1", "node1.cpu"]),
              st.sampled_from(["compute", "comm", "wait", "match"]),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=20)


@given(interval_strategy, st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
              st.integers(min_value=0, max_value=9)),
    max_size=10).map(lambda pts: sorted(pts, key=lambda p: p[0])))
def test_chrome_trace_round_trips_and_is_valid(raw_intervals, samples):
    tracer = Tracer()
    for actor, kind, a, b in raw_intervals:
        t0, t1 = min(a, b), max(a, b)
        tracer.record(actor, kind, t0, t1)
    registry = MetricsRegistry()
    series = registry.series("queue.test.depth")
    for t, v in samples:
        series.sample(t, v)

    doc = json.loads(json.dumps(chrome_trace(tracer, registry)))
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    assert events, "export must never be empty for a non-empty trace"
    for ev in events:
        assert ev["ph"] in ("X", "C", "M")
        if ev["ph"] == "X":
            assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert ev["args"]["actor"]
        elif ev["ph"] == "C":
            assert "value" in ev["args"]
    xs = [ev for ev in events if ev["ph"] == "X"]
    cs = [ev for ev in events if ev["ph"] == "C"]
    assert len(xs) == len(tracer.intervals)
    assert len(cs) == len(series)
    # Durations round-trip exactly: ts/dur are the interval scaled to us.
    for ev, iv in zip(xs, tracer.intervals):
        assert ev["ts"] == iv.start * 1e6
        assert ev["dur"] == (iv.end - iv.start) * 1e6
        assert ev["cat"] == iv.kind


def test_chrome_trace_metadata_names_every_actor():
    tracer = Tracer()
    tracer.record("node0.gpu.b0", "compute", 0.0, 1.0)
    tracer.record("node1.gpu.b0", "comm", 0.0, 1.0)
    events = chrome_trace_events(tracer, MetricsRegistry())
    meta = [ev for ev in events if ev["ph"] == "M"]
    thread_names = {ev["args"]["name"] for ev in meta
                    if ev["name"] == "thread_name"}
    assert {"node0.gpu.b0", "node1.gpu.b0"} <= thread_names
    process_names = {ev["args"]["name"] for ev in meta
                     if ev["name"] == "process_name"}
    assert {"node0.gpu", "node1.gpu"} <= process_names


# ----------------------------------------------------------------- registry --
def test_registry_get_or_create_and_kind_clash():
    reg = MetricsRegistry()
    c = reg.counter("x")
    assert reg.counter("x") is c
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert "x" in reg and reg["x"] is c
    reg.histogram("h", [1.0, 2.0])
    reg.series("s")
    snap = reg.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert set(snap) == {"x", "h", "s"}
