"""Model-based fuzzing of the dCUDA RMA layer.

Hypothesis generates random little programs — puts and gets between random
ranks at random offsets, across shared- and distributed-memory pairs, with
interleaved flushes and a final barrier — and the same operations are
applied to a plain in-memory model.  After the run, every rank's window
buffer must equal the model exactly.

This catches addressing, snapshotting, ordering, and path-selection bugs
(shared vs. distributed) that targeted tests miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dcuda import launch
from repro.hw import Cluster, greina

WIN_SIZE = 16


@st.composite
def rma_programs(draw):
    """A list of (op, origin, target, offset, length, value) instructions.

    Origins act in rank order within one "round" per instruction index, so
    the model's sequential application matches the simulated outcome: no
    two instructions write the same target range concurrently.
    """
    nodes = draw(st.integers(1, 2))
    rpd = draw(st.integers(1, 3))
    size = nodes * rpd
    n_ops = draw(st.integers(1, 12))
    ops = []
    used_ranges = set()
    for i in range(n_ops):
        origin = draw(st.integers(0, size - 1))
        target = draw(st.integers(0, size - 1))
        length = draw(st.integers(1, 4))
        offset = draw(st.integers(0, WIN_SIZE - length))
        # Avoid overlapping writes to the same target (order between
        # concurrent origins is unspecified, as in real RMA).
        key_range = {(target, o) for o in range(offset, offset + length)}
        if key_range & used_ranges:
            continue
        used_ranges |= key_range
        value = draw(st.floats(-100, 100, allow_nan=False))
        ops.append((origin, target, offset, length, value))
    return nodes, rpd, ops


@given(rma_programs())
@settings(max_examples=40, deadline=None)
def test_random_put_programs_match_flat_model(program):
    nodes, rpd, ops = program
    size = nodes * rpd
    buffers = {r: np.zeros(WIN_SIZE) for r in range(size)}
    model = {r: np.zeros(WIN_SIZE) for r in range(size)}

    # Apply to the model sequentially.
    for origin, target, offset, length, value in ops:
        model[target][offset:offset + length] = value

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        for origin, target, offset, length, value in ops:
            if origin == r:
                yield from rank.put(win, target, offset,
                                    np.full(length, value))
        yield from rank.flush(win)
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(nodes)), kernel, ranks_per_device=rpd)
    for r in range(size):
        np.testing.assert_array_equal(buffers[r], model[r]), f"rank {r}"


@given(rma_programs())
@settings(max_examples=25, deadline=None)
def test_random_get_programs_match_flat_model(program):
    """The dual: after a barrier, random gets read exactly the values the
    model predicts."""
    nodes, rpd, ops = program
    size = nodes * rpd
    rng = np.random.default_rng(1234)
    initial = {r: rng.standard_normal(WIN_SIZE) for r in range(size)}
    buffers = {r: initial[r].copy() for r in range(size)}
    results = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        got = []
        for origin, target, offset, length, _ in ops:
            if origin == r:
                dst = np.zeros(length)
                yield from rank.get(win, target, offset, dst)
                yield from rank.flush(win)
                got.append((target, offset, dst))
        results[r] = got
        yield from rank.barrier()
        yield from rank.finish()

    launch(Cluster(greina(nodes)), kernel, ranks_per_device=rpd)
    for r, got in results.items():
        for target, offset, dst in got:
            np.testing.assert_array_equal(
                dst, initial[target][offset:offset + len(dst)])
