"""Property-based tests for the MPI substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cluster, greina
from repro.mpi import MPIWorld, allgather, allreduce, barrier, bcast, reduce


@given(st.lists(st.integers(0, 3), min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_non_overtaking_any_message_sizes(size_classes):
    """Whatever the mix of message sizes, same-pair same-tag messages
    arrive in send order."""
    cluster = Cluster(greina(2))
    world = MPIWorld(cluster)
    sizes = [10 ** c for c in size_classes]  # 1 B .. 1 kB
    got = []

    def sender(env):
        for i, nbytes in enumerate(sizes):
            world.isend(0, 1, i, tag=0, nbytes=float(nbytes))
        yield env.timeout(0.0)

    def receiver(env):
        for _ in sizes:
            msg = yield from world.recv(1, source=0, tag=0)
            got.append(msg.payload)

    cluster.env.process(sender(cluster.env))
    cluster.env.process(receiver(cluster.env))
    cluster.run()
    assert got == list(range(len(sizes)))


@given(p=st.integers(1, 9), root=st.integers(0, 8),
       seed=st.integers(0, 999))
@settings(max_examples=30, deadline=None)
def test_bcast_reduce_compose_to_identity_scaling(p, root, seed):
    """allreduce(sum) of contributions equals p * mean regardless of
    group size, root choice, or payload."""
    root = root % p
    rng = np.random.default_rng(seed)
    payloads = rng.standard_normal((p, 4))
    cluster = Cluster(greina(p))
    world = MPIWorld(cluster)
    results = {}

    def proc(rank):
        out = yield from allreduce(world, rank, payloads[rank].copy(),
                                   op=np.add)
        results[rank] = out

    for r in range(p):
        cluster.env.process(proc(r))
    cluster.run()
    expected = payloads.sum(axis=0)
    for r in range(p):
        np.testing.assert_allclose(results[r], expected, rtol=1e-12)


@given(p=st.integers(2, 8), seed=st.integers(0, 999))
@settings(max_examples=20, deadline=None)
def test_allgather_is_permutation_invariant_of_arrival(p, seed):
    """Allgather returns contributions indexed by rank regardless of the
    (randomized) times at which ranks enter the collective."""
    rng = np.random.default_rng(seed)
    delays = rng.uniform(0, 1e-4, p)
    cluster = Cluster(greina(p))
    world = MPIWorld(cluster)
    results = {}

    def proc(rank):
        yield cluster.env.timeout(float(delays[rank]))
        out = yield from allgather(world, rank, rank * 11, nbytes=8)
        results[rank] = out

    for r in range(p):
        cluster.env.process(proc(r))
    cluster.run()
    for r in range(p):
        assert results[r] == [x * 11 for x in range(p)]


@given(p=st.integers(2, 8), rounds=st.integers(1, 4),
       seed=st.integers(0, 999))
@settings(max_examples=20, deadline=None)
def test_repeated_barriers_never_let_ranks_lap_each_other(p, rounds, seed):
    """After barrier k, no rank may still be before barrier k-1: the
    phase counter across ranks never differs by more than one round."""
    rng = np.random.default_rng(seed)
    cluster = Cluster(greina(p))
    world = MPIWorld(cluster)
    phase = [0] * p
    violations = []

    def proc(rank):
        for k in range(rounds):
            yield cluster.env.timeout(float(rng.uniform(0, 5e-5)))
            yield from barrier(world, rank)
            phase[rank] = k + 1
            spread = max(phase) - min(phase)
            if spread > 1:
                violations.append((rank, k, list(phase)))

    for r in range(p):
        cluster.env.process(proc(r))
    cluster.run()
    assert not violations
    assert phase == [rounds] * p
