"""Property-based tests (hypothesis) for the simulation kernel."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    FairShareLink,
    Semaphore,
    Store,
    merge_intervals,
    overlap_time,
    total_time,
)

delays = st.lists(st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False), min_size=1, max_size=20)


# --------------------------------------------------------------- event loop --
@given(delays)
def test_timeouts_complete_in_sorted_order(ds):
    env = Environment()
    completions = []

    def proc(env, d, idx):
        yield env.timeout(d)
        completions.append((env.now, d, idx))

    for idx, d in enumerate(ds):
        env.process(proc(env, d, idx))
    env.run()
    times = [t for t, _, _ in completions]
    assert times == sorted(times)
    assert env.now == max(ds)
    # Equal delays resolve in spawn order (determinism).
    for (t1, d1, i1), (t2, d2, i2) in zip(completions, completions[1:]):
        if d1 == d2:
            assert i1 < i2


@given(delays)
def test_all_of_completes_at_max_any_of_at_min(ds):
    env = Environment()
    out = {}

    def all_proc(env):
        yield AllOf(env, [env.timeout(d) for d in ds])
        out["all"] = env.now

    def any_proc(env):
        yield AnyOf(env, [env.timeout(d) for d in ds])
        out["any"] = env.now

    env.process(all_proc(env))
    env.process(any_proc(env))
    env.run()
    assert out["all"] == max(ds)
    assert out["any"] == min(ds)


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=30),
       st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
def test_semaphore_throughput_bound(capacity, jobs, duration):
    """n jobs of equal duration through a k-slot semaphore finish at
    exactly ceil(n/k) * duration."""
    env = Environment()
    sem = Semaphore(env, capacity)

    def worker(env):
        yield from sem.acquire()
        yield env.timeout(duration)
        sem.release()

    for _ in range(jobs):
        env.process(worker(env))
    env.run()
    waves = -(-jobs // capacity)
    assert abs(env.now - waves * duration) < 1e-9


# -------------------------------------------------------------------- store --
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                max_size=30))
def test_store_preserves_fifo_per_filter_class(items):
    """Consuming only even items yields the evens in insertion order and
    leaves the odds, in order."""
    env = Environment()
    store = Store(env)
    for x in items:
        store.try_put(x)
    evens = [x for x in items if x % 2 == 0]
    got = []
    for _ in evens:
        got.append(store.try_get(lambda v: v % 2 == 0))
    assert got == evens
    assert list(store.items) == [x for x in items if x % 2 == 1]


# ---------------------------------------------------------- fair-share link --
@given(st.lists(st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=10),
       st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
@settings(max_examples=50)
def test_fair_share_conserves_bandwidth(sizes, bandwidth):
    """All flows starting together finish no earlier than the aggregate
    bound total/bw, no later than if fully serialized, and the largest
    flow finishes last."""
    env = Environment()
    link = FairShareLink(env, bandwidth)
    finish = {}

    def proc(env, idx, nbytes):
        yield link.transfer(nbytes)
        finish[idx] = env.now

    for idx, nbytes in enumerate(sizes):
        env.process(proc(env, idx, nbytes))
    env.run()
    total = sum(sizes)
    assert env.now >= total / bandwidth * (1 - 1e-9)
    assert env.now <= total / bandwidth * (1 + 1e-6) + 1e-9
    # Monotone: bigger flows never finish before smaller ones.
    order = sorted(range(len(sizes)), key=lambda i: sizes[i])
    for a, b in zip(order, order[1:]):
        assert finish[a] <= finish[b] + 1e-12


@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 100, allow_nan=False)),
                max_size=20))
def test_merge_intervals_invariants(spans):
    spans = [(min(a, b), max(a, b)) for a, b in spans]
    merged = merge_intervals(spans)
    # Disjoint and sorted.
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    # Union length preserved vs a brute-force union measure.
    assert total_time(spans) == total_time(merged)
    # Merging is idempotent.
    assert merge_intervals(merged) == merged


@given(st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                          st.floats(0, 50, allow_nan=False)), max_size=10),
       st.lists(st.tuples(st.floats(0, 50, allow_nan=False),
                          st.floats(0, 50, allow_nan=False)), max_size=10))
def test_overlap_time_bounds(a, b):
    a = [(min(x, y), max(x, y)) for x, y in a]
    b = [(min(x, y), max(x, y)) for x, y in b]
    ov = overlap_time(a, b)
    assert 0.0 <= ov <= min(total_time(a), total_time(b)) + 1e-9
    # Symmetric.
    assert abs(ov - overlap_time(b, a)) < 1e-9
    # Self-overlap is the union length.
    assert abs(overlap_time(a, a) - total_time(a)) < 1e-9
