"""Unit tests for per-block (imbalanced) fork-join kernels."""

import pytest

from repro.hw.config import GPUConfig
from repro.hw.gpu import Device
from repro.sim import Environment


def make_device(**kw):
    env = Environment()
    return env, Device(env, GPUConfig(**kw))


def test_per_block_straggler_gates_kernel():
    env, dev = make_device(num_sms=4, flops=400.0, mem_bandwidth=1e12,
                           mem_latency=0.0)
    # 4 blocks on 4 SMs: three tiny, one huge.
    works = [(10.0, 0.0), (10.0, 0.0), (10.0, 0.0), (1000.0, 0.0)]

    def proc(env):
        yield from dev.bulk_compute(per_block=works)
        return env.now

    p = env.process(proc(env))
    env.run()
    # per-SM rate 100 FLOP/s; straggler = 1000/100 = 10 s.
    assert p.value == pytest.approx(10.0)


def test_per_block_equivalent_to_uniform():
    def run(per_block):
        env, dev = make_device(num_sms=2, flops=200.0, mem_bandwidth=100.0,
                               mem_latency=0.0)

        def proc(env):
            if per_block:
                yield from dev.bulk_compute(
                    per_block=[(50.0, 40.0)] * 4)
            else:
                yield from dev.bulk_compute(4, flops_per_block=50.0,
                                            mem_bytes_per_block=40.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        return p.value

    assert run(True) == pytest.approx(run(False))


def test_per_block_memory_straggler():
    env, dev = make_device(num_sms=2, flops=1e15, mem_bandwidth=100.0,
                           mem_latency=0.0)
    # SM0 gets blocks 0, 2 (300 B); SM1 gets block 1 (100 B).
    works = [(0.0, 200.0), (0.0, 100.0), (0.0, 100.0)]

    def proc(env):
        yield from dev.bulk_compute(per_block=works)
        return env.now

    p = env.process(proc(env))
    env.run()
    # Two flows: 300 B and 100 B, fair sharing 100 B/s: the small one
    # finishes at t=2 (50 B/s each), the big one uses the full link
    # afterwards: 2 + 200/100 = 4 s... fluid model: total 400 B -> >= 4 s.
    assert p.value == pytest.approx(4.0, rel=0.05)


def test_per_block_validation():
    env, dev = make_device()

    def bad_empty(env):
        yield from dev.bulk_compute(per_block=[])

    env.process(bad_empty(env))
    with pytest.raises(ValueError, match="at least one block"):
        env.run()

    env2, dev2 = make_device()

    def bad_negative(env):
        yield from dev2.bulk_compute(per_block=[(-1.0, 0.0)])

    env2.process(bad_negative(env2))
    with pytest.raises(ValueError, match="non-negative"):
        env2.run()
