"""Tests for the fabric's injection-completion and extra-latency features
(the send-buffer-reuse semantics the MPI layer builds on)."""

import pytest

from repro.hw import FabricConfig
from repro.net import Fabric
from repro.sim import Environment


def test_injected_fires_before_arrival():
    env = Environment()
    fab = Fabric(env, FabricConfig(latency=10.0, injection_overhead=1.0,
                                   bandwidth=10.0), 2)
    times = {}

    def proc(env):
        injected = env.event()
        arrival = fab.transmit(0, 1, 100.0, injected=injected)
        yield injected
        times["injected"] = env.now
        yield arrival
        times["arrival"] = env.now

    env.process(proc(env))
    env.run()
    # Injection = overhead + serialization; arrival adds the latency.
    assert times["injected"] == pytest.approx(11.0)
    assert times["arrival"] == pytest.approx(21.0)


def test_extra_latency_delays_arrival_only():
    env = Environment()
    fab = Fabric(env, FabricConfig(latency=1.0, injection_overhead=0.0,
                                   bandwidth=1e9), 2)
    times = {}

    def proc(env):
        injected = env.event()
        arrival = fab.transmit(0, 1, 0.0, injected=injected,
                               extra_latency=5.0)
        yield injected
        times["injected"] = env.now
        yield arrival
        times["arrival"] = env.now

    env.process(proc(env))
    env.run()
    assert times["injected"] == pytest.approx(0.0)
    assert times["arrival"] == pytest.approx(6.0)


def test_loopback_fires_injected_too():
    env = Environment()
    fab = Fabric(env, FabricConfig(), 1)

    def proc(env):
        injected = env.event()
        arrival = fab.transmit(0, 0, 64.0, injected=injected)
        yield injected
        yield arrival
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value < 1e-5


def test_negative_extra_latency_rejected():
    env = Environment()
    fab = Fabric(env, FabricConfig(), 2)
    with pytest.raises(ValueError):
        fab.transmit(0, 1, 0.0, extra_latency=-1.0)
