"""Unit tests for the device-memory model."""

import pytest

from repro.hw.config import GPUConfig
from repro.hw.memory import DeviceMemory
from repro.sim import Environment


def make_memory(**kw):
    env = Environment()
    cfg = GPUConfig(**kw)
    return env, DeviceMemory(env, cfg)


def test_access_latency_only():
    env, mem = make_memory(mem_latency=2.0)

    def proc(env):
        yield from mem.access(0.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0)


def test_access_zero_without_latency_is_instant():
    env, mem = make_memory()

    def proc(env):
        yield from mem.access(0.0, latency=False)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_block_limited_floor_dominates():
    env, mem = make_memory(mem_bandwidth=1e12, block_mem_bandwidth=10.0,
                           mem_latency=0.0)

    def proc(env):
        yield from mem.access(100.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(10.0, rel=1e-3)


def test_unlimited_access_uses_link_bandwidth():
    env, mem = make_memory(mem_bandwidth=100.0, block_mem_bandwidth=1.0,
                           mem_latency=0.0)

    def proc(env):
        yield from mem.access(200.0, block_limited=False)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0, rel=1e-3)


def test_copy_moves_double_traffic():
    env, mem = make_memory(mem_bandwidth=1e12, block_mem_bandwidth=100.0,
                           mem_latency=0.0)

    def proc(env):
        yield from mem.copy(500.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(10.0, rel=1e-3)


def test_negative_access_rejected():
    env, mem = make_memory()
    with pytest.raises(ValueError):
        mem.access_event(-1.0)


def test_bytes_transferred_accounting():
    env, mem = make_memory(mem_latency=0.0)

    def proc(env):
        yield from mem.access(300.0)

    env.process(proc(env))
    env.run()
    assert mem.bytes_transferred == pytest.approx(300.0)


def test_concurrent_accesses_share_link():
    env, mem = make_memory(mem_bandwidth=100.0, block_mem_bandwidth=1e12,
                           mem_latency=0.0)
    done = []

    def proc(env):
        yield from mem.access(500.0)
        done.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    # 1000 bytes through 100 B/s: both finish at 10 s.
    assert done == [pytest.approx(10.0, rel=1e-3)] * 2
