"""Unit tests for the PCIe link and the interconnect fabric."""

import pytest

from repro.hw import PCIeConfig, PCIeLink, FabricConfig
from repro.net import Fabric
from repro.sim import Environment


def make_pcie(**kw):
    env = Environment()
    return env, PCIeLink(env, PCIeConfig(**kw))


def make_fabric(num_nodes=2, **kw):
    env = Environment()
    return env, Fabric(env, FabricConfig(**kw), num_nodes)


# -------------------------------------------------------------------- PCIe ----
def test_mapped_post_costs_occupancy_only():
    env, pcie = make_pcie(mapped_post_occupancy=2.0, mapped_write_latency=5.0)

    def proc(env):
        yield from pcie.mapped_post()
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0)  # posted: issuer pays occupancy
    assert pcie.write_visibility_delay == 5.0
    assert pcie.mapped_writes == 1


def test_mapped_read_cost():
    env, pcie = make_pcie(mapped_read=3.0)

    def proc(env):
        yield from pcie.mapped_read()
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(3.0)
    assert pcie.mapped_reads == 1


def test_mapped_transactions_serialize():
    env, pcie = make_pcie(mapped_post_occupancy=1.0)
    done = []

    def proc(env):
        yield from pcie.mapped_post()
        done.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_dma_startup_plus_streaming():
    env, pcie = make_pcie(dma_startup=5.0, bandwidth=10.0)

    def proc(env):
        yield from pcie.dma_copy(100.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(15.0)
    assert pcie.dma_bytes == 100.0


def test_dma_independent_of_mapped():
    """DMA and mapped transactions use separate engines."""
    env, pcie = make_pcie(mapped_post_occupancy=1.0, dma_startup=10.0,
                          bandwidth=1e9)
    done = {}

    def dma(env):
        yield from pcie.dma_copy(0.0)
        done["dma"] = env.now

    def mapped(env):
        yield from pcie.mapped_post()
        done["mapped"] = env.now

    env.process(dma(env))
    env.process(mapped(env))
    env.run()
    assert done["mapped"] == pytest.approx(1.0)  # not stuck behind DMA
    assert done["dma"] == pytest.approx(10.0)


def test_dma_negative_size_rejected():
    env, pcie = make_pcie()

    def bad(env):
        yield from pcie.dma_copy(-1.0)

    env.process(bad(env))
    with pytest.raises(ValueError):
        env.run()


# ------------------------------------------------------------------ fabric ----
def test_transmit_latency_plus_serialization():
    env, fab = make_fabric(latency=5.0, injection_overhead=1.0,
                           bandwidth=10.0)

    def proc(env):
        yield fab.transmit(0, 1, 100.0, mode="host")
        return env.now

    p = env.process(proc(env))
    env.run()
    # 1.0 injection + 10.0 serialization + 5.0 latency
    assert p.value == pytest.approx(16.0)


def test_d2d_mode_uses_lower_bandwidth():
    env, fab = make_fabric(latency=0.0, injection_overhead=0.0,
                           bandwidth=10.0, d2d_bandwidth=2.0)

    def proc(env):
        yield fab.transmit(0, 1, 100.0, mode="d2d")
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(50.0)


def test_sender_nic_serializes_messages():
    env, fab = make_fabric(latency=0.0, injection_overhead=1.0,
                           bandwidth=1e12)
    done = []

    def proc(env):
        yield fab.transmit(0, 1, 0.0)
        done.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]


def test_different_senders_are_independent():
    env, fab = make_fabric(num_nodes=3, latency=0.0, injection_overhead=1.0,
                           bandwidth=1e12)
    done = []

    def proc(env, src):
        yield fab.transmit(src, 2, 0.0)
        done.append(env.now)

    env.process(proc(env, 0))
    env.process(proc(env, 1))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]


def test_loopback_is_cheap():
    env, fab = make_fabric(latency=100.0, injection_overhead=100.0)

    def proc(env):
        yield fab.transmit(1, 1, 1024.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value < 1e-5  # far below the wire latency


def test_transmit_validation():
    env, fab = make_fabric()
    with pytest.raises(ValueError):
        fab.transmit(0, 5, 10.0)
    with pytest.raises(ValueError):
        fab.transmit(0, 1, -1.0)
    with pytest.raises(ValueError):
        fab.transmit(0, 1, 1.0, mode="warp")
    with pytest.raises(ValueError):
        Fabric(env, FabricConfig(), 0)


def test_nic_stats():
    env, fab = make_fabric(latency=0.0, injection_overhead=0.0,
                           bandwidth=10.0)

    def proc(env):
        yield fab.transmit(0, 1, 40.0)

    env.process(proc(env))
    env.run()
    stats = fab.nic_stats(0)
    assert stats == {"messages": 1, "bytes": 40.0, "doorbells": 0}
    fab.ring_doorbell(0)
    assert fab.nic_stats(0)["doorbells"] == 1
