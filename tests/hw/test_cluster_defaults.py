"""Regression: caller-supplied objects must never be replaced for being
falsy.

``Cluster.__init__`` used ``env or Environment()``, which silently
discards any environment whose ``__bool__``/``__len__`` makes it falsy —
e.g. a subclass exposing ``len(env)`` as its pending-event count.  The
contract is identity (``is not None``), not truthiness.
"""

from repro.hw import Cluster, greina
from repro.sim import Environment


class CountingEnvironment(Environment):
    """An Environment that is falsy while its queue is empty."""

    def __len__(self):
        return 0


def test_falsy_environment_is_kept():
    env = CountingEnvironment()
    assert not env  # precondition: the regression trigger
    cluster = Cluster(greina(), env=env)
    assert cluster.env is env


def test_supplied_config_is_kept():
    cfg = greina(2, tracing=True)
    cluster = Cluster(cfg)
    assert cluster.cfg is cfg


def test_defaults_still_apply():
    cluster = Cluster()
    assert cluster.num_nodes == 1
    assert isinstance(cluster.env, Environment)
