"""Unit tests for the GPU device model — including latency hiding itself."""

import pytest

from repro.hw import Cluster, Device, GPUConfig, greina
from repro.sim import Environment, Tracer


def make_device(**kw):
    env = Environment()
    cfg = GPUConfig(**kw)
    tracer = Tracer()
    return env, Device(env, cfg, tracer=tracer), tracer


# ------------------------------------------------------------ allocation ----
def test_blocks_round_robin_over_sms():
    env, dev, _ = make_device(num_sms=4, max_blocks_per_sm=2)
    blocks = dev.allocate_blocks(8)
    per_sm = [len(sm.resident) for sm in dev.sms]
    assert per_sm == [2, 2, 2, 2]
    assert [b.index for b in blocks] == list(range(8))


def test_block_limit_enforced():
    env, dev, _ = make_device(num_sms=2, max_blocks_per_sm=2)
    dev.allocate_blocks(4)
    with pytest.raises(ValueError, match="in-flight limit"):
        dev.allocate_blocks(1)


def test_free_blocks_resets():
    env, dev, _ = make_device(num_sms=2, max_blocks_per_sm=2)
    dev.allocate_blocks(4)
    dev.free_blocks()
    assert dev.blocks == []
    dev.allocate_blocks(4)  # fits again


def test_allocate_zero_rejected():
    env, dev, _ = make_device()
    with pytest.raises(ValueError):
        dev.allocate_blocks(0)


def test_default_greina_block_capacity_is_208():
    cfg = GPUConfig()
    assert cfg.max_blocks == 208  # 13 SMs x 16 blocks, the paper's launch


# ---------------------------------------------------------------- compute ----
def test_compute_alu_time():
    env, dev, _ = make_device(num_sms=1, flops=100.0)
    (b,) = dev.allocate_blocks(1)

    def proc(env):
        yield from dev.compute(b, flops=50.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(0.5)  # 50 FLOP / 100 FLOP/s-per-SM


def test_compute_phases_serialize_on_same_sm():
    env, dev, _ = make_device(num_sms=1, max_blocks_per_sm=2, flops=100.0)
    b0, b1 = dev.allocate_blocks(2)
    done = []

    def proc(env, b):
        yield from dev.compute(b, flops=100.0)
        done.append(env.now)

    env.process(proc(env, b0))
    env.process(proc(env, b1))
    env.run()
    assert sorted(done) == [pytest.approx(1.0), pytest.approx(2.0)]


def test_compute_on_different_sms_is_parallel():
    env, dev, _ = make_device(num_sms=2, flops=200.0)
    b0, b1 = dev.allocate_blocks(2)
    done = []

    def proc(env, b):
        yield from dev.compute(b, flops=100.0)
        done.append(env.now)

    env.process(proc(env, b0))
    env.process(proc(env, b1))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]


def test_memory_bound_compute_releases_issue_unit():
    """A memory-bound phase must not hold the issue unit while streaming.

    With two resident blocks, block 0 runs a long memory-bound phase and
    block 1 a short ALU-only phase; block 1 must finish long before block 0.
    """
    env, dev, _ = make_device(num_sms=1, max_blocks_per_sm=2, flops=1e9,
                              mem_bandwidth=100.0, block_mem_bandwidth=100.0,
                              mem_latency=0.0)
    b0, b1 = dev.allocate_blocks(2)
    done = {}

    def memory_hog(env):
        yield from dev.compute(b0, flops=1.0, mem_bytes=1000.0)
        done["hog"] = env.now

    def quick(env):
        yield from dev.compute(b1, flops=1.0)
        done["quick"] = env.now

    env.process(memory_hog(env))
    env.process(quick(env))
    env.run()
    assert done["hog"] == pytest.approx(10.0, rel=1e-3)
    assert done["quick"] < 0.1  # not serialized behind the memory stream


def test_aggregate_memory_bandwidth_shared():
    env, dev, _ = make_device(num_sms=4, flops=1e15, mem_bandwidth=100.0,
                              block_mem_bandwidth=100.0, mem_latency=0.0)
    blocks = dev.allocate_blocks(4)
    done = []

    def proc(env, b):
        yield from dev.compute(b, mem_bytes=250.0)
        done.append(env.now)

    for b in blocks:
        env.process(proc(env, b))
    env.run()
    # 1000 bytes total through 100 B/s: all finish at t=10.
    assert max(done) == pytest.approx(10.0, rel=1e-3)


def test_single_block_memory_floor():
    env, dev, _ = make_device(num_sms=1, flops=1e15, mem_bandwidth=1000.0,
                              block_mem_bandwidth=10.0, mem_latency=0.0)
    (b,) = dev.allocate_blocks(1)

    def proc(env):
        yield from dev.compute(b, mem_bytes=100.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    # device link would take 0.1 s but the per-block floor is 10 s
    assert p.value == pytest.approx(10.0, rel=1e-3)


def test_compute_validation():
    env, dev, _ = make_device()
    (b,) = dev.allocate_blocks(1)

    def bad(env):
        yield from dev.compute(b, flops=-1.0)

    env.process(bad(env))
    with pytest.raises(ValueError):
        env.run()


# -------------------------------------------------------------------- copy ----
def test_copy_charges_read_plus_write():
    env, dev, _ = make_device(num_sms=1, mem_bandwidth=1e12,
                              block_mem_bandwidth=100.0, mem_latency=0.0)
    (b,) = dev.allocate_blocks(1)

    def proc(env):
        yield from dev.copy(b, nbytes=500.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(10.0, rel=1e-3)  # 2*500 B at 100 B/s


# -------------------------------------------------------------------- trace ----
def test_trace_records_compute_and_wait():
    env, dev, tracer = make_device(num_sms=1, flops=100.0)
    (b,) = dev.allocate_blocks(1)

    def proc(env):
        yield from dev.compute(b, flops=100.0, detail="phase1")
        ev = env.timeout(2.0)
        yield from dev.wait(b, ev, detail="halo")

    env.process(proc(env))
    env.run()
    kinds = [(iv.kind, iv.detail) for iv in tracer.by_actor(b.name)]
    assert kinds == [("compute", "phase1"), ("wait", "halo")]


def test_issue_use_occupies_sm():
    env, dev, tracer = make_device(num_sms=1, max_blocks_per_sm=2,
                                   flops=100.0)
    b0, b1 = dev.allocate_blocks(2)
    done = {}

    def matcher(env):
        yield from dev.issue_use(b0, 5.0, kind="match")
        done["match"] = env.now

    def computer(env):
        yield env.timeout(0.1)  # let the matcher grab the issue unit
        yield from dev.compute(b1, flops=100.0)
        done["compute"] = env.now

    env.process(matcher(env))
    env.process(computer(env))
    env.run()
    assert done["match"] == pytest.approx(5.0)
    assert done["compute"] == pytest.approx(6.0)  # serialized behind match
    assert tracer.by_kind("match")


# ------------------------------------------------------------------ cluster ----
def test_cluster_builds_nodes_and_fabric():
    cluster = Cluster(greina(4))
    assert cluster.num_nodes == 4
    assert len(cluster.nodes) == 4
    assert cluster.fabric.num_nodes == 4
    assert cluster.node(2).name == "node2"


def test_cluster_tracing_flag():
    assert not Cluster(greina(1)).tracer.enabled
    assert Cluster(greina(1, tracing=True)).tracer.enabled


def test_host_work_serializes_on_worker():
    cluster = Cluster(greina(1))
    node = cluster.node(0)
    env = cluster.env
    done = []

    def proc(env):
        yield from node.host_work(1.0)
        done.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(2.0)]
