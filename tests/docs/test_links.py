"""Intra-repo markdown link checker (the docs CI gate).

Walks ``docs/`` plus the top-level guides and verifies that every
relative markdown link resolves: the file exists, and when the link
carries a ``#fragment`` the target file contains a heading whose
GitHub-style anchor slug matches.  External (``http``/``https``/
``mailto``) links are out of scope — CI must not depend on the network.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
CHECKED = sorted(
    list((REPO / "docs").rglob("*.md"))
    + [REPO / "README.md", REPO / "DESIGN.md", REPO / "EXPERIMENTS.md"]
)

#: ``[text](target)`` — excludes images by stripping the leading ``!``.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, dash spaces.

    Emphasis markers (``*``, backticks) are stripped; literal underscores
    are *kept* — ``### `comm_size``` anchors as ``#comm_size``.
    """
    text = re.sub(r"[*`]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE_RE.sub("", path.read_text())
    slugs = set()
    counts = {}
    for match in HEADING_RE.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path):
    text = CODE_FENCE_RE.sub("", path.read_text())
    for match in LINK_RE.finditer(text):
        yield match.group(1)


def test_checked_set_is_nonempty():
    assert len(CHECKED) >= 7, [p.name for p in CHECKED]


@pytest.mark.parametrize("path", CHECKED, ids=lambda p: str(p.relative_to(REPO)))
def test_intra_repo_links_resolve(path):
    broken = []
    for link in iter_links(path):
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = link.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{link} -> missing file {target}")
                continue
        else:
            resolved = path
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                broken.append(f"{link} -> no heading with anchor "
                              f"#{fragment} in {resolved.name}")
    assert not broken, (
        f"{path.relative_to(REPO)} has {len(broken)} broken link(s):\n  "
        + "\n  ".join(broken))


def test_readme_links_into_docs():
    """The README must cross-link the docs site (the restructure gate)."""
    text = (REPO / "README.md").read_text()
    for target in ("docs/index.md", "docs/architecture.md",
                   "docs/faults.md"):
        assert target in text, f"README does not link {target}"
