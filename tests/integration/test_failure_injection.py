"""Integration: failure injection — misuse must fail loudly, not corrupt.

The launcher propagates any rank's exception out of ``launch`` and detects
deadlocks (rank processes that never complete once the event queue
drains)."""

import numpy as np
import pytest

from repro.dcuda import DCudaError, launch
from repro.hw import Cluster, greina


def test_deadlock_detected_missing_notification():
    """A rank waiting for a notification nobody sends deadlocks; launch
    reports it instead of returning silently."""

    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        if rank.world_rank == 0:
            yield from rank.wait_notifications(win, count=1)  # never comes
        yield from rank.finish()

    with pytest.raises(RuntimeError, match="deadlock"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=2)


def test_deadlock_detected_partial_collective():
    """A collective that only a subset of ranks enters never completes."""

    def kernel(rank):
        if rank.world_rank == 0:
            yield from rank.barrier()  # others skip it
        yield from rank.finish()

    with pytest.raises(RuntimeError, match="deadlock"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_remote_put_out_of_bounds_raises():
    buffers = {0: np.zeros(16), 1: np.zeros(4)}  # target smaller!

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 2, np.ones(8), tag=1)
            yield from rank.flush(win)
        yield from rank.barrier()
        yield from rank.finish()

    with pytest.raises(IndexError, match="out of bounds"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_shared_put_out_of_bounds_raises():
    buffers = {0: np.zeros(16), 1: np.zeros(4)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 2, np.ones(8), tag=1)
        yield from rank.finish()

    with pytest.raises(IndexError, match="out of bounds"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=2)


def test_dtype_mismatch_raises_distributed():
    buffers = {0: np.zeros(8), 1: np.zeros(8, dtype=np.float32)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(2), tag=1)
            yield from rank.flush(win)
        yield from rank.barrier()
        yield from rank.finish()

    with pytest.raises(TypeError, match="dtype"):
        launch(Cluster(greina(2)), kernel, ranks_per_device=1)


def test_dtype_mismatch_raises_shared():
    buffers = {0: np.zeros(8), 1: np.zeros(8, dtype=np.float32)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(2), tag=1)
        yield from rank.finish()

    with pytest.raises(TypeError, match="dtype"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=2)


def test_get_into_readonly_destination_rejected():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(8))
        dst = np.zeros(2)
        dst.flags.writeable = False
        yield from rank.get_notify(win, rank.world_rank, 0, dst)
        yield from rank.finish()

    with pytest.raises(ValueError, match="writeable"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_use_after_finish_rejected():
    def kernel(rank):
        yield from rank.finish()
        yield from rank.win_create(np.zeros(4))

    with pytest.raises(DCudaError, match="finished"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_double_finish_rejected():
    def kernel(rank):
        yield from rank.finish()
        yield from rank.finish()

    with pytest.raises((DCudaError, RuntimeError)):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_kernel_exception_propagates_with_original_type():
    class AppError(Exception):
        pass

    def kernel(rank):
        yield rank.env.timeout(1e-6)
        raise AppError("application bug")

    with pytest.raises(AppError, match="application bug"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_negative_offset_rejected():
    def kernel(rank):
        win = yield from rank.win_create(np.zeros(4))
        yield from rank.put_notify(win, rank.world_rank, -1, np.ones(1))
        yield from rank.finish()

    with pytest.raises(ValueError, match="negative"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)


def test_non_1d_window_buffer_rejected():
    def kernel(rank):
        yield from rank.win_create(np.zeros((2, 2)))
        yield from rank.finish()

    with pytest.raises(ValueError, match="1-D"):
        launch(Cluster(greina(1)), kernel, ranks_per_device=1)
