"""Observability must not perturb the simulation (the zero-cost contract).

Two gates:

1. **Golden timestamps with obs enabled.**  The same fixture the
   schedule-preservation test uses (captured with observability *off*)
   must be reproduced bit-for-bit with the whole layer *on* — tracer
   intervals, event-loop stats, link/queue series, latency histograms.
   ``==`` on IEEE-754 doubles, never ``pytest.approx``: the instruments
   only record at existing state-change points, so not a single event may
   move.

2. **Direct run comparison.**  One diffusion run with obs off and one
   with obs on must produce identical elapsed time, identical output
   field bits, and identical hardware counters (PCIe transactions, queue
   stats, link bytes).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from repro.bench.golden import GOLDEN_WORKLOADS
from repro.hw import Cluster, greina
from repro.obs import ObsConfig, force_enabled

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_timestamps.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("fig", sorted(GOLDEN_WORKLOADS))
def test_golden_timestamps_with_obs_enabled(fig, golden):
    """Fixture captured with obs off; workloads run with obs fully on."""
    with force_enabled():
        current = GOLDEN_WORKLOADS[fig]()
    expected = {k: v for k, v in golden.items() if k.startswith(fig + ".")}
    assert expected, f"fixture has no entries for {fig}; regenerate it"
    assert set(current) == set(expected)
    mismatches = {
        k: {"fixture": expected[k], "with_obs": current[k]}
        for k in expected if current[k] != expected[k]
    }
    assert not mismatches, (
        f"{len(mismatches)} simulated timestamp(s) moved with observability "
        f"enabled — an instrument is perturbing the schedule: {mismatches}")


def _run_diffusion(obs_cfg):
    cluster = Cluster(greina(2, obs=obs_cfg))
    wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
    elapsed, field, _ = run_dcuda_diffusion(cluster, wl, ranks_per_device=2)
    counters = {}
    for node in cluster.nodes:
        pcie = node.pcie
        counters[f"{node.name}.pcie.mapped_writes"] = pcie.mapped_writes
        counters[f"{node.name}.pcie.mapped_reads"] = pcie.mapped_reads
        counters[f"{node.name}.pcie.dma_bytes"] = pcie.dma_bytes
        counters[f"{node.name}.mem.bytes"] = \
            node.device.memory.bytes_transferred
    return elapsed, field, counters


def test_obs_on_off_runs_are_bit_identical():
    base_elapsed, base_field, base_counters = _run_diffusion(
        ObsConfig(enabled=False))
    obs_elapsed, obs_field, obs_counters = _run_diffusion(
        ObsConfig(enabled=True))
    assert obs_elapsed == base_elapsed
    assert np.array_equal(obs_field, base_field)
    assert obs_counters == base_counters


def test_obs_run_actually_recorded():
    """Guard against the trivial pass: obs-on must populate the registry."""
    cluster = Cluster(greina(2, obs=ObsConfig(enabled=True)))
    wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
    run_dcuda_diffusion(cluster, wl, ranks_per_device=2)
    reg = cluster.obs.registry
    names = reg.names()
    assert any(n.startswith("queue.") for n in names)
    assert any(n.startswith("link.") for n in names)
    assert any(n.startswith("bm.cmd.") for n in names)
    assert "ntf.match_pass" in reg
    assert cluster.env.stats is not None
    assert cluster.env.stats.events > 0
    assert cluster.tracer.enabled and len(cluster.tracer.intervals) > 0


def test_activity_rollup_and_overlap_rows_agree():
    """The per-block rollup, the tracer, and the report see one trace."""
    cluster = Cluster(greina(2, obs=ObsConfig(enabled=True)))
    wl = DiffusionWorkload(ni=8, nj_per_device=4, nk=2, steps=2)
    run_dcuda_diffusion(cluster, wl, ranks_per_device=2)
    from repro.obs import overlap_rows
    rows = {row.actor: row for row in overlap_rows(cluster.tracer)}
    assert len(rows) == 4  # 2 nodes x 2 ranks
    for node in cluster.nodes:
        rollup = node.device.activity_rollup()
        assert set(rollup) == {b.name for b in node.device.blocks}
        for actor, kinds in rollup.items():
            row = rows[actor]
            assert kinds["comm"] == row.comm
            assert kinds["wait"] == row.wait
            # row.compute is the *union* of compute+match intervals: at
            # least the larger kind, at most the sum of both.
            assert max(kinds["compute"], kinds["match"]) - 1e-15 \
                <= row.compute <= kinds["compute"] + kinds["match"] + 1e-15
            assert 0.0 <= row.hidden <= row.comm + row.wait + 1e-12


def test_force_enabled_restores_default():
    from repro.obs.config import default_obs
    assert not default_obs().enabled
    with force_enabled():
        assert default_obs().enabled
    assert not default_obs().enabled
