"""Golden simulated-timestamp regression (the schedule-preservation gate).

The fixture ``tests/fixtures/golden_timestamps.json`` was captured from
miniature instances of every figure workload *before* the simulator
performance work (virtual-time fair-share links, bare-delay sleep lane,
deferred-call lane, store/semaphore fast paths).  Every optimization of
the event loop must keep each simulated timestamp **exactly** equal —
``==`` on IEEE-754 doubles, never ``pytest.approx`` — because the
optimizations are pure scheduling-cost changes with a schedule-equivalence
argument, not model changes.

If an *intentional* model change moves timestamps, regenerate with::

    PYTHONPATH=src python -m repro.bench.golden \
        tests/fixtures/golden_timestamps.json

and justify the regeneration in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.bench.golden import GOLDEN_WORKLOADS

FIXTURE = Path(__file__).parent.parent / "fixtures" / "golden_timestamps.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("fig", sorted(GOLDEN_WORKLOADS))
def test_golden_timestamps_exact(fig, golden):
    current = GOLDEN_WORKLOADS[fig]()
    expected = {k: v for k, v in golden.items() if k.startswith(fig + ".")}
    assert expected, f"fixture has no entries for {fig}; regenerate it"
    assert set(current) == set(expected)
    mismatches = {
        k: {"fixture": expected[k], "current": current[k]}
        for k in expected if current[k] != expected[k]
    }
    assert not mismatches, (
        f"{len(mismatches)} simulated timestamp(s) moved — the event-loop "
        f"change is not schedule-preserving: {mismatches}")


def test_fixture_covers_every_workload(golden):
    prefixes = {k.split(".", 1)[0] for k in golden}
    assert prefixes == set(GOLDEN_WORKLOADS)
