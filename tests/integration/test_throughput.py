"""Integration: throughput properties the paper's design targets.

§III-C: "Due to the Little's law assumption, we rather focus on throughput
than on latency optimizations."  These tests verify the throughput side:
pipelined puts sustain far higher rates than the ping-pong latency would
suggest, and aggregate bandwidth scales with concurrent rank pairs.
"""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina


def test_pipelined_puts_beat_pingpong_rate():
    """N back-to-back notified puts complete far faster than N
    latency-bound round trips."""
    n_puts = 64
    buffers = {r: np.zeros(n_puts) for r in range(2)}
    times = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            t0 = rank.now
            for i in range(n_puts):
                yield from rank.put_notify(win, 1, i, np.full(1, 1.0),
                                           tag=1)
            yield from rank.flush(win)
            times["burst"] = rank.now - t0
        else:
            yield from rank.wait_notifications(win, tag=1, count=n_puts)
        yield from rank.finish()

    launch(Cluster(greina(2)), kernel, ranks_per_device=1)
    per_put = times["burst"] / n_puts
    # Ping-pong latency is ~9.4 us; the pipelined rate must be at least
    # 4x better per operation.
    assert per_put < 9.4e-6 / 4


def test_aggregate_bandwidth_scales_with_pairs():
    """Multiple same-device rank pairs moving data concurrently achieve
    higher aggregate throughput than a single pair (until the device
    memory saturates)."""
    nbytes = 256 * 1024

    def run(pairs):
        buffers = {r: np.zeros(nbytes, dtype=np.uint8)
                   for r in range(2 * pairs)}
        times = {}

        def kernel(rank):
            r = rank.world_rank
            win = yield from rank.win_create(buffers[r])
            yield from rank.barrier()
            if r % 2 == 0:
                t0 = rank.now
                yield from rank.put_notify(win, r + 1, 0, buffers[r],
                                           tag=1)
                yield from rank.flush(win)
                times[r] = rank.now - t0
            else:
                yield from rank.wait_notifications(win, tag=1, count=1)
            yield from rank.finish()

        launch(Cluster(greina(1)), kernel, ranks_per_device=2 * pairs)
        return pairs * nbytes / max(times.values())

    bw1 = run(1)
    bw8 = run(8)
    # Eight concurrent single-block copies aggregate well beyond one
    # block's ceiling (but below the device bandwidth).
    assert bw8 > 4 * bw1
    assert bw8 < greina().gpu.mem_bandwidth


def test_notification_rate_sustained_by_matcher():
    """The matcher keeps up with a notification flood from many sources."""
    senders = 12
    buffers = {r: np.zeros(senders + 1) for r in range(senders + 1)}
    times = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        if r == 0:
            t0 = rank.now
            yield from rank.wait_notifications(win, tag=3, count=4 * senders)
            times["drain"] = rank.now - t0
        else:
            for _ in range(4):
                yield from rank.put_notify(win, 0, r, np.full(1, 1.0),
                                           tag=3)
        yield from rank.finish()

    launch(Cluster(greina(1)), kernel, ranks_per_device=senders + 1)
    per_notification = times["drain"] / (4 * senders)
    assert per_notification < 5e-6
