"""Integration: flow control under pressure.

Tiny queues force credit-based flow control to engage everywhere
(commands, acks, notifications); everything must still complete correctly.
"""

import dataclasses

import numpy as np
import pytest

from repro.apps.stencil2d import (
    Stencil2DWorkload,
    reference,
    run_dcuda_stencil2d,
)
from repro.dcuda import launch
from repro.hw import Cluster, greina


def tiny_queue_cfg(nodes, queue_size=2):
    cfg = greina(nodes)
    return dataclasses.replace(
        cfg, devicelib=dataclasses.replace(cfg.devicelib,
                                           queue_size=queue_size))


def test_put_burst_through_tiny_queues():
    cfg = tiny_queue_cfg(2, queue_size=2)
    cluster = Cluster(cfg)
    buffers = {r: np.zeros(64) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            for i in range(32):
                yield from rank.put_notify(win, 1, i, np.full(1, float(i)),
                                           tag=1)
            yield from rank.flush(win)
        else:
            yield from rank.wait_notifications(win, source=0, tag=1,
                                               count=32)
        yield from rank.finish()

    res = launch(cluster, kernel, ranks_per_device=1)
    np.testing.assert_array_equal(buffers[1][:32], np.arange(32.0))
    # Flow control actually engaged on the sender's command queue.
    reloads = res.runtime.state_of(0).cmd_queue.stats.credit_reloads
    assert reloads > 0


def test_notification_queue_backpressure():
    """Many unconsumed notifications fill the 2-entry notification queue;
    the block managers must stall and recover once the rank drains."""
    cfg = tiny_queue_cfg(1, queue_size=2)
    cluster = Cluster(cfg)
    buffers = {r: np.zeros(64) for r in range(2)}
    out = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            for i in range(24):
                yield from rank.put_notify(win, 1, i, np.full(1, 1.0),
                                           tag=1)
            yield from rank.flush(win)
        else:
            # Drain late and in chunks, so the queue repeatedly fills.
            yield rank.env.timeout(1e-3)
            got = 0
            while got < 24:
                n = yield from rank.test_notifications(win, tag=1, count=8)
                got += n
                yield rank.env.timeout(5e-5)
            out["got"] = got
        yield from rank.finish()

    res = launch(cluster, kernel, ranks_per_device=2)
    assert out["got"] == 24
    # The producer side must have stalled on the full notification queue.
    stalls = sum(st.notif_queue.stats.full_stalls
                 for st in res.runtime.systems[0].states)
    assert stalls > 0


def test_stencil_correct_with_tiny_queues():
    wl = Stencil2DWorkload(ni=8, nj_per_device=8, steps=4)
    cluster = Cluster(tiny_queue_cfg(2, queue_size=2))
    _, result, _ = run_dcuda_stencil2d(cluster, wl, 4)
    np.testing.assert_allclose(result, reference(wl, 2), rtol=1e-12)


def test_timing_degrades_gracefully_with_tiny_queues():
    """Small queues are slower (reload PCIe reads) but not catastrophically
    so — flow control must not livelock."""
    wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=4)
    t_small, _, _ = run_dcuda_stencil2d(
        Cluster(tiny_queue_cfg(2, queue_size=2)), wl, 4)
    t_big, _, _ = run_dcuda_stencil2d(
        Cluster(tiny_queue_cfg(2, queue_size=256)), wl, 4)
    assert t_small >= t_big
    assert t_small < 10 * t_big
