"""Integration: mixed and repeated workloads on shared infrastructure."""

import numpy as np
import pytest

from repro.apps.diffusion import (
    DiffusionWorkload,
    reference as diffusion_ref,
    run_dcuda_diffusion,
)
from repro.apps.spmv import SpmvWorkload, reference as spmv_ref, run_dcuda_spmv
from repro.apps.stencil2d import (
    Stencil2DWorkload,
    reference as stencil_ref,
    run_dcuda_stencil2d,
)
from repro.dcuda import launch
from repro.hw import Cluster, greina


def test_repeated_launches_on_fresh_clusters_are_identical():
    """Determinism across runs: the same program on a fresh cluster takes
    exactly the same simulated time and produces identical data."""
    wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=3)
    t1, out1, _ = run_dcuda_stencil2d(Cluster(greina(2)), wl, 2)
    t2, out2, _ = run_dcuda_stencil2d(Cluster(greina(2)), wl, 2)
    assert t1 == t2
    np.testing.assert_array_equal(out1, out2)


def test_sequential_apps_share_nothing():
    """Running three different apps back to back must not leak state."""
    swl = Stencil2DWorkload(ni=12, nj_per_device=6, steps=2)
    dwl = DiffusionWorkload(ni=8, nj_per_device=6, nk=2, steps=2)
    mwl = SpmvWorkload(n_per_device=16, density=0.2, iters=1)

    _, a, _ = run_dcuda_stencil2d(Cluster(greina(2)), swl, 2)
    _, b, _ = run_dcuda_diffusion(Cluster(greina(2)), dwl, 2)
    _, c, _ = run_dcuda_spmv(Cluster(greina(4)), mwl, 2)

    np.testing.assert_allclose(a, stencil_ref(swl, 2), rtol=1e-12)
    np.testing.assert_allclose(b, diffusion_ref(dwl, 2), rtol=1e-12)
    np.testing.assert_allclose(c, spmv_ref(mwl, 4), rtol=1e-9)


def test_two_kernels_same_cluster_sequentially():
    """A second dCUDA launch on the SAME cluster must fail loudly (blocks
    already resident) rather than corrupt the first runtime's state."""
    cluster = Cluster(greina(1))

    def kernel(rank):
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=104)
    with pytest.raises(ValueError, match="in-flight limit"):
        launch(cluster, kernel, ranks_per_device=208)


def test_config_overrides_flow_through():
    """Config overrides visibly change behaviour end to end."""
    import dataclasses

    wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=3)
    fast = greina(2)
    slow = dataclasses.replace(
        fast, fabric=dataclasses.replace(fast.fabric, latency=50e-6))
    t_fast, _, _ = run_dcuda_stencil2d(Cluster(fast), wl, 2)
    t_slow, _, _ = run_dcuda_stencil2d(Cluster(slow), wl, 2)
    assert t_slow > t_fast


def test_tracing_does_not_change_timing():
    wl = Stencil2DWorkload(ni=16, nj_per_device=8, steps=3)
    t_off, _, _ = run_dcuda_stencil2d(Cluster(greina(2)), wl, 2)
    t_on, _, _ = run_dcuda_stencil2d(Cluster(greina(2, tracing=True)),
                                     wl, 2)
    assert t_on == t_off
