"""Smoke tests: every example script must run to completion.

Every script honours ``REPRO_TINY=1`` — a shrunk workload (fewer steps,
smaller grids, less over-subscription) that exercises the same code path
in a few seconds, which is what keeps this file inside the tier-1 budget.
The scripts' default (paper-scale) configurations are covered by the
figure benchmarks, not here.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_tiny(script):
    env = dict(os.environ, REPRO_TINY="1")
    proc = subprocess.run([sys.executable, str(script)], env=env,
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "stencil_halo_exchange", "particle_cloud",
            "spmv_power_method", "schedule_trace", "fig2_listing",
            "topology_tour", "gemm_pipeline", "train_step"} <= names


def test_examples_declare_tiny_knob():
    """Every example must honour the REPRO_TINY smoke-test contract."""
    for script in EXAMPLES:
        assert "REPRO_TINY" in script.read_text(), script.name
