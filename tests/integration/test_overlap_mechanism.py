"""Integration: the latency-hiding mechanism itself, proven from traces.

The paper's claim is *structural*: when a block waits for communication,
the hardware scheduler runs other blocks, so communication waits overlap
computation.  These tests launch real kernels with tracing enabled and
measure the overlap directly from the recorded activity intervals.
"""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina
from repro.sim import overlap_time


def halo_kernel(rank, steps, mem_bytes, buffers):
    size = rank.comm_size()
    r = rank.world_rank
    win = yield from rank.win_create(buffers[r])
    yield from rank.barrier()
    data = buffers[r][:1024]
    lsend, rsend = r - 1 >= 0, r + 1 < size
    for _ in range(steps):
        yield from rank.compute(mem_bytes=mem_bytes, detail="work")
        if lsend:
            yield from rank.put_notify(win, r - 1, 1024, data, tag=1)
        if rsend:
            yield from rank.put_notify(win, r + 1, 1024, data, tag=1)
        yield from rank.wait_notifications(win, tag=1, count=lsend + rsend)
    yield from rank.finish()


def run_traced(nodes, rpd, steps=10, mem_bytes=400e3):
    cluster = Cluster(greina(nodes, tracing=True))
    buffers = {r: np.zeros(2048, dtype=np.uint8)
               for r in range(nodes * rpd)}
    launch(cluster, halo_kernel, rpd,
           kernel_args={"steps": steps, "mem_bytes": mem_bytes,
                        "buffers": buffers})
    return cluster


def wait_coverage(cluster, block_actor):
    """Fraction of *block_actor*'s wait time covered by OTHER blocks'
    compute on the same device."""
    tr = cluster.tracer
    device = block_actor.rsplit(".", 1)[0] + "."
    waits = [(iv.start, iv.end) for iv in tr.intervals
             if iv.kind == "wait" and iv.actor == block_actor]
    other_compute = [(iv.start, iv.end) for iv in tr.intervals
                     if iv.kind == "compute"
                     and iv.actor.startswith(device)
                     and iv.actor != block_actor]
    total = sum(e - s for s, e in waits)
    assert total > 0, f"{block_actor} never waited"
    return overlap_time(waits, other_compute) / total


def test_waits_overlap_with_other_blocks_compute():
    """With 2 blocks/SM, most of a block's wait time coincides with other
    blocks' compute on the same device."""
    cluster = run_traced(nodes=2, rpd=26)
    assert wait_coverage(cluster, "node0.gpu.b0") > 0.75


def test_oversubscription_improves_wait_coverage():
    """Same total device workload, different over-subscription: the
    over-subscribed run hides a strictly larger share of the waits."""
    over = run_traced(nodes=2, rpd=26, mem_bytes=400e3)
    flat = run_traced(nodes=2, rpd=13, mem_bytes=800e3)
    cov_over = wait_coverage(over, "node0.gpu.b0")
    cov_flat = wait_coverage(flat, "node0.gpu.b0")
    assert cov_over > cov_flat + 0.1


def test_device_memory_not_idle_during_boundary_waits():
    """Device-level view: during the cross-device halo waits of the
    boundary block, the device keeps computing."""
    cluster = run_traced(nodes=2, rpd=26, steps=20)
    assert wait_coverage(cluster, "node0.gpu.b25") > 0.7


def test_boundary_blocks_wait_longer_than_interior():
    """Cross-device notifications take the network path: the device-
    boundary block accumulates more wait time than interior blocks."""
    cluster = run_traced(nodes=2, rpd=26, steps=20)
    tr = cluster.tracer

    def total_wait(actor):
        return sum(iv.duration for iv in tr.intervals
                   if iv.kind == "wait" and iv.actor == actor)

    boundary = total_wait("node0.gpu.b25")   # talks to node1.b0
    interior = total_wait("node0.gpu.b12")
    assert boundary > interior
