"""Integration: the paper's measurement methodology (§IV-A), end to end.

"We time multiple iterations and subtract the setup time estimated by
running zero iterations ... we repeat each time measurement multiple times
and compute the median and the nonparametric confidence interval."
"""

import numpy as np
import pytest

from repro.apps.particles import ParticleWorkload, run_dcuda_particles
from repro.bench import run_overlap, summarize
from repro.hw import Cluster, greina


def test_zero_iteration_subtraction():
    """Setup cost (window creation, barrier) is measurable and the
    loop-only timing methodology removes it: the zero-step run costs
    noticeably more than the incremental per-step cost."""
    def total_time(steps):
        # Full launch duration includes setup.
        wl = ParticleWorkload(cells_per_node=8, particles_per_node=32,
                              steps=steps)
        elapsed, _, _ = run_dcuda_particles(Cluster(greina(2)), wl, 2)
        return elapsed

    t2 = total_time(2)
    t4 = total_time(4)
    per_step = (t4 - t2) / 2
    setup = t2 - 2 * per_step
    assert setup > 0
    assert setup > per_step  # setup dominates a single step here


def test_loop_only_timing_excludes_setup():
    """The overlap driver times only the iteration loop: doubling the
    steps doubles the reported time almost exactly (no setup offset)."""
    t10 = run_overlap("copy", 32, True, False, steps=10, num_nodes=1,
                      ranks_per_device=4).elapsed
    t20 = run_overlap("copy", 32, True, False, steps=20, num_nodes=1,
                      ranks_per_device=4).elapsed
    assert t20 == pytest.approx(2 * t10, rel=0.02)


def test_median_ci_workflow_over_seeded_runs():
    """The paper's 20-measurement median/CI workflow applied to seeded
    workload variations."""
    samples = []
    for seed in range(8):
        wl = ParticleWorkload(cells_per_node=8,
                              particles_per_node=32 + seed, steps=2)
        elapsed, _, _ = run_dcuda_particles(Cluster(greina(1)), wl, 2)
        samples.append(elapsed)
    m = summarize(samples)
    lo, hi = m.ci95
    assert lo <= m.median <= hi
    assert hi < 2 * lo  # the measurements are in the same ballpark


def test_determinism_gives_zero_width_ci_for_fixed_workload():
    wl = ParticleWorkload(cells_per_node=8, particles_per_node=32, steps=2)
    samples = [run_dcuda_particles(Cluster(greina(1)), wl, 2)[0]
               for _ in range(5)]
    m = summarize(samples)
    assert m.ci95 == (m.median, m.median)
