"""Bit-exact determinism of the simulator.

The scheduler orders events by ``(time, priority, sequence)`` with a
deterministic sequence allocation, so running the same workload twice in
fresh environments must reproduce *everything* exactly: the final
simulated time, every activity-trace interval, the numeric output
fields, and the hardware/runtime counters.  Any divergence means a
nondeterministic data structure snuck into the model (set iteration,
id-keyed dicts, wall-clock leakage).
"""

import numpy as np

from repro.apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from repro.hw import Cluster, greina

WL = DiffusionWorkload(ni=8, nj_per_device=8, nk=2, steps=3)
NODES = 2
RANKS = 4


def _run():
    """One full traced run in a fresh environment; returns observables."""
    cluster = Cluster(greina(NODES, tracing=True))
    elapsed, out, res = run_dcuda_diffusion(cluster, WL, RANKS)
    counters = {
        "pcie": [(n.pcie.mapped_writes, n.pcie.mapped_reads,
                  n.pcie.dma_copies, n.pcie.dma_bytes)
                 for n in cluster.nodes],
        "nic": [cluster.fabric.nic_stats(i) for i in range(NODES)],
        "queues": [
            (s.cmd_queue.stats.enqueues, s.cmd_queue.stats.dequeues,
             s.notif_queue.stats.enqueues, s.notif_queue.stats.dequeues,
             s.ack_queue.stats.enqueues, s.ack_queue.stats.dequeues)
            for system in res.runtime.systems for s in system.states
        ],
    }
    return elapsed, out, list(cluster.tracer.intervals), counters


def test_identical_runs_are_bit_identical():
    elapsed_a, out_a, trace_a, counters_a = _run()
    elapsed_b, out_b, trace_b, counters_b = _run()

    # End-to-end simulated time: exact float equality, not approx.
    assert elapsed_a == elapsed_b

    # Numeric output fields agree to the bit.
    assert np.array_equal(out_a, out_b)

    # Activity traces: same intervals, same order.
    assert len(trace_a) == len(trace_b)
    assert trace_a == trace_b

    # Hardware and runtime counters.
    assert counters_a == counters_b


def test_trace_and_counters_are_populated():
    """Sanity on the observables the determinism check relies on —
    an empty trace or all-zero counters would make it vacuous."""
    _elapsed, _out, trace, counters = _run()
    assert trace, "tracing enabled but no intervals recorded"
    assert all(iv.end >= iv.start for iv in trace)
    assert any(q[0] > 0 for q in counters["queues"])
    assert any(w > 0 for w, _r, _c, _b in counters["pcie"])
