"""Integration: the notified-put control flow of the paper's Fig. 5,
verified step by step from runtime counters.

For a single distributed put the paper's sequence implies exact hardware
transaction counts:

1. origin device enqueues the command     -> 1 PCIe posted write (origin)
2. origin BM isends meta + payload        -> 2 fabric messages
3. local completion updates flush counter -> 1 PCIe posted write (origin)
4/5. target EH dispatches to target BM
6/7. payload receive -> notification      -> 1 PCIe posted write (target)
"""

import numpy as np
import pytest

from repro.dcuda import launch
from repro.hw import Cluster, greina


def run_single_put(notify=True):
    cluster = Cluster(greina(2))
    buffers = {r: np.zeros(4) for r in range(2)}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put_notify(win, 1, 0, np.ones(2), tag=1,
                                       notify=notify)
            yield from rank.flush(win)
        elif notify:
            yield from rank.wait_notifications(win, tag=1, count=1)
        # No barrier/finish noise in the middle: snapshot counters now.
        counters["origin_writes"] = cluster.node(0).pcie.mapped_writes
        counters["target_writes"] = cluster.node(1).pcie.mapped_writes
        counters[f"done_{r}"] = True
        yield from rank.barrier()
        yield from rank.finish()

    counters = {}
    launch(cluster, kernel, ranks_per_device=1)
    return cluster, counters


def test_fabric_carries_meta_plus_payload():
    cluster, _ = run_single_put()
    # Origin node injected: meta + payload (+ finish/barrier control later;
    # count only node0->node1 app-phase traffic via bytes).
    stats = cluster.fabric.nic_stats(0)
    # meta (64 B) + payload (16 B) + barrier/finish sync tokens (32 B each).
    assert stats["messages"] >= 2
    payload_and_meta = 64.0 + 16.0
    assert stats["bytes"] >= payload_and_meta


def test_pcie_transaction_budget():
    """The put costs a bounded, small number of PCIe transactions — the
    §III-C design goal of one transaction per queue operation."""
    cluster, counters = run_single_put()
    # Origin: win_create cmd + ack + put cmd + flush-counter update +
    # (later) barrier/finish traffic.  At the snapshot point the put path
    # itself must have cost <= 6 posted writes.
    assert counters["origin_writes"] <= 6
    # Target: win_create cmd + ack + 1 notification.
    assert counters["target_writes"] <= 4


def test_unnotified_put_skips_notification_write():
    """End-of-run totals differ by exactly the one notification write
    (the waiting rank is removed from both variants so the only delta is
    the notification itself)."""
    def total_target_writes(notify):
        cluster = Cluster(greina(2))
        buffers = {r: np.zeros(4) for r in range(2)}

        def kernel(rank):
            r = rank.world_rank
            win = yield from rank.win_create(buffers[r])
            if r == 0:
                yield from rank.put_notify(win, 1, 0, np.ones(2), tag=1,
                                           notify=notify)
                yield from rank.flush(win)
            yield from rank.barrier()
            yield from rank.finish()

        launch(cluster, kernel, ranks_per_device=1)
        return cluster.node(1).pcie.mapped_writes

    assert total_target_writes(True) - total_target_writes(False) == 1


def test_flush_counter_reaches_device():
    cluster = Cluster(greina(2))
    buffers = {r: np.zeros(4) for r in range(2)}
    seen = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        if r == 0:
            yield from rank.put(win, 1, 0, np.ones(2))
            yield from rank.put(win, 1, 2, np.ones(2))
            yield from rank.flush(win)
            seen["counter"] = rank.state.flush_counter
            seen["issued"] = rank.state.next_flush_id - 1
        yield from rank.barrier()
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=1)
    assert seen["counter"] == seen["issued"] == 2
