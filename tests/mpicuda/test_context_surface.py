"""Remaining MPICudaContext surface: scatter-like wrappers, properties."""

import numpy as np
import pytest

from repro.hw import Cluster, greina
from repro.mpicuda import MPICudaContext, run_mpicuda


def test_context_identity_properties():
    cluster = Cluster(greina(3))
    seen = {}

    def program(ctx):
        seen[ctx.rank] = (ctx.size, ctx.now)
        yield ctx.env.timeout(0.0)

    run_mpicuda(cluster, program)
    assert set(seen) == {0, 1, 2}
    assert all(size == 3 for size, _ in seen.values())


def test_bcast_reduce_wrappers():
    cluster = Cluster(greina(4))
    out = {}

    def program(ctx):
        val = yield from ctx.bcast(np.full(2, 7.0) if ctx.rank == 0
                                   else None, root=0)
        total = yield from ctx.reduce(val + ctx.rank, op=np.add, root=0)
        if ctx.rank == 0:
            out["total"] = total

    run_mpicuda(cluster, program)
    # sum over ranks of (7 + rank) = 4*7 + 6 = 34 per element
    np.testing.assert_array_equal(out["total"], [34.0, 34.0])


def test_allgather_wrapper():
    cluster = Cluster(greina(3))
    out = {}

    def program(ctx):
        vals = yield from ctx.allgather(ctx.rank * 2, nbytes=8)
        out[ctx.rank] = vals

    run_mpicuda(cluster, program)
    assert all(v == [0, 2, 4] for v in out.values())


def test_program_exception_propagates():
    cluster = Cluster(greina(1))

    def program(ctx):
        yield ctx.env.timeout(1e-6)
        raise KeyError("app bug")

    with pytest.raises(KeyError, match="app bug"):
        run_mpicuda(cluster, program)


def test_launch_with_zero_work_blocks_rejected():
    cluster = Cluster(greina(1))

    def program(ctx):
        yield from ctx.launch(0)

    with pytest.raises(ValueError, match="nblocks"):
        run_mpicuda(cluster, program)


def test_memcpy_returns_fn_result():
    cluster = Cluster(greina(1))
    out = {}

    def program(ctx):
        val = yield from ctx.memcpy(128.0, fn=lambda: "copied")
        out["val"] = val

    run_mpicuda(cluster, program)
    assert out["val"] == "copied"
