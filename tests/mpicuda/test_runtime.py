"""Unit tests for the MPI-CUDA baseline model."""

import numpy as np
import pytest

from repro.hw import Cluster, greina
from repro.mpicuda import run_mpicuda
from repro.sim import Environment
from repro.hw.gpu import Device
from repro.hw.config import GPUConfig


def test_bulk_compute_time_scales_with_blocks():
    env = Environment()
    cfg = GPUConfig(num_sms=2, flops=200.0, mem_bandwidth=1e12,
                    mem_latency=0.0)
    dev = Device(env, cfg)

    def proc(env):
        # 4 blocks x 100 FLOP over 2 SMs at 100 FLOP/s per SM:
        # 2 blocks per SM -> 2 s.
        yield from dev.bulk_compute(4, flops_per_block=100.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(2.0)


def test_bulk_compute_memory_bound_uses_aggregate_bandwidth():
    env = Environment()
    cfg = GPUConfig(num_sms=4, flops=1e15, mem_bandwidth=100.0,
                    mem_latency=0.0, block_mem_bandwidth=1.0)
    dev = Device(env, cfg)

    def proc(env):
        # 8 blocks x 100 B = 800 B through 100 B/s aggregate -> 8 s;
        # the single-block floor must NOT apply to fork-join kernels.
        yield from dev.bulk_compute(8, mem_bytes_per_block=100.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == pytest.approx(8.0, rel=1e-2)


def test_bulk_compute_validation():
    env = Environment()
    dev = Device(env, GPUConfig())

    def bad(env):
        yield from dev.bulk_compute(0)

    env.process(bad(env))
    with pytest.raises(ValueError):
        env.run()


def test_launch_charges_launch_latency():
    cluster = Cluster(greina(1))
    out = {}

    def program(ctx):
        t0 = ctx.now
        val = yield from ctx.launch(1, fn=lambda: "ran")
        out["dt"] = ctx.now - t0
        out["val"] = val

    run_mpicuda(cluster, program)
    assert out["val"] == "ran"
    assert out["dt"] >= cluster.cfg.gpu.launch_latency


def test_memcpy_uses_dma():
    cluster = Cluster(greina(1))

    def program(ctx):
        yield from ctx.memcpy(1 << 20)

    run_mpicuda(cluster, program)
    assert cluster.node(0).pcie.dma_copies == 1


def test_two_sided_exchange_between_nodes():
    cluster = Cluster(greina(2))
    received = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, np.arange(4, dtype=np.float64), tag=3)
        else:
            msg = yield from ctx.recv(source=0, tag=3)
            received["data"] = msg.payload

    run_mpicuda(cluster, program)
    np.testing.assert_array_equal(received["data"], np.arange(4))


def test_collectives_through_context():
    cluster = Cluster(greina(4))
    sums = {}

    def program(ctx):
        total = yield from ctx.allreduce(np.array([float(ctx.rank)]),
                                         op=np.add)
        yield from ctx.barrier()
        sums[ctx.rank] = float(total[0])

    run_mpicuda(cluster, program)
    assert all(v == 6.0 for v in sums.values())


def test_no_overlap_by_construction():
    """The defining property of the baseline: compute and exchange times
    add up (device idles during MPI)."""
    cfg = greina(2)
    compute_work = 1e8  # FLOP per block

    def timed(do_compute, do_exchange):
        cluster = Cluster(cfg)
        times = {}

        def program(ctx):
            peer = 1 - ctx.rank
            t0 = ctx.now
            for _ in range(5):
                if do_compute:
                    yield from ctx.launch(26, flops_per_block=compute_work)
                if do_exchange:
                    ctx.isend(peer, None, tag=1, nbytes=64 << 10)
                    yield from ctx.recv(source=peer, tag=1)
            times[ctx.rank] = ctx.now - t0

        run_mpicuda(cluster, program)
        return max(times.values())

    both = timed(True, True)
    comp = timed(True, False)
    exch = timed(False, True)
    # Sequential model: both ~= comp + exch (within 10%).
    assert both == pytest.approx(comp + exch, rel=0.10)


def test_result_contains_all_nodes():
    cluster = Cluster(greina(3))

    def program(ctx):
        yield from ctx.loop_overhead()
        return ctx.rank * 2

    res = run_mpicuda(cluster, program)
    assert res.results == [0, 2, 4]
    assert res.elapsed > 0
