"""The fault plane: one deterministic oracle the whole stack queries.

A :class:`FaultPlane` rides on the :class:`~repro.hw.cluster.Cluster`
(``cluster.faults``) and is threaded through the hardware and runtime
layers at construction time, exactly like the observability handle.  Hot
paths hold ``None`` when no plane exists, so the disabled cost is one
attribute check.

The plane expands its schedule — the explicit :class:`~repro.faults.
config.FaultEvent` tuple plus, when ``seed`` is set, a deterministic
random plan — *once*, at build time.  After that every query is a pure
lookup over a handful of precomputed windows; no RNG is consulted during
the run, so identical ``(config, workload)`` pairs inject identical fault
sequences at identical simulated times.

Query hooks come in two flavours:

* **window queries** (``degrade_factor``, ``block_stall_factor``,
  ``credit_starved``, ``partition_hold``) — pure functions of
  ``(site, now)``; asking twice gives the same answer;
* **consuming queries** (``queue_drop``, ``queue_dup``, ``loss_retries``)
  — each hit decrements the event's remaining ``count``, so a burst of
  *n* losses hits exactly *n* operations.  Call sites query exactly once
  per operation.

Every injection is recorded: an ``injections[(kind, site)]`` counter, a
bounded in-order log for the fault report, and (when observability is on)
``faults.<kind>`` counters in the metrics registry so injected faults are
visible next to the runtime's own counters.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from .config import FaultEvent, FaultsConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..sim import Environment

__all__ = ["FaultPlane"]

#: Cap on the in-order injection log (the counters are unbounded).
_LOG_CAP = 200


class _Window:
    """One expanded schedule entry with its mutable remaining budget."""

    __slots__ = ("kind", "start", "end", "target", "factor", "remaining")

    def __init__(self, ev: FaultEvent):
        self.kind = ev.kind
        self.start = ev.start
        self.end = ev.start + ev.duration
        self.target = ev.target
        self.factor = ev.factor
        self.remaining = ev.count

    def active(self, now: float) -> bool:
        return self.start <= now <= self.end

    def armed(self, now: float) -> bool:
        """Discrete faults stay armed past ``end`` until the burst is spent
        (a zero-duration drop must still hit the *next* matching commit)."""
        return now >= self.start and self.remaining > 0


def _matches(target: Optional[Union[str, int]], name: str) -> bool:
    """Does a window's target select the component called ``name``?

    ``None`` selects everything; a string selects by exact name or
    substring; an int ``r`` selects queues of world rank *r* (names ending
    ``:r<r>``) and components of node *r* (names containing ``node<r>``).
    """
    if target is None:
        return True
    if isinstance(target, int):
        return name.endswith(f":r{target}") or f"node{target}" in name
    return target == name or target in name


def _node_matches(target: Optional[Union[str, int]], src: int,
                  dst: int) -> bool:
    """Does a window's target select the wire transfer ``src -> dst``?"""
    if target is None:
        return True
    if isinstance(target, int):
        return target in (src, dst)
    return target in (f"node{src}", f"node{dst}", f"{src}->{dst}")


def _route_matches(target: Optional[Union[str, int]],
                   route: Tuple[str, ...]) -> bool:
    """Does a string target name a topology link on ``route``?

    Routed interconnects name their directed edges (``n0-leaf0``,
    ``n2-n3``, …); a partition targeting such a name severs every route
    that crosses the edge.  ``None``/int targets are the node-pair
    matcher's job, not ours.
    """
    if not isinstance(target, str):
        return False
    return any(target == name or target in name for name in route)


class FaultPlane:
    """Deterministic fault oracle + injection record for one cluster."""

    def __init__(self, env: "Environment", cfg: FaultsConfig, num_nodes: int,
                 obs: Optional["Observability"] = None):
        self.env = env
        self.cfg = cfg
        self.num_nodes = num_nodes
        self._obs = obs if obs else None
        #: ``(kind, site) -> times injected`` — the fault report's source.
        self.injections: Dict[Tuple[str, str], int] = {}
        #: First ``_LOG_CAP`` injections in order: ``(time, kind, site)``.
        self.log: List[Tuple[float, str, str]] = []
        events = list(cfg.events)
        if cfg.seed is not None:
            events.extend(self._random_plan(cfg, num_nodes))
        self.schedule: Tuple[FaultEvent, ...] = tuple(events)
        self._by_kind: Dict[str, List[_Window]] = {}
        for ev in events:
            self._by_kind.setdefault(ev.kind, []).append(_Window(ev))

    @classmethod
    def build(cls, env: "Environment", cfg: Optional[FaultsConfig],
              num_nodes: int, obs: Optional["Observability"] = None
              ) -> Optional["FaultPlane"]:
        """The gated constructor: ``None`` config/disabled → no plane."""
        if cfg is None or not cfg.enabled:
            return None
        return cls(env, cfg, num_nodes, obs=obs)

    # ------------------------------------------------------------------
    # deterministic random plan
    # ------------------------------------------------------------------
    @staticmethod
    def _random_plan(cfg: FaultsConfig, num_nodes: int) -> List[FaultEvent]:
        """Expand ``cfg.seed`` into a concrete event list, deterministically.

        Random targets may name queues/blocks that do not exist in a given
        run (e.g. a rank index above the world size); such events simply
        never match — acceptable for chaos sweeps, where coverage comes
        from sweeping many seeds.
        """
        rng = random.Random(cfg.seed)
        ranks = max(1, num_nodes * 2)
        plan: List[FaultEvent] = []
        for _ in range(cfg.plan_size):
            kind = rng.choice((
                "link_degrade", "link_degrade",
                "burst_loss", "burst_loss",
                "partition",
                "queue_drop", "queue_drop",
                "queue_dup",
                "credit_starve",
                "block_stall", "block_stall",
            ))
            start = rng.uniform(0.0, cfg.horizon)
            duration = rng.uniform(cfg.horizon / 50.0, cfg.horizon / 8.0)
            factor = rng.uniform(1.5, 4.0)
            count = rng.randrange(1, 4)
            target: Optional[Union[str, int]]
            if kind in ("queue_drop", "queue_dup", "credit_starve"):
                queue = rng.choice(("cmd", "ack", "ntf"))
                target = f"{queue}:r{rng.randrange(ranks)}"
            elif kind == "block_stall":
                target = (f"node{rng.randrange(num_nodes)}"
                          f".gpu.b{rng.randrange(4)}")
            elif kind in ("burst_loss", "partition"):
                target = rng.choice((None, rng.randrange(num_nodes)))
            else:  # link_degrade
                target = rng.choice(
                    (None, "fabric", f"node{rng.randrange(num_nodes)}"))
            plan.append(FaultEvent(kind=kind, start=start, duration=duration,
                                   target=target, factor=factor, count=count))
        return plan

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def note(self, kind: str, site: str) -> None:
        """Record one injection at the current simulated time."""
        key = (kind, site)
        self.injections[key] = self.injections.get(key, 0) + 1
        if len(self.log) < _LOG_CAP:
            self.log.append((self.env.now, kind, site))
        if self._obs is not None:
            counter = self._obs.counter(f"faults.{kind}")
            if counter is not None:
                counter.inc()

    def total_injections(self) -> int:
        """Total number of injected faults across all kinds and sites."""
        return sum(self.injections.values())

    # ------------------------------------------------------------------
    # window queries (pure)
    # ------------------------------------------------------------------
    def degrade_factor(self, name: str, now: float) -> float:
        """Bandwidth-degradation multiplier for link ``name`` (1.0 = none)."""
        factor = 1.0
        for w in self._by_kind.get("link_degrade", ()):
            if w.active(now) and _matches(w.target, name):
                factor *= w.factor
                self.note("link_degrade", name)
        return factor

    def block_stall_factor(self, name: str, now: float) -> float:
        """Issue-time multiplier for GPU block ``name`` (1.0 = none)."""
        factor = 1.0
        for w in self._by_kind.get("block_stall", ()):
            if w.active(now) and _matches(w.target, name):
                factor *= w.factor
                self.note("block_stall", name)
        return factor

    def credit_starved(self, name: str, now: float) -> bool:
        """Is queue ``name`` inside a credit-starvation window at ``now``?"""
        for w in self._by_kind.get("credit_starve", ()):
            if w.active(now) and _matches(w.target, name):
                self.note("credit_starve", name)
                return True
        return False

    def partition_hold(self, src: int, dst: int, now: float) -> float:
        """Simulated seconds the ``src -> dst`` wire must wait to heal."""
        hold = 0.0
        for w in self._by_kind.get("partition", ()):
            if w.active(now) and _node_matches(w.target, src, dst):
                hold = max(hold, w.end - now)
                self.note("partition", f"{src}->{dst}")
        return hold

    def partition_hold_route(self, src: int, dst: int,
                             route: Tuple[str, ...], now: float) -> float:
        """Hold time for a routed transfer whose path is ``route``.

        A partition window applies when it selects the endpoint node pair
        (the flat-fabric semantics, kept so existing fault schedules mean
        the same thing on routed interconnects) *or* when it names any
        topology link the route crosses — cutting one spine uplink stalls
        every message routed over it.
        """
        hold = 0.0
        for w in self._by_kind.get("partition", ()):
            if w.active(now) and (_node_matches(w.target, src, dst)
                                  or _route_matches(w.target, route)):
                hold = max(hold, w.end - now)
                self.note("partition", f"{src}->{dst}")
        return hold

    # ------------------------------------------------------------------
    # consuming queries (each hit spends one unit of the event's count)
    # ------------------------------------------------------------------
    def loss_retries(self, src: int, dst: int, now: float) -> int:
        """Retransmissions the ``src -> dst`` transfer suffers (0 = clean)."""
        retries = 0
        for w in self._by_kind.get("burst_loss", ()):
            if w.armed(now) and _node_matches(w.target, src, dst):
                w.remaining -= 1
                retries += 1
                self.note("burst_loss", f"{src}->{dst}")
        return retries

    def queue_drop(self, name: str, now: float) -> bool:
        """Should the next commit to queue ``name`` be dropped?"""
        for w in self._by_kind.get("queue_drop", ()):
            if w.armed(now) and _matches(w.target, name):
                w.remaining -= 1
                self.note("queue_drop", name)
                return True
        return False

    def queue_dup(self, name: str, now: float) -> bool:
        """Should the next commit to queue ``name`` be duplicated?"""
        for w in self._by_kind.get("queue_dup", ()):
            if w.armed(now) and _matches(w.target, name):
                w.remaining -= 1
                self.note("queue_dup", name)
                return True
        return False
