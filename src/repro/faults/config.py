"""Fault-injection configuration: deterministic schedules, off by default.

:class:`FaultsConfig` hangs off :class:`~repro.hw.config.MachineConfig` as
``faults`` and is normally ``None``: the fault plane is never even built,
so the hot paths pay exactly one ``is not None`` attribute check — the
same zero-perturbation contract as the observability layer, enforced by
the same golden-fixture replay discipline (``tests/faults/``).

A schedule is either an explicit tuple of :class:`FaultEvent` entries or a
seeded random plan (``FaultsConfig(enabled=True, seed=42)``) expanded once,
deterministically, when the :class:`~repro.faults.plane.FaultPlane` is
built.  Every fault is a pure function of ``(site, simulated time)`` — no
RNG is consulted during the run, so a given ``(config, workload)`` pair
always injects the identical fault sequence.

The module is dependency-free for the same reason as
:mod:`repro.obs.config`: ``hw/config`` embeds it without import cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

__all__ = ["FaultEvent", "FaultsConfig", "FAULT_KINDS", "default_faults",
           "force_faults"]

#: The fault vocabulary.  Sites: ``link_degrade`` matches fair-share links
#: and fabric NICs by name; ``burst_loss``/``partition`` act on fabric
#: wire transfers; ``queue_drop``/``queue_dup``/``credit_starve`` act on
#: host↔device circular queues by name (e.g. ``"cmd:r3"``); ``block_stall``
#: slows GPU blocks by name (e.g. ``"node1.gpu.b0"``).
FAULT_KINDS: Tuple[str, ...] = (
    "link_degrade",
    "burst_loss",
    "partition",
    "queue_drop",
    "queue_dup",
    "credit_starve",
    "block_stall",
)


@dataclass(frozen=True)
class FaultEvent:
    """One entry of an explicit fault schedule.

    Args:
        kind: One of :data:`FAULT_KINDS`.
        start: Simulated time [s] the fault window opens.
        duration: Window length [s]; ``0`` means instantaneous faults
            (drops/dups trigger on the next matching operation only).
        target: What the fault applies to — ``None`` for *everything of
            that kind*, a string matched against component names (exact or
            substring, e.g. ``"cmd:r2"`` or ``"node0"``), or an ``int``
            world rank / node index.
        factor: Slowdown multiplier for ``link_degrade`` / ``block_stall``
            (``2.0`` = half speed).  Ignored by the discrete kinds.
        count: How many operations the fault hits for the discrete kinds
            (``queue_drop`` drops the next *count* matching commits,
            ``burst_loss`` loses *count* consecutive wire transfers).
    """

    kind: str
    start: float = 0.0
    duration: float = 0.0
    target: Optional[Union[str, int]] = None
    factor: float = 2.0
    count: int = 1


@dataclass(frozen=True)
class FaultsConfig:
    """The fault plane's switch, schedule, and runtime-hardening knobs."""

    #: Master switch; with ``enabled=False`` the plane is never built.
    enabled: bool = False
    #: Explicit schedule.  Empty + ``seed=None`` = enabled-but-inert plane
    #: (hardening active, nothing injected).
    events: Tuple[FaultEvent, ...] = ()
    #: Seed for a deterministic random plan, expanded once at plane build.
    #: ``None`` disables random generation (only ``events`` apply).
    seed: Optional[int] = None
    #: Simulated horizon [s] the random plan spreads its events over.
    #: Should cover the workload's expected elapsed time.
    horizon: float = 2e-4
    #: How many events the random plan draws.
    plan_size: int = 12

    # --- runtime hardening knobs (active whenever the plane exists) ---
    #: Handshake/redelivery retry budget before a typed error is raised.
    max_retries: int = 6
    #: First retry backoff [s] for stalled queue handshakes; doubles each
    #: attempt (exponential backoff).
    backoff_base: float = 2e-6
    #: Base delay [s] before a dropped queue slot is re-posted; doubles
    #: per redelivery attempt.
    redelivery_delay: float = 3e-6
    #: Simulated timeout [s] for one queue handshake (ack/command wait).
    handshake_timeout: float = 2e-3
    #: Launch-level simulated-time watchdog [s]; ``0`` disables it.
    watchdog: float = 0.25


_FORCED_DEFAULT: Optional[FaultsConfig] = None


def default_faults() -> Optional[FaultsConfig]:
    """The faults value a fresh :class:`MachineConfig` gets (normally None)."""
    return _FORCED_DEFAULT


@contextmanager
def force_faults(cfg: FaultsConfig) -> Iterator[None]:
    """Make every config built inside the block carry ``cfg`` as its plan.

    Only affects *defaults*: a config that sets ``faults=`` explicitly
    keeps its value.  Used by the chaos harness and the ``repro.faults``
    CLI to inject schedules into workload helpers that construct their own
    :func:`~repro.hw.config.greina` configs.
    """
    global _FORCED_DEFAULT
    previous = _FORCED_DEFAULT
    _FORCED_DEFAULT = cfg
    try:
        yield
    finally:
        _FORCED_DEFAULT = previous
