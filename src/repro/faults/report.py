"""Per-rank fault report + the seeded chaos runner.

The tentpole's acceptance contract: under any seeded fault schedule the
diffusion mini-app either completes with numerics bit-identical to a
fault-free run, or raises a typed :class:`~repro.errors.DCudaFaultError` /
:class:`~repro.errors.DCudaTimeoutError` carrying rank and simulated-time
context — never a hang.  :func:`run_chaos_case` executes one such run and
classifies it; :func:`chaos_sweep` sweeps many seeds and aggregates the
envelope reported in ``EXPERIMENTS.md``; :func:`fault_report` renders what
a plane injected plus the per-rank hardening counters, next to the obs
metrics registry when one is attached.

Everything here loads lazily from :mod:`repro.faults` (PEP 562) because it
imports the hw/apps layers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.table import Table
from ..errors import ERROR_TABLE, DCudaFaultError, DCudaTimeoutError
from .config import FaultsConfig
from .plane import FaultPlane

__all__ = ["ChaosOutcome", "run_chaos_case", "chaos_specs", "chaos_sweep",
           "fault_report", "injection_table", "hardening_table",
           "baseline_field", "sweep_table"]

#: CircularQueue hardening counters surfaced by the per-rank report.
_QUEUE_STATS = ("retries", "dropped_writes", "recovered",
                "duplicates_dropped", "starved_reloads")
_QUEUES = ("cmd_queue", "ack_queue", "notif_queue", "log_queue")


@dataclass(frozen=True)
class ChaosOutcome:
    """Classification of one fault-injected run.

    ``status`` is ``"completed"`` or the raised error's class name
    (``"DCudaTimeoutError"`` / ``"DCudaFaultError"``).  Any other
    exception type is a harness bug and propagates out of
    :func:`run_chaos_case` instead of being classified.
    """

    seed: Optional[int]
    status: str
    elapsed: float
    injections: int
    #: Final field bit-identical to the fault-free baseline; ``None`` when
    #: the run raised before producing numerics.
    numerics_equal: Optional[bool]
    error: str = ""
    error_code: str = ""

    @property
    def clean(self) -> bool:
        """Does this run satisfy the chaos contract?

        True iff the run completed with bit-identical numerics, or failed
        with a *typed* diagnosed error.  (Hangs never produce an outcome:
        the simulated-time watchdog turns them into
        :class:`~repro.errors.DCudaTimeoutError`.)
        """
        if self.status == "completed":
            return bool(self.numerics_equal)
        return self.status in ("DCudaTimeoutError", "DCudaFaultError")


_baseline_cache: Dict[tuple, Tuple[float, np.ndarray]] = {}


def baseline_field(wl, num_nodes: int, ranks_per_device: int,
                   comm_backend: str = "proxy") -> Tuple[float, np.ndarray]:
    """Fault-free diffusion run: ``(elapsed, final field)``, cached.

    The chaos contract compares numerics against a *clean dCUDA run* of
    the identical workload (itself validated against the serial reference
    by the tier-1 suite), so fault-induced divergence is isolated from any
    model-vs-reference differences.  The baseline runs on the same
    *comm_backend* as the chaos case — bit-identical numerics are a
    per-backend contract.
    """
    from ..apps.diffusion import run_dcuda_diffusion
    from ..hw import Cluster, greina

    key = (wl, num_nodes, ranks_per_device, comm_backend)
    cached = _baseline_cache.get(key)
    if cached is None:
        cluster = Cluster(greina(num_nodes, faults=None,
                                 comm_backend=comm_backend))
        elapsed, field, _ = run_dcuda_diffusion(cluster, wl,
                                                ranks_per_device)
        cached = _baseline_cache[key] = (elapsed, field)
    return cached[0], cached[1].copy()


def run_chaos_case(seed: Optional[int] = None, num_nodes: int = 2,
                   ranks_per_device: int = 2, wl=None,
                   cfg: Optional[FaultsConfig] = None,
                   baseline: Optional[np.ndarray] = None,
                   comm_backend: str = "proxy") -> ChaosOutcome:
    """Run diffusion under one fault schedule and classify the outcome.

    Args:
        seed: Random-plan seed (ignored if *cfg* is given).
        num_nodes: Cluster size.
        ranks_per_device: dCUDA over-subscription factor.
        wl: :class:`~repro.apps.diffusion.DiffusionWorkload`; a small
            default is used when ``None``.
        cfg: Full :class:`FaultsConfig` override (for explicit schedules);
            defaults to ``FaultsConfig(enabled=True, seed=seed)``.
        baseline: Fault-free final field to compare against; computed (and
            cached) via :func:`baseline_field` when ``None``.
        comm_backend: Communication backend the run (and any computed
            baseline) uses — the chaos contract holds per backend.

    Returns:
        A :class:`ChaosOutcome`.  Exceptions other than the two typed
        dCUDA failures are *not* caught — they indicate a harness bug.
    """
    from ..apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
    from ..hw import Cluster, greina

    if wl is None:
        wl = DiffusionWorkload(ni=8, nj_per_device=2 * ranks_per_device,
                               nk=2, steps=2)
    if baseline is None:
        _, baseline = baseline_field(wl, num_nodes, ranks_per_device,
                                     comm_backend=comm_backend)
    if cfg is None:
        cfg = FaultsConfig(enabled=True, seed=seed)
    cluster = Cluster(greina(num_nodes, faults=cfg,
                             comm_backend=comm_backend))
    plane = cluster.faults
    try:
        elapsed, field, _ = run_dcuda_diffusion(cluster, wl,
                                                ranks_per_device)
    except (DCudaTimeoutError, DCudaFaultError) as exc:
        return ChaosOutcome(
            seed=seed, status=type(exc).__name__, elapsed=cluster.env.now,
            injections=plane.total_injections() if plane else 0,
            numerics_equal=None, error=str(exc), error_code=exc.code)
    return ChaosOutcome(
        seed=seed, status="completed", elapsed=elapsed,
        injections=plane.total_injections() if plane else 0,
        numerics_equal=bool(np.array_equal(field, baseline)))


def chaos_specs(seeds: Sequence[int], num_nodes: int = 2,
                ranks_per_device: int = 2, wl=None,
                comm_backend: str = "proxy"):
    """Build the engine specs + shared payload for a chaos sweep.

    The fault-free baseline is computed *once* here (per process, cached)
    and returned as the engine's shared payload — workers receive it via
    the pool initializer instead of each recomputing it.  Both
    :func:`chaos_sweep` and the ``chaos`` suite of ``python -m
    repro.exec`` build specs through this helper, so their cached results
    are interchangeable.

    Returns:
        ``(specs, shared)`` — one ``chaos_case``
        :class:`~repro.exec.spec.RunSpec` per seed, plus
        ``{"baseline": ndarray}``.
    """
    from ..apps.diffusion import DiffusionWorkload
    from ..exec import RunSpec

    if wl is None:
        wl = DiffusionWorkload(ni=8, nj_per_device=2 * ranks_per_device,
                               nk=2, steps=2)
    _, baseline = baseline_field(wl, num_nodes, ranks_per_device,
                                 comm_backend=comm_backend)
    suffix = "" if comm_backend == "proxy" else f":{comm_backend}"
    specs = [RunSpec("chaos_case",
                     dict(seed=seed, num_nodes=num_nodes,
                          ranks_per_device=ranks_per_device, wl=wl,
                          comm_backend=comm_backend),
                     label=f"chaos:seed{seed}{suffix}")
             for seed in seeds]
    return specs, {"baseline": baseline}


def chaos_sweep(seeds: Sequence[int], num_nodes: int = 2,
                ranks_per_device: int = 2, wl=None, workers=None,
                cache=None,
                comm_backend: str = "proxy",
                executor=None) -> List[ChaosOutcome]:
    """Run :func:`run_chaos_case` for every seed; returns all outcomes.

    Fans the seeds out through the sweep service: outcomes are returned
    in seed order and are bit-identical for any *workers* count and any
    *executor* transport (see :mod:`repro.exec.engine`).

    Args:
        seeds: Fault-plan seeds, one independent run each.
        num_nodes/ranks_per_device/wl: Cluster and workload shape, as in
            :func:`run_chaos_case`.
        workers: Engine worker processes (``None`` = serial or
            ``$REPRO_EXEC_WORKERS``).
        cache: Optional :class:`~repro.exec.cache.ResultCache` or cache
            directory path; the baseline digest salts every key, so a
            changed baseline invalidates cached outcomes.
        executor: Transport name or :class:`~repro.exec.executors.
            Executor` instance (``None`` = ``$REPRO_EXEC_EXECUTOR`` or
            by worker count).
    """
    from ..exec import run_specs

    specs, shared = chaos_specs(seeds, num_nodes, ranks_per_device, wl=wl,
                                comm_backend=comm_backend)
    return run_specs(specs, workers=workers, cache=cache,
                     shared=shared, executor=executor).results


def sweep_table(outcomes: Sequence[ChaosOutcome]) -> Table:
    """Envelope summary of a chaos sweep (the EXPERIMENTS.md table)."""
    table = Table("Chaos-sweep envelope",
                  ["outcome", "runs", "injections", "share"])
    total = len(outcomes) or 1
    by_status: Dict[str, List[ChaosOutcome]] = {}
    for o in outcomes:
        by_status.setdefault(o.status, []).append(o)
    for status in sorted(by_status):
        group = by_status[status]
        table.add_row(status, len(group),
                      sum(o.injections for o in group),
                      f"{len(group) / total:.0%}")
    dirty = [o for o in outcomes if not o.clean]
    table.add_note(f"{len(outcomes)} seeded runs; "
                   f"{len(outcomes) - len(dirty)} satisfy the chaos "
                   f"contract (identical numerics or typed failure), "
                   f"{len(dirty)} violate it; hangs are impossible by "
                   f"construction (simulated-time watchdog)")
    return table


# --------------------------------------------------------------- report -----
def _site_rank(site: str) -> str:
    """Best-effort world-rank attribution of an injection site name."""
    m = re.search(r":r(\d+)$", site)
    if m:
        return m.group(1)
    return "-"


def injection_table(plane: FaultPlane) -> Table:
    """What the plane injected: one row per ``(kind, site)`` pair."""
    table = Table("Fault injections",
                  ["kind", "site", "rank", "count", "first [us]"])
    first: Dict[Tuple[str, str], float] = {}
    for t, kind, site in plane.log:
        first.setdefault((kind, site), t)
    for (kind, site) in sorted(plane.injections):
        count = plane.injections[(kind, site)]
        t0 = first.get((kind, site))
        table.add_row(kind, site, _site_rank(site), count,
                      t0 * 1e6 if t0 is not None else "-")
    table.add_note(f"{plane.total_injections()} injections from "
                   f"{len(plane.schedule)} scheduled events "
                   f"(seed={plane.cfg.seed!r})")
    return table


def hardening_table(runtime) -> Table:
    """Per-rank runtime-hardening counters (recovery activity)."""
    table = Table("Per-rank hardening activity",
                  ["rank", "queue", "retries", "drops", "recovered",
                   "dup-dropped", "starved"])
    for rank in range(runtime.total_ranks):
        state = runtime.state_of(rank)
        for attr in _QUEUES:
            queue = getattr(state, attr)
            stats = queue.stats
            values = [getattr(stats, name) for name in _QUEUE_STATS]
            if any(values):
                table.add_row(rank, queue.name, *values)
    if not table.rows:
        table.add_note("no hardening activity: every handshake succeeded "
                       "first try")
    return table


def fault_report(plane: Optional[FaultPlane], runtime=None,
                 obs=None) -> str:
    """Render the full fault report (injections + per-rank hardening).

    Args:
        plane: The cluster's :class:`FaultPlane` (``cluster.faults``);
            ``None`` renders a no-plane notice.
        runtime: Optional :class:`~repro.runtime.system.DCudaRuntime` for
            the per-rank hardening counters.
        obs: Optional :class:`~repro.obs.Observability`; when given, the
            ``faults.*`` counters from its metrics registry are appended,
            tying the report into the observability layer.

    Returns:
        A printable multi-table string.
    """
    if plane is None:
        return ("no fault plane attached (MachineConfig.faults is None or "
                "disabled)")
    parts = [injection_table(plane).render()]
    if runtime is not None:
        parts.append(hardening_table(runtime).render())
    if obs is not None:
        metrics = Table("Registry fault counters", ["metric", "value"])
        for name, value in obs.registry.snapshot().items():
            if name.startswith("faults."):
                metrics.add_row(name, value)
        if metrics.rows:
            parts.append(metrics.render())
    codes = Table("Error code table", ["code", "class", "remediation"])
    for code, (cls_name, remediation) in sorted(ERROR_TABLE.items()):
        codes.add_row(code, cls_name, remediation)
    parts.append(codes.render())
    return "\n\n".join(parts)
