"""Fault-injection CLI: seeded chaos runs with a per-rank fault report.

Usage::

    python -m repro.faults report                  # one seeded run + report
    python -m repro.faults report --seed 7
    python -m repro.faults report --sweep 50       # chaos envelope
    python -m repro.faults report --sweep 50 -j 4  # ... on 4 workers
    python -m repro.faults report --selftest       # CI smoke check

``report`` runs the diffusion mini-app under a deterministic seeded fault
schedule and prints what was injected, which ranks recovered, and the
error-code table.  ``--sweep N`` sweeps seeds ``0..N-1`` and prints the
completion/diagnosed-failure envelope; ``--selftest`` additionally checks
the zero-perturbation contract (inert plane = bit-identical timing and
numerics) and exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import FaultsConfig
from .report import (
    ChaosOutcome,
    baseline_field,
    chaos_sweep,
    fault_report,
    run_chaos_case,
    sweep_table,
)

__all__ = ["main"]


def _workload(args: argparse.Namespace):
    from ..apps.diffusion import DiffusionWorkload
    return DiffusionWorkload(ni=8, nj_per_device=2 * args.ranks, nk=2,
                             steps=args.steps)


def _outcome_line(outcome: ChaosOutcome) -> str:
    if outcome.status == "completed":
        verdict = ("numerics identical" if outcome.numerics_equal
                   else "NUMERICS DIVERGED")
        return (f"seed={outcome.seed}: completed in "
                f"{outcome.elapsed:.3e}s simulated, "
                f"{outcome.injections} injections, {verdict}")
    return (f"seed={outcome.seed}: {outcome.status} [{outcome.error_code}] "
            f"after {outcome.injections} injections — {outcome.error}")


def _run_report(args: argparse.Namespace) -> int:
    """One seeded run, keeping the cluster handles for the full report."""
    from ..apps.diffusion import run_dcuda_diffusion
    from ..hw import Cluster, greina
    from ..obs import ObsConfig

    import numpy as np

    wl = _workload(args)
    _, baseline = baseline_field(wl, args.nodes, args.ranks)
    cfg = FaultsConfig(enabled=True, seed=args.seed)
    cluster = Cluster(greina(args.nodes, faults=cfg,
                             obs=ObsConfig(enabled=True)))
    runtime = None
    try:
        elapsed, field, res = run_dcuda_diffusion(cluster, wl, args.ranks)
        runtime = res.runtime
        outcome = ChaosOutcome(
            seed=args.seed, status="completed", elapsed=elapsed,
            injections=cluster.faults.total_injections(),
            numerics_equal=bool(np.array_equal(field, baseline)))
    except Exception as exc:  # typed failures still want the report
        outcome = ChaosOutcome(
            seed=args.seed, status=type(exc).__name__,
            elapsed=cluster.env.now,
            injections=cluster.faults.total_injections(),
            numerics_equal=None, error=str(exc),
            error_code=getattr(exc, "code", ""))
    print(fault_report(cluster.faults, runtime, cluster.obs))
    print()
    print(_outcome_line(outcome))
    return 0 if outcome.clean else 1


def _run_sweep(args: argparse.Namespace) -> int:
    outcomes = chaos_sweep(range(args.sweep), args.nodes, args.ranks,
                           wl=_workload(args), workers=args.workers,
                           cache=args.cache_dir, executor=args.executor)
    print(sweep_table(outcomes).render())
    dirty = [o for o in outcomes if not o.clean]
    for o in dirty:
        print(_outcome_line(o))
    return 0 if not dirty else 1


def _run_selftest(args: argparse.Namespace) -> int:
    """CI smoke: zero-perturbation + one clean chaos case."""
    from ..apps.diffusion import run_dcuda_diffusion
    from ..hw import Cluster, greina

    import numpy as np

    wl = _workload(args)
    base_elapsed, baseline = baseline_field(wl, args.nodes, args.ranks)
    # Inert plane (enabled, nothing scheduled): hardening active, zero
    # injections — timing and numerics must be bit-identical.
    cluster = Cluster(greina(args.nodes, faults=FaultsConfig(enabled=True)))
    elapsed, field, _ = run_dcuda_diffusion(cluster, wl, args.ranks)
    checks = [
        ("inert plane injects nothing",
         cluster.faults.total_injections() == 0),
        ("inert plane timing bit-identical", elapsed == base_elapsed),
        ("inert plane numerics bit-identical",
         np.array_equal(field, baseline)),
    ]
    outcome = run_chaos_case(seed=args.seed, num_nodes=args.nodes,
                             ranks_per_device=args.ranks, wl=wl,
                             baseline=baseline)
    checks.append((f"seeded chaos case (seed={args.seed}) satisfies the "
                   f"chaos contract", outcome.clean))
    failed = 0
    for name, ok in checks:
        print(f"{'ok' if ok else 'FAIL'}: {name}")
        failed += 0 if ok else 1
    print(_outcome_line(outcome))
    print(f"selftest: {len(checks) - failed}/{len(checks)} checks passed")
    return 0 if failed == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault injection: seeded chaos runs over "
                    "the diffusion mini-app with a per-rank fault report.")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="run under a seeded fault schedule "
                                        "and print the fault report")
    rep.add_argument("--seed", type=int, default=1,
                     help="fault-plan seed (default: 1)")
    rep.add_argument("--sweep", type=int, metavar="N",
                     help="instead: sweep seeds 0..N-1 and print the "
                          "chaos envelope")
    rep.add_argument("--selftest", action="store_true",
                     help="zero-perturbation + chaos-contract smoke check "
                          "(non-zero exit on violation)")
    rep.add_argument("--nodes", type=int, default=2,
                     help="cluster node count (default: 2)")
    rep.add_argument("--ranks", type=int, default=2,
                     help="ranks per device (default: 2)")
    rep.add_argument("--steps", type=int, default=2,
                     help="diffusion iterations (default: 2)")
    rep.add_argument("--workers", "-j", type=int, default=None,
                     help="sweep engine worker processes (default: "
                          "$REPRO_EXEC_WORKERS or 1; --sweep only)")
    rep.add_argument("--executor", type=str, default=None,
                     choices=("serial", "local", "subprocess", "http"),
                     help="sweep executor transport (default: "
                          "$REPRO_EXEC_EXECUTOR or by worker count; "
                          "--sweep only)")
    rep.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                     help="result-cache directory for --sweep (default: "
                          "no caching)")

    args = parser.parse_args(argv)
    if args.selftest:
        return _run_selftest(args)
    if args.sweep:
        return _run_sweep(args)
    return _run_report(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
