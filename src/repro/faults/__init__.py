"""Deterministic fault injection + the hardened-runtime contract.

The paper's runtime (§III) defends against stale PCIe-visible state with
sequence-number validity and credit-based flow control, but nothing in a
clean simulation ever exercises those defenses.  This package breaks the
system on purpose — deterministically — and the hardened runtime must
survive: every run either completes with bit-identical numerics or raises
a typed :class:`~repro.errors.DCudaFaultError` /
:class:`~repro.errors.DCudaTimeoutError` with rank and simulated-time
context.  Never a hang (a simulated-time watchdog enforces it).

Three pieces:

* :mod:`repro.faults.config` — :class:`FaultsConfig` (the schedule +
  hardening knobs, hung off ``MachineConfig.faults``, default ``None``);
* :mod:`repro.faults.plane` — :class:`FaultPlane`, the per-cluster oracle
  every layer queries (links, fabric, queues, GPU blocks);
* :mod:`repro.faults.report` — the per-rank fault report and the seeded
  chaos runner behind ``python -m repro.faults report``.

The report symbols load lazily (PEP 562) for the same reason as
:mod:`repro.obs`: the report pulls in apps/hw, and ``repro.hw.config``
imports :mod:`repro.faults.config` for the ``faults`` field.
"""

from .config import (
    FAULT_KINDS,
    FaultEvent,
    FaultsConfig,
    default_faults,
    force_faults,
)
from .plane import FaultPlane

__all__ = [
    "FaultEvent", "FaultsConfig", "FAULT_KINDS", "default_faults",
    "force_faults",
    "FaultPlane",
    "ChaosOutcome", "run_chaos_case", "chaos_specs", "chaos_sweep",
    "fault_report",
]

_REPORT_SYMBOLS = ("ChaosOutcome", "run_chaos_case", "chaos_specs",
                   "chaos_sweep", "fault_report")


def __getattr__(name):
    if name in _REPORT_SYMBOLS:
        from . import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
