"""MPI-CUDA baseline programming model (host main loop + fork-join kernels)."""

from .runtime import MPICudaContext, MPICudaResult, run_mpicuda

__all__ = ["MPICudaContext", "MPICudaResult", "run_mpicuda"]
