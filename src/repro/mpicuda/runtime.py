"""The MPI-CUDA baseline programming model (the paper's comparison point).

Traditional GPU-cluster programs alternate sequentially between on-node
kernel invocations and inter-node communication: the host main loop launches
a fork-join kernel, waits for it, then exchanges data with two-sided
CUDA-aware MPI while the device idles (Fig. 1, left).  No overlap of
computation and communication happens unless the programmer restructures the
code manually — which these baselines, like the paper's, deliberately do not.

An MPI-CUDA *program* is a generator ``program(ctx: MPICudaContext)``; one
runs per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..hw.cluster import Cluster
from ..mpi import MPIWorld, Request
from ..mpi import allgather as _allgather
from ..mpi import allreduce as _allreduce
from ..mpi import barrier as _barrier
from ..mpi import bcast as _bcast
from ..mpi import reduce as _reduce
from ..sim import Event, Tracer

__all__ = ["MPICudaContext", "run_mpicuda", "MPICudaResult"]


class MPICudaContext:
    """Per-node host API: kernel launches, memcpys, and MPI."""

    def __init__(self, cluster: Cluster, world: MPIWorld, node_index: int):
        self.cluster = cluster
        self.world = world
        self.env = cluster.env
        self.node = cluster.node(node_index)
        self.device = self.node.device
        self.cfg = cluster.cfg

    # -- identity ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.node.index

    @property
    def size(self) -> int:
        return self.cluster.num_nodes

    @property
    def now(self) -> float:
        return self.env.now

    # -- device control ----------------------------------------------------
    def launch(self, nblocks: int = 0, flops_per_block: float = 0.0,
               mem_bytes_per_block: float = 0.0,
               fn: Optional[Callable[[], Any]] = None,
               per_block: Optional[list] = None,
               detail: str = "kernel") -> Generator[Event, Any, Any]:
        """Launch a fork-join kernel and wait for it (the implicit
        synchronization at every MPI-CUDA kernel boundary).

        *fn* is the kernel's actual numpy work, executed once up front;
        the cost model charges the device for the per-block work —
        uniform (*nblocks* x per-block parameters) or explicit via
        *per_block* ``(flops, mem_bytes)`` tuples for imbalanced kernels.
        """
        result = fn() if fn is not None else None
        yield self.cfg.gpu.launch_latency
        yield from self.device.bulk_compute(nblocks, flops_per_block,
                                            mem_bytes_per_block,
                                            per_block=per_block,
                                            detail=detail)
        yield self.cfg.mpicuda.sync_latency
        return result

    def memcpy(self, nbytes: float,
               fn: Optional[Callable[[], Any]] = None
               ) -> Generator[Event, Any, Any]:
        """cudaMemcpy between host and device (DMA engine + call cost).

        The baseline uses this to fetch bookkeeping data (e.g. the particle
        counters) the device-side dCUDA variant reads directly.
        """
        result = fn() if fn is not None else None
        yield self.cfg.mpicuda.memcpy_call
        yield from self.node.pcie.dma_copy(nbytes)
        return result

    def loop_overhead(self) -> Generator[Event, Any, None]:
        """Host main-loop per-iteration overhead."""
        yield self.cfg.mpicuda.loop_overhead

    # -- two-sided MPI on device buffers --------------------------------------
    def isend(self, dst: int, payload: Any, tag: int = 0,
              nbytes: Optional[float] = None) -> Request:
        return self.world.isend(self.rank, dst, payload, tag=tag,
                                nbytes=nbytes, device=True)

    def irecv(self, source: int = -1, tag: int = -1) -> Request:
        return self.world.irecv(self.rank, source=source, tag=tag)

    def send(self, dst: int, payload: Any, tag: int = 0,
             nbytes: Optional[float] = None) -> Generator[Event, Any, None]:
        yield from self.world.send(self.rank, dst, payload, tag=tag,
                                   nbytes=nbytes, device=True)

    def recv(self, source: int = -1,
             tag: int = -1) -> Generator[Event, Any, Any]:
        msg = yield from self.world.recv(self.rank, source=source, tag=tag)
        return msg

    # -- collectives -----------------------------------------------------------
    def barrier(self) -> Generator[Event, Any, None]:
        yield from _barrier(self.world, self.rank)

    def bcast(self, value: Any, root: int = 0,
              nbytes: Optional[float] = None,
              group: Optional[List[int]] = None
              ) -> Generator[Event, Any, Any]:
        out = yield from _bcast(self.world, self.rank, value, root=root,
                                nbytes=nbytes, device=True, group=group)
        return out

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               root: int = 0, nbytes: Optional[float] = None,
               group: Optional[List[int]] = None
               ) -> Generator[Event, Any, Any]:
        out = yield from _reduce(self.world, self.rank, value, op, root=root,
                                 nbytes=nbytes, device=True, group=group)
        return out

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any],
                  nbytes: Optional[float] = None
                  ) -> Generator[Event, Any, Any]:
        out = yield from _allreduce(self.world, self.rank, value, op,
                                    nbytes=nbytes, device=True)
        return out

    def allgather(self, value: Any, nbytes: Optional[float] = None
                  ) -> Generator[Event, Any, List[Any]]:
        out = yield from _allgather(self.world, self.rank, value,
                                    nbytes=nbytes)
        return out


@dataclass
class MPICudaResult:
    """Outcome of an MPI-CUDA program run."""

    elapsed: float
    results: List[Any]
    world: MPIWorld
    tracer: Tracer


def run_mpicuda(cluster: Cluster, program: Callable[..., Any],
                program_args: Optional[Dict[str, Any]] = None
                ) -> MPICudaResult:
    """Run *program* (one instance per node); returns timing + results."""
    world = MPIWorld(cluster)
    args = program_args or {}
    t0 = cluster.env.now
    procs = []
    for node_index in range(cluster.num_nodes):
        ctx = MPICudaContext(cluster, world, node_index)
        procs.append(cluster.env.process(program(ctx, **args),
                                         name=f"mpicuda:n{node_index}"))
    cluster.run()
    for p in procs:
        if not p.triggered:
            raise RuntimeError(
                f"deadlock: program process {p.name} never completed")
    return MPICudaResult(elapsed=cluster.env.now - t0,
                         results=[p.value for p in procs],
                         world=world, tracer=cluster.tracer)
