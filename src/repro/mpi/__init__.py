"""Simulated-host MPI substrate: two-sided p2p, collectives, and RMA."""

from .comm import ANY_SOURCE, ANY_TAG, MPIWorld
from .message import Envelope, copy_payload, payload_nbytes
from .request import Request, wait_all_requests
from .collectives import (
    COLL_TAG_BASE,
    allgather,
    allreduce,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
    sendrecv,
)
from .rma import HostWindow

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "MPIWorld",
    "Envelope", "copy_payload", "payload_nbytes",
    "Request", "wait_all_requests",
    "COLL_TAG_BASE", "allgather", "allreduce", "barrier", "bcast",
    "gather", "reduce", "scatter", "sendrecv",
    "HostWindow",
]
