"""Message envelope and payload-size accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

__all__ = ["Envelope", "payload_nbytes", "copy_payload"]


def payload_nbytes(payload: Any, nbytes: Optional[float] = None) -> float:
    """Wire size of *payload* in bytes.

    numpy arrays report their buffer size; other objects require an
    explicit *nbytes* (there is no pickle in the simulated world — control
    messages pass a small fixed size instead).
    """
    if nbytes is not None:
        if nbytes < 0:
            raise ValueError(f"negative nbytes {nbytes!r}")
        return float(nbytes)
    if isinstance(payload, np.ndarray):
        return float(payload.nbytes)
    if payload is None:
        return 0.0
    raise TypeError(
        f"cannot infer wire size of {type(payload).__name__}; pass nbytes=")


def copy_payload(payload: Any) -> Any:
    """Snapshot the payload at send time (MPI copy-out semantics)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


@dataclass
class Envelope:
    """One in-flight or buffered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: float
    #: Per-(src, dst) sequence number enforcing MPI non-overtaking order.
    seq: int = 0
    #: True when the payload lives in device memory (CUDA-aware path).
    device: bool = False

    def matches(self, source: int, tag: int, any_source: int,
                any_tag: int) -> bool:
        return ((source == any_source or source == self.src)
                and (tag == any_tag or tag == self.tag))
