"""Nonblocking-operation handles (MPI_Request equivalents)."""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from ..sim import AllOf, Environment, Event

__all__ = ["Request", "wait_all_requests"]


class Request:
    """Handle for a nonblocking communication operation.

    Wraps a completion :class:`Event`.  ``yield from req.wait()`` blocks the
    calling process until completion and returns the operation's value (the
    received message for receives, ``None`` for sends).
    """

    __slots__ = ("env", "_event", "kind")

    def __init__(self, env: Environment, event: Event, kind: str = "op"):
        self.env = env
        self._event = event
        self.kind = kind

    @property
    def event(self) -> Event:
        return self._event

    def test(self) -> bool:
        """True once the operation completed (MPI_Test, no blocking)."""
        return self._event.triggered

    def wait(self) -> Generator[Event, Any, Any]:
        """Block until completion; returns the operation value."""
        value = yield self._event
        return value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "done" if self.test() else "pending"
        return f"<Request {self.kind} {state}>"


def wait_all_requests(env: Environment, requests: Sequence[Request]
                      ) -> Generator[Event, Any, List[Any]]:
    """MPI_Waitall: block until every request completes; returns values."""
    values = yield AllOf(env, [r.event for r in requests])
    return values
