"""Collective operations over the two-sided substrate.

Tree algorithms matching what a production MPI uses at small scale:

* ``barrier``   — dissemination algorithm, ``ceil(log2 P)`` rounds,
* ``bcast``     — binomial tree,
* ``reduce``    — binomial gather-up tree (commutative ``op``),
* ``allreduce`` — reduce to the group root + bcast,
* ``allgather`` — ring, ``P - 1`` steps.

All are generator functions: every participating rank's process must call
the same collectives in the same order (the usual MPI contract).  *group*
restricts participation to a subset of world ranks (default: all).

The collective tag space starts at ``COLL_TAG_BASE``; application code must
stay below it.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..sim import Event
from .comm import MPIWorld

__all__ = ["barrier", "bcast", "reduce", "allreduce", "allgather",
           "scatter", "gather", "sendrecv", "COLL_TAG_BASE"]

COLL_TAG_BASE = 1 << 24
_TOKEN_BYTES = 8.0


def _group_of(world: MPIWorld,
              group: Optional[Sequence[int]]) -> List[int]:
    if group is None:
        return list(range(world.size))
    out = list(group)
    if len(set(out)) != len(out):
        raise ValueError(f"group has duplicate ranks: {out}")
    for r in out:
        world.check_rank(r)
    return out


def _index_in(group: List[int], rank: int) -> int:
    try:
        return group.index(rank)
    except ValueError:
        raise ValueError(f"rank {rank} is not in group {group}") from None


def barrier(world: MPIWorld, rank: int,
            group: Optional[Sequence[int]] = None
            ) -> Generator[Event, Any, None]:
    """Dissemination barrier."""
    g = _group_of(world, group)
    p = len(g)
    idx = _index_in(g, rank)
    if p == 1:
        return
    epoch = world.next_collective_epoch(rank)
    base = COLL_TAG_BASE + (epoch % 4096) * 64
    k = 0
    dist = 1
    while dist < p:
        dst = g[(idx + dist) % p]
        src = g[(idx - dist) % p]
        world.isend(rank, dst, None, tag=base + k, nbytes=_TOKEN_BYTES)
        yield from world.recv(rank, source=src, tag=base + k)
        dist <<= 1
        k += 1


def bcast(world: MPIWorld, rank: int, value: Any, root: int = 0,
          group: Optional[Sequence[int]] = None,
          nbytes: Optional[float] = None,
          device: bool = False) -> Generator[Event, Any, Any]:
    """Binomial-tree broadcast; every rank returns the root's value."""
    g = _group_of(world, group)
    p = len(g)
    idx = _index_in(g, rank)
    root_idx = _index_in(g, root)
    epoch = world.next_collective_epoch(rank)
    tag = COLL_TAG_BASE + (epoch % 4096) * 64 + 32
    if p == 1:
        return value
    vrank = (idx - root_idx) % p

    # Receive from the parent (non-root ranks).
    mask = 1
    while mask < p:
        if vrank & mask:
            src = g[(vrank - mask + root_idx) % p]
            env_msg = yield from world.recv(rank, source=src, tag=tag)
            value = env_msg.payload
            break
        mask <<= 1

    # Forward to children in decreasing-distance order.
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            dst = g[(vrank + mask + root_idx) % p]
            world.isend(rank, dst, value, tag=tag, nbytes=nbytes,
                        device=device)
        mask >>= 1
    return value


def reduce(world: MPIWorld, rank: int, value: Any,
           op: Callable[[Any, Any], Any], root: int = 0,
           group: Optional[Sequence[int]] = None,
           nbytes: Optional[float] = None,
           device: bool = False) -> Generator[Event, Any, Any]:
    """Binomial-tree reduction with a commutative *op*.

    Returns the reduced value at *root* and ``None`` elsewhere.
    """
    g = _group_of(world, group)
    p = len(g)
    idx = _index_in(g, rank)
    root_idx = _index_in(g, root)
    epoch = world.next_collective_epoch(rank)
    tag = COLL_TAG_BASE + (epoch % 4096) * 64 + 40
    if p == 1:
        return value
    vrank = (idx - root_idx) % p

    mask = 1
    while mask < p:
        if vrank & mask:
            dst = g[(vrank - mask + root_idx) % p]
            yield from world.send(rank, dst, value, tag=tag, nbytes=nbytes,
                                  device=device)
            return None
        if vrank + mask < p:
            src = g[(vrank + mask + root_idx) % p]
            env_msg = yield from world.recv(rank, source=src, tag=tag)
            value = op(value, env_msg.payload)
        mask <<= 1
    return value


def allreduce(world: MPIWorld, rank: int, value: Any,
              op: Callable[[Any, Any], Any],
              group: Optional[Sequence[int]] = None,
              nbytes: Optional[float] = None,
              device: bool = False) -> Generator[Event, Any, Any]:
    """Reduce-to-root followed by broadcast; every rank gets the result."""
    g = _group_of(world, group)
    reduced = yield from reduce(world, rank, value, op, root=g[0],
                                group=g, nbytes=nbytes, device=device)
    result = yield from bcast(world, rank, reduced, root=g[0], group=g,
                              nbytes=nbytes, device=device)
    return result


def scatter(world: MPIWorld, rank: int, values: Optional[Sequence[Any]],
            root: int = 0, group: Optional[Sequence[int]] = None,
            nbytes: Optional[float] = None
            ) -> Generator[Event, Any, Any]:
    """Root distributes ``values[i]`` to group member *i* (linear sends —
    the usual implementation at small scale).  Non-roots pass ``None``."""
    g = _group_of(world, group)
    idx = _index_in(g, rank)
    root_idx = _index_in(g, root)
    epoch = world.next_collective_epoch(rank)
    tag = COLL_TAG_BASE + (epoch % 4096) * 64 + 56
    if rank == root:
        if values is None or len(values) != len(g):
            raise ValueError(
                f"scatter root needs exactly {len(g)} values, got "
                f"{None if values is None else len(values)}")
        for i, r in enumerate(g):
            if r != root:
                world.isend(rank, r, values[i], tag=tag, nbytes=nbytes)
        return values[root_idx]
    env_msg = yield from world.recv(rank, source=root, tag=tag)
    return env_msg.payload


def gather(world: MPIWorld, rank: int, value: Any, root: int = 0,
           group: Optional[Sequence[int]] = None,
           nbytes: Optional[float] = None
           ) -> Generator[Event, Any, Optional[List[Any]]]:
    """Root collects one contribution per group member, in group order;
    returns the list at *root* and ``None`` elsewhere."""
    g = _group_of(world, group)
    idx = _index_in(g, rank)
    epoch = world.next_collective_epoch(rank)
    tag = COLL_TAG_BASE + (epoch % 4096) * 64 + 57
    if rank != root:
        yield from world.send(rank, root, value, tag=tag, nbytes=nbytes)
        return None
    slots: List[Any] = [None] * len(g)
    slots[idx] = value
    for i, r in enumerate(g):
        if r != root:
            env_msg = yield from world.recv(rank, source=r, tag=tag)
            slots[i] = env_msg.payload
    return slots


def sendrecv(world: MPIWorld, rank: int, dest: int, send_payload: Any,
             source: int, sendtag: int = 0, recvtag: int = 0,
             nbytes: Optional[float] = None,
             device: bool = False) -> Generator[Event, Any, Any]:
    """Combined send+receive (MPI_Sendrecv) — deadlock-free pairwise
    exchange; returns the received envelope."""
    world.isend(rank, dest, send_payload, tag=sendtag, nbytes=nbytes,
                device=device)
    env_msg = yield from world.recv(rank, source=source, tag=recvtag)
    return env_msg


def allgather(world: MPIWorld, rank: int, value: Any,
              group: Optional[Sequence[int]] = None,
              nbytes: Optional[float] = None
              ) -> Generator[Event, Any, List[Any]]:
    """Ring allgather; returns the list of contributions in group order."""
    g = _group_of(world, group)
    p = len(g)
    idx = _index_in(g, rank)
    epoch = world.next_collective_epoch(rank)
    tag = COLL_TAG_BASE + (epoch % 4096) * 64 + 48
    slots: List[Any] = [None] * p
    slots[idx] = value
    if p == 1:
        return slots
    right = g[(idx + 1) % p]
    left = g[(idx - 1) % p]
    send_slot = idx
    for _ in range(p - 1):
        world.isend(rank, right, slots[send_slot], tag=tag, nbytes=nbytes)
        env_msg = yield from world.recv(rank, source=left, tag=tag)
        send_slot = (send_slot - 1) % p
        slots[send_slot] = env_msg.payload
    return slots
