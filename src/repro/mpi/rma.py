"""Host-side one-sided communication (MPI-3 RMA subset).

The dCUDA device API follows the MPI RMA specification; this module provides
the host-level equivalent so the substrate covers the full surface the paper
references: window creation over per-rank buffers, ``put``/``get`` with a
passive target, and ``flush`` for origin-side completion.

A put transfers the data through the fabric and lands directly in the target
rank's window buffer — no receiver involvement, which is the defining RMA
property.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

import numpy as np

from ..sim import AllOf, Event
from .comm import MPIWorld
from .request import Request

__all__ = ["HostWindow"]


class HostWindow:
    """A one-sided access window over one numpy buffer per rank.

    Construction is collective in spirit: the caller supplies all ranks'
    buffers at once (the simulated world has a global view, so no exchange
    is needed — the *timing* of window creation is charged by the layers
    that use it).
    """

    def __init__(self, world: MPIWorld, buffers: Dict[int, np.ndarray],
                 name: str = "win"):
        for rank, buf in buffers.items():
            world.check_rank(rank)
            if buf.ndim != 1:
                raise ValueError(
                    f"window buffers must be 1-D, rank {rank} has "
                    f"{buf.ndim}-D")
        self.world = world
        self.name = name
        self._buffers = dict(buffers)
        self._pending: Dict[int, List[Event]] = {}

    def buffer(self, rank: int) -> np.ndarray:
        return self._buffers[rank]

    def _check_range(self, rank: int, offset: int, count: int) -> None:
        if rank not in self._buffers:
            raise KeyError(f"rank {rank} did not attach to window "
                           f"{self.name!r}")
        buf = self._buffers[rank]
        if offset < 0 or count < 0 or offset + count > buf.size:
            raise IndexError(
                f"window access [{offset}:{offset + count}] out of bounds "
                f"for rank {rank} buffer of {buf.size} elements")

    # -- one-sided ops ------------------------------------------------------
    def put(self, origin: int, target: int, data: np.ndarray,
            target_offset: int, device: bool = False) -> Request:
        """Write *data* into the target window; origin-nonblocking."""
        data = np.asarray(data)
        self._check_range(target, target_offset, data.size)
        snapshot = data.copy()
        done = self.world.env.event(name=f"rma-put:{self.name}")

        def _proc():
            arrival = self.world.cluster.fabric.transmit(
                self.world.node_of(origin), self.world.node_of(target),
                float(snapshot.nbytes),
                mode="d2d" if device else "host")
            yield arrival
            buf = self._buffers[target]
            buf[target_offset:target_offset + snapshot.size] = snapshot
            done.succeed()

        self.world.env.process(_proc(), name=f"rma-put:{origin}->{target}")
        self._pending.setdefault(origin, []).append(done)
        return Request(self.world.env, done, kind="rma-put")

    def get(self, origin: int, target: int, count: int,
            target_offset: int, device: bool = False) -> Request:
        """Read from the target window; the request's value is the data."""
        self._check_range(target, target_offset, count)
        done = self.world.env.event(name=f"rma-get:{self.name}")

        def _proc():
            # Request travels to the target, data travels back.
            there = self.world.cluster.fabric.transmit(
                self.world.node_of(origin), self.world.node_of(target), 8.0)
            yield there
            buf = self._buffers[target]
            snapshot = buf[target_offset:target_offset + count].copy()
            back = self.world.cluster.fabric.transmit(
                self.world.node_of(target), self.world.node_of(origin),
                float(snapshot.nbytes),
                mode="d2d" if device else "host")
            yield back
            done.succeed(snapshot)

        self.world.env.process(_proc(), name=f"rma-get:{origin}<-{target}")
        self._pending.setdefault(origin, []).append(done)
        return Request(self.world.env, done, kind="rma-get")

    def flush(self, origin: int) -> Generator[Event, Any, None]:
        """Block until all of *origin*'s outstanding operations completed."""
        pending = self._pending.pop(origin, [])
        if pending:
            yield AllOf(self.world.env, pending)
