"""Two-sided MPI substrate running on the simulated hosts.

One MPI rank maps to one cluster node (the paper runs one runtime-system
instance — and, in the MPI-CUDA baseline, one application rank — per node).
The implementation provides the subset the dCUDA runtime and the baseline
mini-applications need:

* eager nonblocking ``isend``/``irecv`` with :class:`Request` handles and
  blocking wrappers,
* wildcard matching (``ANY_SOURCE`` / ``ANY_TAG``) with MPI non-overtaking
  order per (source, destination) pair,
* CUDA-awareness: device buffers below the staging threshold travel direct
  device-to-device (GPUDirect bandwidth); above it they are staged through
  host memory at the full link bandwidth — OpenMPI's documented behaviour
  on the paper's test system.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from ..hw.cluster import Cluster
from ..sim import Environment, Event, Store
from .message import Envelope, copy_payload, payload_nbytes
from .request import Request

__all__ = ["MPIWorld", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class MPIWorld:
    """The (simulated) MPI library: one rank per cluster node."""

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.size = cluster.num_nodes
        self._inbox = [Store(self.env, name=f"mpi.inbox{r}")
                       for r in range(self.size)]
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._recv_next: Dict[Tuple[int, int], int] = {}
        self._ooo: Dict[Tuple[int, int], Dict[int, Envelope]] = {}
        # Per-rank collective epoch (collective calls are globally ordered
        # per communicator, so these stay in sync across ranks).
        self._coll_epoch = [0] * self.size
        # -- statistics
        self.messages_sent = 0
        self.bytes_sent = 0.0

    # -- rank/topology -------------------------------------------------------
    def check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")

    def node_of(self, rank: int) -> int:
        self.check_rank(rank)
        return rank

    # -- point-to-point --------------------------------------------------------
    def isend(self, src: int, dst: int, payload: Any, tag: int = 0,
              nbytes: Optional[float] = None, device: bool = False,
              mode: Optional[str] = None) -> Request:
        """Nonblocking send; the request completes when the send buffer is
        reusable (injection finished).

        *mode* overrides the library's transfer-path choice: the dCUDA
        runtime pins its payload transfers to ``"d2d"`` (its own protocol
        always moves data directly between devices, §III-B), while regular
        CUDA-aware sends pick staged-vs-direct by the 30 kB threshold.
        """
        self.check_rank(src)
        self.check_rank(dst)
        size = payload_nbytes(payload, nbytes)
        key = (src, dst)
        seq = self._send_seq.get(key, 0)
        self._send_seq[key] = seq + 1
        env_msg = Envelope(src=src, dst=dst, tag=tag,
                           payload=copy_payload(payload), nbytes=size,
                           seq=seq, device=device)
        injected = self.env.event(name=f"sent:{src}->{dst}")
        self.env.process(self._send_proc(env_msg, injected, mode),
                         name=f"isend:{src}->{dst}")
        self.messages_sent += 1
        self.bytes_sent += size
        return Request(self.env, injected, kind=f"isend->{dst}")

    def send(self, src: int, dst: int, payload: Any, tag: int = 0,
             nbytes: Optional[float] = None,
             device: bool = False) -> Generator[Event, Any, None]:
        """Blocking send (completes at local completion, eager protocol)."""
        req = self.isend(src, dst, payload, tag, nbytes, device)
        yield from req.wait()

    def irecv(self, rank: int, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; the request's value is the :class:`Envelope`."""
        self.check_rank(rank)
        if source != ANY_SOURCE:
            self.check_rank(source)
        ev = self._inbox[rank].get(
            lambda m: m.matches(source, tag, ANY_SOURCE, ANY_TAG))
        return Request(self.env, ev, kind=f"irecv@{rank}")

    def recv(self, rank: int, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Generator[Event, Any, Envelope]:
        """Blocking receive; returns the matched :class:`Envelope`."""
        req = self.irecv(rank, source, tag)
        msg = yield from req.wait()
        return msg

    def iprobe(self, rank: int, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> bool:
        """True when a matching message is already buffered (MPI_Iprobe)."""
        self.check_rank(rank)
        return self._inbox[rank].peek(
            lambda m: m.matches(source, tag, ANY_SOURCE, ANY_TAG)) is not None

    # -- transfer internals ------------------------------------------------------
    def _transfer_plan(self, msg: Envelope) -> Tuple[str, float]:
        """Pick (fabric mode, extra latency) for a message."""
        fab = self.cluster.cfg.fabric
        if msg.device and msg.src != msg.dst:
            if msg.nbytes > fab.staging_threshold:
                # Host staging: full link bandwidth, pipeline fill/drain of
                # the two DMA engines added as latency.  Each end pays its
                # own node's DMA setup (node classes may differ).
                platform = self.cluster.platform
                return "host", (platform.pcie_of(msg.src).dma_startup
                                + platform.pcie_of(msg.dst).dma_startup)
            return "d2d", 0.0
        return "host", 0.0

    def _send_proc(self, msg: Envelope, injected: Event,
                   mode_override: Optional[str] = None):
        # Sender-side software overhead (protocol, matching bookkeeping).
        yield self.cluster.cfg.host.mpi_overhead
        if mode_override is not None:
            mode, extra = mode_override, 0.0
        else:
            mode, extra = self._transfer_plan(msg)
        arrival = self.cluster.fabric.transmit(
            msg.src, msg.dst, msg.nbytes, mode=mode, injected=injected,
            extra_latency=extra)
        yield arrival
        self._deliver(msg)

    def _deliver(self, msg: Envelope) -> None:
        """Deliver respecting per-(src, dst) FIFO order (non-overtaking)."""
        key = (msg.src, msg.dst)
        expected = self._recv_next.get(key, 0)
        if msg.seq != expected:
            self._ooo.setdefault(key, {})[msg.seq] = msg
            return
        self._inbox[msg.dst].try_put(msg)
        self._recv_next[key] = expected + 1
        pending = self._ooo.get(key)
        while pending and self._recv_next[key] in pending:
            nxt = pending.pop(self._recv_next[key])
            self._inbox[msg.dst].try_put(nxt)
            self._recv_next[key] += 1

    # -- collective support (see collectives.py) -----------------------------
    def next_collective_epoch(self, rank: int) -> int:
        epoch = self._coll_epoch[rank]
        self._coll_epoch[rank] += 1
        return epoch
