"""Bandwidth-shared and serial transfer links.

Two transfer models are used throughout the hardware layer:

* :class:`FairShareLink` — a max-min fair shared medium: all active flows
  progress simultaneously, each receiving ``bandwidth / n_active``.  Models
  device-memory bandwidth shared by all SMs, or a NIC shared by concurrent
  messages.  This is the processor-sharing fluid model: completion times are
  recomputed whenever the set of active flows changes.
* :class:`SerialLink` — an exclusive FCFS link with per-use fixed latency and
  per-byte cost.  Models PCI-Express transactions and DMA-engine copies where
  transfers serialize.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .core import Environment, Event
from .primitives import Semaphore

__all__ = ["FairShareLink", "SerialLink"]

_EPS_BYTES = 1e-6  # flows with fewer remaining bytes are considered done


class _Flow:
    __slots__ = ("remaining", "event", "weight")

    def __init__(self, nbytes: float, event: Event, weight: float):
        self.remaining = float(nbytes)
        self.event = event
        self.weight = weight


class FairShareLink:
    """Max-min fair shared bandwidth medium (fluid model).

    ``transfer(nbytes)`` returns an event that fires when the flow completes.
    All active flows share :attr:`bandwidth` proportionally to their weights
    (equal weights ⇒ equal shares).  Total throughput never exceeds the link
    bandwidth, so n concurrent memory-bound kernels each take n× longer —
    which is exactly the contention behaviour the GPU memory model needs.
    """

    def __init__(self, env: Environment, bandwidth: float,
                 name: str = "link"):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.name = name
        self.bandwidth = float(bandwidth)
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._wake_generation = 0
        #: Total bytes ever completed (for utilization accounting).
        self.bytes_transferred = 0.0

    # -- public API ------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start a flow of *nbytes*; the event fires at completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        ev = self.env.event(name=f"xfer:{self.name}")
        if nbytes <= _EPS_BYTES:
            ev.succeed()
            return ev
        self._advance()
        self._flows.append(_Flow(nbytes, ev, weight))
        self.bytes_transferred += nbytes
        self._reschedule()
        return ev

    def stream(self, nbytes: float,
               weight: float = 1.0) -> Generator[Event, Any, None]:
        """``yield from link.stream(n)`` — blocking transfer helper."""
        yield self.transfer(nbytes, weight)

    def time_to_transfer(self, nbytes: float) -> float:
        """Uncontended transfer time (convenience for cost estimates)."""
        return nbytes / self.bandwidth

    # -- fluid-model internals ------------------------------------------
    def _total_weight(self) -> float:
        return sum(f.weight for f in self._flows)

    def _advance(self) -> None:
        """Apply progress accrued since the last state change."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._flows:
            return
        total_w = self._total_weight()
        rate_per_weight = self.bandwidth / total_w
        done: List[_Flow] = []
        for flow in self._flows:
            flow.remaining -= elapsed * rate_per_weight * flow.weight
            if flow.remaining <= _EPS_BYTES:
                done.append(flow)
        for flow in done:
            self._flows.remove(flow)
            flow.event.succeed()

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest flow-completion time."""
        self._wake_generation += 1
        if not self._flows:
            return
        gen = self._wake_generation
        total_w = self._total_weight()
        rate_per_weight = self.bandwidth / total_w
        next_done = min(f.remaining / (rate_per_weight * f.weight)
                        for f in self._flows)
        wake = self.env.timeout(next_done, name=f"wake:{self.name}")
        wake.add_callback(lambda _ev: self._on_wake(gen))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer state change
        self._advance()
        self._reschedule()


class SerialLink:
    """Exclusive FCFS link: each use costs ``latency + nbytes / bandwidth``.

    Uses are serialized — a second transfer waits for the first.  An
    infinite-bandwidth link (``bandwidth=None``) charges only the latency,
    which models fixed-cost transactions (e.g. a single PCIe write).
    """

    def __init__(self, env: Environment, latency: float,
                 bandwidth: Optional[float] = None, name: str = "serial"):
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.name = name
        self.latency = float(latency)
        self.bandwidth = bandwidth
        self._lock = Semaphore(env, 1, name=f"lock:{name}")
        #: Cumulative busy time (for utilization accounting).
        self.busy_time = 0.0
        self.transactions = 0

    def occupancy(self, nbytes: float = 0.0) -> float:
        """Time the link is held for a transfer of *nbytes*."""
        cost = self.latency
        if self.bandwidth is not None:
            cost += nbytes / self.bandwidth
        return cost

    def transact(self, nbytes: float = 0.0) -> Generator[Event, Any, None]:
        """``yield from link.transact(n)`` — acquire, hold for cost, release."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        yield from self._lock.acquire()
        try:
            cost = self.occupancy(nbytes)
            self.busy_time += cost
            self.transactions += 1
            yield self.env.timeout(cost)
        finally:
            self._lock.release()

    @property
    def queued(self) -> int:
        return self._lock.queued
