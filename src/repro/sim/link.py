"""Bandwidth-shared and serial transfer links.

Two transfer models are used throughout the hardware layer:

* :class:`FairShareLink` — a max-min fair shared medium: all active flows
  progress simultaneously, each receiving ``bandwidth / n_active``.  Models
  device-memory bandwidth shared by all SMs, or a NIC shared by concurrent
  messages.  This is the processor-sharing fluid model in its *virtual
  time* formulation: completion times are derived from the cumulative
  service-per-unit-weight curve instead of recomputed per state change.
* :class:`SerialLink` — an exclusive FCFS link with per-use fixed latency and
  per-byte cost.  Models PCI-Express transactions and DMA-engine copies where
  transfers serialize.

Virtual-time fluid model
------------------------
The classic processor-sharing trick: let ``S(t)`` be the cumulative service
delivered *per unit weight* (bytes/weight) since the link last went idle.
While the active set is constant, ``dS/dt = bandwidth / total_weight``.  A
flow entering at service level ``S0`` with ``nbytes/weight = r`` completes
exactly when ``S`` reaches ``S0 + r`` — a constant, so completions live in
a min-heap keyed by that target service level.  A state change (flow entry
or completion) then costs ``O(log n)`` instead of the naive model's
``O(n)`` decrement-and-rescan, ``_advance`` touches only the flows that
actually completed, and the total weight is a single incrementally
maintained scalar.  When the link drains, ``S`` resets to zero so the
virtual clock never loses precision on long runs.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Generator, List, Optional, Sequence, Tuple

from .core import Environment, Event
from .primitives import AllOf, Semaphore

try:  # numpy is an optional [perf] extra — the fluid model runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy smoke test
    _np = None

__all__ = ["FairShareLink", "SerialLink"]

_EPS_BYTES = 1e-6  # flows with fewer remaining bytes are considered done

#: Batch sizes at or above this use one ``heapify`` merge (O(n+m)) instead
#: of m pushes; below it the pushes are cheaper.  Either strategy yields
#: the identical pop order (the heap keys are totally ordered by
#: ``(target, seq)``), so the threshold is a pure cost knob.
_BULK_HEAPIFY_MIN = 8

#: Completion sweeps over heaps at least this large go through the numpy
#: array sweep (when numpy is importable); smaller heaps pop one by one.
_SWEEP_MIN = 64


class _Flow:
    __slots__ = ("event", "weight")

    def __init__(self, event: Event, weight: float):
        self.event = event
        self.weight = weight


class FairShareLink:
    """Max-min fair shared bandwidth medium (fluid model).

    ``transfer(nbytes)`` returns an event that fires when the flow completes.
    All active flows share :attr:`bandwidth` proportionally to their weights
    (equal weights ⇒ equal shares).  Total throughput never exceeds the link
    bandwidth, so n concurrent memory-bound kernels each take n× longer —
    which is exactly the contention behaviour the GPU memory model needs.
    """

    def __init__(self, env: Environment, bandwidth: float,
                 name: str = "link", obs: Any = None, faults: Any = None):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.name = name
        self.bandwidth = float(bandwidth)
        # Observability (duck-typed to keep sim free of upward imports):
        # an active-flow occupancy series plus a bytes counter, or None.
        # Instruments only record — they never touch the event queue.
        self._flow_series = obs.link_series(f"link.{name}.active_flows") \
            if obs else None
        self._byte_counter = obs.link_counter(f"link.{name}.bytes") \
            if obs else None
        # Fault plane (same duck-typed contract): transient bandwidth
        # degradation scales a flow's *service demand* at entry, or None.
        self._faults = faults
        #: Completion heap: ``(target service level, entry seq, flow)``.
        self._heap: List[Tuple[float, int, _Flow]] = []
        self._flow_seq = 0
        #: Cumulative service per unit weight since the link last drained.
        self._service = 0.0
        #: Incrementally maintained sum of active-flow weights.
        self._weight_sum = 0.0
        self._last_update = env._now
        self._wake_generation = 0
        #: Total bytes ever completed (for utilization accounting).
        self.bytes_transferred = 0.0

    # -- public API ------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._heap)

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start a flow of *nbytes*; the event fires at completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        ev = self.env.event(name=f"xfer:{self.name}")
        if nbytes <= _EPS_BYTES:
            ev.succeed()
            return ev
        self._advance()
        demand = nbytes
        if self._faults is not None:
            # A degradation window multiplies the flow's service demand —
            # the bytes counter below still records the *actual* payload.
            demand = nbytes * self._faults.degrade_factor(
                self.name, self.env._now)
        target = self._service + demand / weight
        self._flow_seq += 1
        heappush(self._heap, (target, self._flow_seq, _Flow(ev, weight)))
        self._weight_sum += weight
        self.bytes_transferred += nbytes
        if self._flow_series is not None:
            self._flow_series.sample(self.env._now, len(self._heap))
            self._byte_counter.inc(nbytes)
        self._reschedule()
        return ev

    def transfer_batch(self, sizes: Sequence[float],
                       weight: float = 1.0) -> List[Event]:
        """Enter one flow per entry of *sizes* in a single state change.

        Bit-identical to calling :meth:`transfer` once per size at the
        same instant — same targets (the virtual clock cannot move between
        same-timestamp entries), same entry-sequence numbers, hence the
        same completion order and times — but it rolls the virtual clock
        once, reschedules the wakeup once instead of per flow, computes
        the target service levels in one (optionally numpy) sweep, and
        merges large batches into the heap with a single ``heapify``.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        for nbytes in sizes:
            if nbytes < 0:
                raise ValueError(f"negative transfer size {nbytes!r}")
        env = self.env
        events = [env.event(name=f"xfer:{self.name}") for _ in sizes]
        # Empty flows ahead of the first real one complete before the
        # clock rolls — exactly where transfer() succeeds them relative
        # to the completions _advance() delivers.
        first = 0
        n = len(events)
        while first < n and sizes[first] <= _EPS_BYTES:
            events[first].succeed()
            first += 1
        if first == n:
            return events
        self._advance()
        service = self._service
        # Every float expression below mirrors :meth:`transfer` elementwise
        # (``service + (nbytes * factor) / weight``, per-flow ``weight_sum``
        # and byte accumulation) so batch entry is IEEE-exact against
        # sequential entry — the parity tests compare with ``==``.
        if self._faults is not None:
            factor = self._faults.degrade_factor(self.name, env._now)
            if _np is not None and n - first >= _BULK_HEAPIFY_MIN:
                targets = (service + (_np.asarray(sizes[first:], dtype=float)
                                      * factor) / weight).tolist()
            else:
                targets = [service + (nbytes * factor) / weight
                           for nbytes in sizes[first:]]
        elif _np is not None and n - first >= _BULK_HEAPIFY_MIN:
            targets = (service + _np.asarray(sizes[first:],
                                             dtype=float) / weight).tolist()
        else:
            targets = [service + nbytes / weight for nbytes in sizes[first:]]
        heap = self._heap
        seq = self._flow_seq
        entries = []
        batch_bytes = 0.0
        for nbytes, target, ev in zip(sizes[first:], targets, events[first:]):
            if nbytes <= _EPS_BYTES:
                ev.succeed()
                continue
            seq += 1
            entries.append((target, seq, _Flow(ev, weight)))
            self._weight_sum += weight
            self.bytes_transferred += nbytes
            batch_bytes += nbytes
        self._flow_seq = seq
        if entries:
            if len(entries) >= _BULK_HEAPIFY_MIN:
                heap.extend(entries)
                heapify(heap)
            else:
                for entry in entries:
                    heappush(heap, entry)
            if self._flow_series is not None:
                self._flow_series.sample(env._now, len(heap))
                self._byte_counter.inc(batch_bytes)
            self._reschedule()
        return events

    def stream(self, nbytes: float,
               weight: float = 1.0) -> Generator[Event, Any, None]:
        """``yield from link.stream(n)`` — blocking transfer helper."""
        yield self.transfer(nbytes, weight)

    def stream_batch(self, sizes: Sequence[float],
                     weight: float = 1.0) -> Generator[Event, Any, None]:
        """``yield from link.stream_batch(sizes)`` — wait for all flows."""
        events = self.transfer_batch(sizes, weight)
        if events:
            yield AllOf(self.env, events)

    def time_to_transfer(self, nbytes: float) -> float:
        """Uncontended transfer time (convenience for cost estimates)."""
        return nbytes / self.bandwidth

    # -- fluid-model internals ------------------------------------------
    def _advance(self) -> None:
        """Roll the virtual clock forward; complete flows that are due."""
        env = self.env
        now = env._now
        elapsed = now - self._last_update
        self._last_update = now
        heap = self._heap
        if elapsed <= 0 or not heap:
            return
        service = self._service + elapsed * (self.bandwidth / self._weight_sum)
        self._service = service
        # A flow is done when its remaining bytes ``(target - S) * weight``
        # drop below the epsilon — only completed flows are ever touched.
        completed = 0
        if (_np is not None and len(heap) >= _SWEEP_MIN
                and (heap[0][0] - service) * heap[0][2].weight <= _EPS_BYTES):
            # Array sweep: completions pop in sorted ``(target, seq)``
            # order, and a fully sorted list is a valid heap, so sort once
            # and find the due prefix in one vector comparison.  The due
            # set is a prefix of the sorted order because the pop loop
            # below stops at the first non-due top.  Per-flow weight-sum
            # decrements stay sequential — IEEE-exact vs. the pop loop.
            heap.sort()
            targets = _np.fromiter((e[0] for e in heap), dtype=float,
                                   count=len(heap))
            weights = _np.fromiter((e[2].weight for e in heap), dtype=float,
                                   count=len(heap))
            due = (targets - service) * weights <= _EPS_BYTES
            completed = int(due.argmin()) if not due.all() else len(heap)
            for _target, _seq, flow in heap[:completed]:
                self._weight_sum -= flow.weight
                flow.event.succeed()
            del heap[:completed]
        while heap and (heap[0][0] - service) * heap[0][2].weight <= _EPS_BYTES:
            _target, _seq, flow = heappop(heap)
            self._weight_sum -= flow.weight
            flow.event.succeed()
            completed += 1
        if completed and self._flow_series is not None:
            self._flow_series.sample(now, len(heap))
        if not heap:
            # Idle link: reset the virtual clock so ``S`` stays small and
            # the incremental weight sum cannot accumulate float dust.
            self._service = 0.0
            self._weight_sum = 0.0

    def _reschedule(self) -> None:
        """Schedule a wakeup at the earliest flow-completion time."""
        self._wake_generation += 1
        heap = self._heap
        if not heap:
            return
        gen = self._wake_generation
        # Earliest completion: the heap top reaches its target service.
        delay = ((heap[0][0] - self._service)
                 * self._weight_sum / self.bandwidth)
        if delay < 0.0:  # pragma: no cover - float-dust guard
            delay = 0.0
        self.env.call_at(delay, self._on_wake, gen)

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer state change
        self._advance()
        self._reschedule()


class SerialLink:
    """Exclusive FCFS link: each use costs ``latency + nbytes / bandwidth``.

    Uses are serialized — a second transfer waits for the first.  An
    infinite-bandwidth link (``bandwidth=None``) charges only the latency,
    which models fixed-cost transactions (e.g. a single PCIe write).
    """

    def __init__(self, env: Environment, latency: float,
                 bandwidth: Optional[float] = None, name: str = "serial"):
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.name = name
        self.latency = float(latency)
        self.bandwidth = bandwidth
        self._lock = Semaphore(env, 1, name=f"lock:{name}")
        #: Cumulative busy time (for utilization accounting).
        self.busy_time = 0.0
        self.transactions = 0

    def occupancy(self, nbytes: float = 0.0) -> float:
        """Time the link is held for a transfer of *nbytes*."""
        cost = self.latency
        if self.bandwidth is not None:
            cost += nbytes / self.bandwidth
        return cost

    def transact(self, nbytes: float = 0.0) -> Generator[Event, Any, None]:
        """``yield from link.transact(n)`` — acquire, hold for cost, release."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        yield from self._lock.acquire()
        try:
            cost = self.occupancy(nbytes)
            self.busy_time += cost
            self.transactions += 1
            yield cost
        finally:
            self._lock.release()

    @property
    def queued(self) -> int:
        return self._lock.queued
