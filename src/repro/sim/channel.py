"""Message stores and channels.

:class:`Store` is the FIFO producer/consumer buffer that simulated hardware
queues and MPI matching are built on.  It supports optional capacity bounds
(puts block when full) and filtered gets (a consumer can wait for the first
item matching a predicate — used by MPI tag matching and by the dCUDA
notification queue).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, List, Optional, Tuple

from .core import PENDING, Environment, Event

__all__ = ["Store", "Channel"]


class Store:
    """FIFO store with optional capacity and filtered consumption.

    *Puts* deliver in FIFO order; *gets* match the oldest item satisfying
    their filter.  Waiting getters are served in arrival order whenever new
    items arrive.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None,
                 name: str = "store"):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.name = name
        self._put_name = "put:" + name
        self._get_name = "get:" + name
        self.capacity = capacity
        self._items: List[Any] = []
        self._getters: List[Tuple[Event, Optional[Callable[[Any], bool]]]] = []
        self._putters: deque = deque()

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (read-only view for tests/traces)."""
        return tuple(self._items)

    # -- producing -----------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Insert *item*; the returned event fires once the item is stored."""
        # Inlined Event construction (hot path: every simulated hardware
        # queue insert comes through here).
        ev = Event.__new__(Event)
        ev.env = self.env
        ev.callbacks = []
        ev._value = PENDING
        ev._exception = None
        ev._scheduled = False
        ev.name = self._put_name
        ev.abandoned = False
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((ev, item))
        else:
            self._items.append(item)
            ev.succeed()
            # Inlined _dispatch fast path: with no waiting getter the
            # dispatch scan reduces to admitting blocked putters (and with
            # capacity headroom there are none).
            if self._getters:
                self._dispatch()
            elif self._putters:
                self._admit_putters()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        if self._getters:
            self._dispatch()
        elif self._putters:
            self._admit_putters()
        return True

    # -- consuming -----------------------------------------------------------
    def get(self, filt: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the oldest item matching *filt* (or any item)."""
        ev = Event.__new__(Event)
        ev.env = self.env
        ev.callbacks = []
        ev._value = PENDING
        ev._exception = None
        ev._scheduled = False
        ev.name = self._get_name
        ev.abandoned = False
        if not self._getters:
            # Fast path: nobody queued ahead, so this getter takes the
            # oldest matching item directly — the same item, succeeded at
            # the same program point, as the general _dispatch scan.
            items = self._items
            for idx, item in enumerate(items):
                if filt is None or filt(item):
                    del items[idx]
                    ev.succeed(item)
                    if self._putters:
                        self._admit_putters()
                    return ev
            self._getters.append((ev, filt))
            return ev
        self._getters.append((ev, filt))
        self._dispatch()
        return ev

    def try_get(self, filt: Optional[Callable[[Any], bool]] = None) -> Any:
        """Non-blocking get; returns ``None`` when nothing matches.

        Only valid when no getters are queued ahead (otherwise it would
        reorder consumers); in that case it raises ``RuntimeError``.
        """
        if self._getters:
            raise RuntimeError(f"try_get on {self.name!r} with queued getters")
        for idx, item in enumerate(self._items):
            if filt is None or filt(item):
                del self._items[idx]
                if self._putters:
                    self._admit_putters()
                return item
        return None

    def peek(self, filt: Optional[Callable[[Any], bool]] = None) -> Any:
        """Return (without removing) the oldest matching item, or ``None``."""
        for item in self._items:
            if filt is None or filt(item):
                return item
        return None

    # -- internals ------------------------------------------------------------
    def _prune_abandoned(self) -> None:
        """Drop waiters whose process was interrupted away (see
        :attr:`repro.sim.core.Event.abandoned`); handing them items would
        silently lose data."""
        getters = self._getters
        if getters and any(ev.abandoned for ev, _ in getters):
            self._getters = [(ev, f) for ev, f in getters
                             if not ev.abandoned]
        putters = self._putters
        if putters and any(ev.abandoned for ev, _ in putters):
            self._putters = deque((ev, item) for ev, item in putters
                                  if not ev.abandoned)

    def _dispatch(self) -> None:
        # Serve waiting getters in order; each takes the oldest matching item.
        if not self._getters:
            self._admit_putters()
            return
        self._prune_abandoned()
        made_progress = True
        while made_progress:
            made_progress = False
            for g_idx, (ev, filt) in enumerate(self._getters):
                for i_idx, item in enumerate(self._items):
                    if filt is None or filt(item):
                        del self._getters[g_idx]
                        del self._items[i_idx]
                        ev.succeed(item)
                        made_progress = True
                        break
                if made_progress:
                    break
        self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and (self.capacity is None
                                 or len(self._items) < self.capacity):
            ev, item = self._putters.popleft()
            if ev.abandoned:
                continue
            self._items.append(item)
            ev.succeed()
            # New item may satisfy a waiting getter.
            self._dispatch_one()

    def _dispatch_one(self) -> None:
        self._prune_abandoned()
        for g_idx, (ev, filt) in enumerate(self._getters):
            for i_idx, item in enumerate(self._items):
                if filt is None or filt(item):
                    del self._getters[g_idx]
                    del self._items[i_idx]
                    ev.succeed(item)
                    return


class Channel:
    """Unidirectional rendezvous-free message channel (thin Store wrapper).

    Adds a convenience generator API: ``yield from chan.send(msg)`` and
    ``msg = yield from chan.recv()``.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None,
                 name: str = "channel"):
        self._store = Store(env, capacity, name)

    def __len__(self) -> int:
        return len(self._store)

    def send(self, msg: Any) -> Generator[Event, Any, None]:
        yield self._store.put(msg)

    def recv(self,
             filt: Optional[Callable[[Any], bool]] = None
             ) -> Generator[Event, Any, Any]:
        msg = yield self._store.get(filt)
        return msg

    def put_event(self, msg: Any) -> Event:
        return self._store.put(msg)

    def get_event(self,
                  filt: Optional[Callable[[Any], bool]] = None) -> Event:
        return self._store.get(filt)
