"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Process`, :class:`Interrupt`
* primitives: :class:`Signal`, :class:`Gate`, :class:`Semaphore`,
  :class:`AllOf`, :class:`AnyOf`
* :class:`Store` / :class:`Channel` message buffers
* :class:`FairShareLink` / :class:`SerialLink` transfer models
* :class:`Resource` FCFS resource with utilization accounting
* :class:`Tracer` interval tracing
"""

from .core import (
    PARK,
    PENDING,
    Environment,
    EnvStats,
    Event,
    Interrupt,
    Process,
    SimulationError,
)
from .primitives import AllOf, AnyOf, Gate, Semaphore, Signal, wait_all
from .channel import Channel, Store
from .link import FairShareLink, SerialLink
from .resources import Resource
from .trace import Interval, Tracer, merge_intervals, overlap_time, total_time

__all__ = [
    "Environment", "EnvStats", "Event", "Interrupt", "Process",
    "SimulationError", "PARK", "PENDING",
    "AllOf", "AnyOf", "Gate", "Semaphore", "Signal", "wait_all",
    "Channel", "Store",
    "FairShareLink", "SerialLink",
    "Resource",
    "Interval", "Tracer", "merge_intervals", "overlap_time", "total_time",
]
