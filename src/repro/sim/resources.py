"""FCFS resources with utilization accounting.

:class:`Resource` wraps :class:`~repro.sim.primitives.Semaphore` with the
``use(duration)`` pattern that the SM issue units and DMA engines need, and
keeps busy-time statistics so benchmarks can report utilization.
"""

from __future__ import annotations

from typing import Any, Generator

from .core import PENDING, Environment, Event
from .primitives import Semaphore

__all__ = ["Resource"]


class Resource:
    """A capacity-limited FCFS resource.

    ``yield from res.use(duration)`` acquires a slot, holds it for
    *duration*, and releases it.  For finer control, ``acquire``/``release``
    are exposed directly.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: str = "resource"):
        self.env = env
        self.name = name
        self._sem = Semaphore(env, capacity, name=name)
        self.busy_time = 0.0
        self.uses = 0

    @property
    def capacity(self) -> int:
        return self._sem.capacity

    @property
    def available(self) -> int:
        return self._sem.available

    @property
    def queued(self) -> int:
        return self._sem.queued

    def acquire(self) -> Generator[Event, Any, None]:
        yield from self._sem.acquire()

    def release(self) -> None:
        self._sem.release()

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Hold one slot for *duration* time units."""
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        # Inlined uncontended Semaphore.acquire — use() is the hottest
        # generator in the simulator (every issue-unit and host-worker
        # charge), so it pays to skip the delegated frame.
        sem = self._sem
        if sem._available > 0 and not sem._queue:
            sem._available -= 1
            yield 0.0
        else:
            free = sem._efree
            if free:
                ev = free.pop()
                ev.callbacks = []
                ev._value = PENDING
                ev._scheduled = False
            else:
                ev = Event(sem.env, sem._req_name)
            sem._queue.append(ev)
            yield ev
            free.append(ev)
        try:
            self.busy_time += duration
            self.uses += 1
            yield duration
        finally:
            sem.release()

    def utilization(self, elapsed: float) -> float:
        """Fraction of capacity-time spent busy over *elapsed* time."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)
