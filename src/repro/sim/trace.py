"""Interval tracing for schedule visualization and statistics.

The tracer records ``(actor, kind, t_start, t_end, detail)`` intervals.  The
GPU model emits *compute*, *comm*, and *wait* intervals per block, which lets
benchmarks measure overlap directly (Fig. 1 of the paper is a picture of
exactly this trace) and lets tests assert that communication of one block
overlaps computation of another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Interval", "Tracer", "merge_intervals", "total_time", "overlap_time"]


@dataclass(frozen=True)
class Interval:
    """One traced activity interval."""

    actor: str
    kind: str
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects activity intervals; cheap no-op when disabled."""

    enabled: bool = True
    intervals: List[Interval] = field(default_factory=list)

    def record(self, actor: str, kind: str, start: float, end: float,
               detail: str = "") -> None:
        if not self.enabled:
            return
        if not isinstance(actor, str) or not actor:
            raise ValueError(f"interval actor must be a non-empty string, "
                             f"got {actor!r}")
        if not isinstance(kind, str) or not kind:
            raise ValueError(f"interval kind must be a non-empty string, "
                             f"got {kind!r}")
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        self.intervals.append(Interval(actor, kind, start, end, detail))

    def clear(self) -> None:
        self.intervals.clear()

    # -- queries --------------------------------------------------------
    def by_actor(self, actor: str) -> List[Interval]:
        return [iv for iv in self.intervals if iv.actor == actor]

    def by_kind(self, kind: str) -> List[Interval]:
        return [iv for iv in self.intervals if iv.kind == kind]

    def actors(self) -> List[str]:
        seen: Dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.actor, None)
        return list(seen)

    def busy_time(self, kind: Optional[str] = None,
                  actor: Optional[str] = None) -> float:
        """Union length of matching intervals (overlaps counted once)."""
        spans = [(iv.start, iv.end) for iv in self.intervals
                 if (kind is None or iv.kind == kind)
                 and (actor is None or iv.actor == actor)]
        return total_time(spans)

    def to_chrome_trace(self) -> list:
        """Export as Chrome trace-event JSON objects (``chrome://tracing``
        / Perfetto 'X' complete events, microsecond timestamps).

        Write with ``json.dump({"traceEvents": tracer.to_chrome_trace()},
        fh)`` and load the file in any trace viewer.
        """
        events = []
        pids = {actor: i for i, actor in enumerate(self.actors())}
        for iv in self.intervals:
            events.append({
                "name": iv.detail or iv.kind,
                "cat": iv.kind,
                "ph": "X",
                "ts": iv.start * 1e6,
                "dur": iv.duration * 1e6,
                "pid": 0,
                "tid": pids[iv.actor],
                "args": {"actor": iv.actor},
            })
        return events

    def render_ascii(self, width: int = 72,
                     kinds: Optional[Dict[str, str]] = None) -> str:
        """Render a Fig.-1-style timeline, one row per actor.

        *kinds* maps interval kind → single display character; defaults to
        the first letter of the kind.  Gaps render as ``.``.
        """
        if not self.intervals:
            return "(empty trace)"
        t0 = min(iv.start for iv in self.intervals)
        t1 = max(iv.end for iv in self.intervals)
        span = max(t1 - t0, 1e-30)
        lines = []
        for actor in self.actors():
            row = ["."] * width
            for iv in self.by_actor(actor):
                c0 = int((iv.start - t0) / span * (width - 1))
                c1 = int((iv.end - t0) / span * (width - 1))
                char = (kinds or {}).get(iv.kind, iv.kind[:1] or "?")
                for c in range(c0, max(c0, c1) + 1):
                    row[c] = char
            lines.append(f"{actor:>16s} |{''.join(row)}|")
        return "\n".join(lines)


def merge_intervals(spans: Iterable[Tuple[float, float]]
                    ) -> List[Tuple[float, float]]:
    """Merge overlapping ``(start, end)`` spans into a disjoint sorted list."""
    ordered = sorted((s, e) for s, e in spans if e > s)
    merged: List[Tuple[float, float]] = []
    for s, e in ordered:
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


def total_time(spans: Iterable[Tuple[float, float]]) -> float:
    """Union length of the given spans."""
    return sum(e - s for s, e in merge_intervals(spans))


def overlap_time(a: Iterable[Tuple[float, float]],
                 b: Iterable[Tuple[float, float]]) -> float:
    """Length of the intersection of the unions of *a* and *b*.

    This is the quantity the overlap benchmarks report: how much
    communication time (one span set) is hidden under computation time
    (the other span set).
    """
    ma, mb = merge_intervals(a), merge_intervals(b)
    i = j = 0
    total = 0.0
    while i < len(ma) and j < len(mb):
        s = max(ma[i][0], mb[j][0])
        e = min(ma[i][1], mb[j][1])
        if e > s:
            total += e - s
        if ma[i][1] <= mb[j][1]:
            i += 1
        else:
            j += 1
    return total
