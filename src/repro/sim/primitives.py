"""Synchronization primitives built on the DES kernel.

These are the building blocks the hardware and runtime models use:

* :class:`Signal` — a reusable broadcast condition; waiters get fresh
  one-shot events, ``fire`` wakes everyone currently waiting.
* :class:`Gate` — a level-triggered condition (open/closed); waiting on an
  open gate completes immediately.
* :class:`Semaphore` — counting semaphore with FCFS wakeup order.
* :class:`AllOf` / :class:`AnyOf` — event combinators.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, List, Sequence

from .core import PENDING, Environment, Event

__all__ = ["Signal", "Gate", "Semaphore", "AllOf", "AnyOf", "wait_all"]


class Signal:
    """A reusable broadcast condition.

    Each call to :meth:`wait` returns a fresh one-shot event.  ``fire(value)``
    succeeds every event handed out since the last fire.  There is no memory:
    a waiter that arrives after a fire waits for the next one.
    """

    def __init__(self, env: Environment, name: str = "signal"):
        self.env = env
        self.name = name
        self._wait_name = "wait:" + name
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        """Return an event that fires at the next :meth:`fire`."""
        ev = Event(self.env, self._wait_name)
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters = self._waiters
        if not waiters:
            # No-waiter fast path: queues fire their arrived/space-freed
            # signals on every commit, almost always into an empty waiter
            # list — skip the replacement-list allocation.
            return 0
        self._waiters = []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Gate:
    """A level-triggered condition.

    While *open*, :meth:`wait` completes immediately; while *closed*, waiters
    block until :meth:`open` is called.  Used e.g. for "queue has space"
    conditions.
    """

    def __init__(self, env: Environment, is_open: bool = False,
                 name: str = "gate"):
        self.env = env
        self.name = name
        self._wait_name = "wait:" + name
        self._open = is_open
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.env, self._wait_name)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False


class Semaphore:
    """Counting semaphore with FCFS handout order.

    ``acquire`` is a generator intended for ``yield from``; ``release``
    returns the token.  The semaphore tracks the number of waiters so models
    can inspect contention.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "sem"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.name = name
        self._req_name = "req:" + name
        self.capacity = capacity
        self._available = capacity
        self._queue: deque = deque()
        # Recycled request events (flyweight pool): an event whose waiter
        # resumed normally is reset and reused by the next contended
        # acquire.  Abandoned events (interrupted waiters) never resume,
        # so they never re-enter the pool.
        self._efree: List[Event] = []

    @property
    def available(self) -> int:
        return self._available

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        """Return an event that fires once a token is held."""
        ev = Event(self.env, self._req_name)
        if self._available > 0 and not self._queue:
            self._available -= 1
            ev.succeed()
        else:
            self._queue.append(ev)
        return ev

    def acquire(self) -> Generator[Event, Any, None]:
        """``yield from sem.acquire()`` blocks until a token is held."""
        if self._available > 0 and not self._queue:
            # Uncontended: take the token and yield a bare zero-delay sleep
            # — the exact queue slot the immediately-succeeded request event
            # would occupy, without building the Event.
            self._available -= 1
            yield 0.0
        else:
            free = self._efree
            if free:
                ev = free.pop()
                ev.callbacks = []
                ev._value = PENDING
                ev._scheduled = False
            else:
                ev = Event(self.env, self._req_name)
            self._queue.append(ev)
            yield ev
            free.append(ev)

    def release(self) -> None:
        # Skip waiters whose process was interrupted away from the request
        # — granting them a token would leak it forever.
        while self._queue and self._queue[0].abandoned:
            self._queue.popleft()
        if self._queue:
            self._queue.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise RuntimeError(f"semaphore {self.name!r} over-released")
            self._available += 1


class AllOf(Event):
    """Fires once every constituent event has fired.

    Value is the list of constituent values in input order.  If any
    constituent fails, this condition fails with the first failure.
    """

    __slots__ = ("_events", "_pending_count")

    def __init__(self, env: Environment, events: Sequence[Event]):
        super().__init__(env, name="all_of")
        self._events = list(events)
        self._pending_count = len(self._events)
        if self._pending_count == 0:
            self.succeed([])
            return
        # One shared bound-method callback for every constituent (closures
        # per event are pure allocation churn): constituent values are
        # read back from the events themselves at completion, which gives
        # the identical input-order list.
        on_child = self._on_child
        for ev in self._events:
            ev.add_callback(on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Fires as soon as any constituent event fires.

    Value is ``(index, value)`` of the first event to fire.  A constituent
    failure fails the condition (if it is the first to trigger).
    """

    __slots__ = ("_events",)

    def __init__(self, env: Environment, events: Sequence[Event]):
        super().__init__(env, name="any_of")
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf of zero events would never fire")
        on_child = self._on_child
        for ev in self._events:
            ev.add_callback(on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exception is not None:
            self.fail(ev._exception)
        else:
            # index() finds the first occurrence, which is exactly the
            # constituent whose callback fires first for duplicates.
            self.succeed((self._events.index(ev), ev._value))


def wait_all(env: Environment,
             events: Sequence[Event]) -> Generator[Event, Any, list]:
    """``yield from wait_all(env, events)`` — join helper returning values."""
    results = yield AllOf(env, events)
    return results
