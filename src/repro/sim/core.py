"""Discrete-event simulation kernel.

This module implements the minimal deterministic event loop that the whole
GPU-cluster model runs on.  The design follows the classic process-based DES
style (as popularized by SimPy) but is hand-rolled so that the scheduler is
fully deterministic and has no external dependencies:

* :class:`Environment` owns simulated time and a priority queue of pending
  events keyed by ``(time, priority, sequence)`` — the sequence number breaks
  ties so that two runs of the same program produce identical schedules.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator.  The generator *yields* events;
  whenever a yielded event fires, the process is resumed with the event's
  value (or the event's exception is thrown into the generator).  A process
  is itself an event that succeeds with the generator's return value, so
  processes can be joined (``yield child``) and composed (``yield from``).

Hot-path notes: the event loop processes hundreds of thousands of entries
per simulated run, so the kernel offers a second, lighter scheduling lane
next to full events: :meth:`Environment.call_at` enqueues a bare
``(callable, args)`` pair — no callback list, no value slot, no one-shot
bookkeeping — which fire-and-forget machinery (bandwidth-link wakeups,
posted-write commits, process starts) uses instead of sentinel events.
Both lanes share the same ``(time, priority, sequence)`` heap, so a
deferred call occupies exactly the queue position the equivalent sentinel
event would have — the schedule is unchanged, only cheaper.

Only the simulation kernel lives here; synchronization primitives built on
top of it (timeouts, signals, resources, stores, bandwidth links) live in the
sibling modules of :mod:`repro.sim`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "EnvStats",
    "Event",
    "Process",
    "Interrupt",
    "SimulationError",
    "PENDING",
]


class EnvStats:
    """Event-loop counters for the observability layer.

    Only attached via :meth:`Environment.enable_stats`; a bare environment
    carries ``stats = None`` and its hot loop is byte-for-byte the
    uninstrumented one (``run`` dispatches to the counting twin loop only
    when stats are attached).  Counting is passive — the instrumented loop
    pops, advances time, and dispatches in exactly the same order, so
    attaching stats never moves a simulated timestamp.
    """

    __slots__ = ("entries", "deferred_calls", "events", "callbacks",
                 "time_advances", "max_queue_len")

    def __init__(self) -> None:
        #: Queue entries processed (events + deferred calls).
        self.entries = 0
        #: Lightweight-lane deferred calls fired.
        self.deferred_calls = 0
        #: Full events processed (callback lists run).
        self.events = 0
        #: Individual callbacks invoked.
        self.callbacks = 0
        #: Entries that advanced the simulated clock.
        self.time_advances = 0
        #: High-water mark of the pending-entry heap.
        self.max_queue_len = 0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


PENDING = _Pending()


class _Deferred:
    """A bare scheduled call — the lightweight event-queue lane.

    Carries only the callable and its arguments; the event loop invokes it
    directly instead of running an event's callback list.  Never exposed to
    user code: processes cannot wait on it.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: tuple):
        self.fn = fn
        self.args = args


class Event:
    """A one-shot occurrence that processes may wait on.

    An event goes through at most one transition: *pending* →
    *triggered* (either succeeded with a value or failed with an
    exception).  Once triggered it is scheduled on the environment's queue
    and its callbacks run at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_scheduled",
                 "name", "abandoned")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        #: Callables invoked with this event when it fires.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self.name = name
        #: Set when the process waiting on this event was interrupted away
        #: from it; queue-like primitives drop abandoned waiters instead of
        #: handing them items/tokens nobody will receive.
        self.abandoned = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- transitions --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with *value* and schedule its callbacks."""
        if self._value is not PENDING or self._exception is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        # Inlined Environment._schedule (hot path): a freshly triggered
        # event can never already sit on the queue.
        env = self.env
        self._scheduled = True
        env._seq += 1
        heappush(env._queue, (env._now, 1, env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event get the exception thrown into their
        generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed: run at once (still inside the event loop).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class _StartValue:
    """Duck-typed stand-in for the start sentinel event of a process.

    Read-only: :meth:`Process._step` only looks at ``_exception`` and
    ``_value``, so one shared instance starts every process.
    """

    __slots__ = ()
    _exception = None
    _value = None


_START = _StartValue()


class _Sleeping:
    """Sentinel for ``Process._waiting_on`` while in a bare-delay sleep."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<SLEEPING>"


_SLEEPING = _Sleeping()


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` instances.  The process is itself an
    event which succeeds with the generator's return value, enabling joins::

        result = yield env.process(worker(env))
    """

    __slots__ = ("_generator", "_waiting_on", "_sleep_id")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any], name: str = ""):
        super().__init__(env, name or getattr(generator, "__name__", "proc"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        #: Wakeup-generation counter for bare-delay sleeps; a stale deferred
        #: wakeup (the sleep was interrupted away) compares unequal and is
        #: dropped.
        self._sleep_id = 0
        # Kick off the process as soon as the loop runs: a deferred call in
        # place of the old sentinel start event (same queue slot, no Event).
        env.call_at(0.0, self._step, _START)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the awaited event first.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        interrupter = Event(self.env, name=f"interrupt:{self.name}")
        interrupter.add_callback(self._on_interrupt_event)
        interrupter.fail(Interrupt(cause))

    # -- internals ----------------------------------------------------------
    def _on_interrupt_event(self, event: Event) -> None:
        if self.triggered:
            return  # finished in the meantime; drop the interrupt
        target = self._waiting_on
        if target is _SLEEPING:
            # Invalidate the pending deferred wakeup for the sleep.
            self._sleep_id += 1
        elif target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._step)
            except ValueError:
                pass
            if not target.triggered:
                target.abandoned = True
        self._waiting_on = None
        self._step(event)

    def _wake_sleep(self, sleep_id: int) -> None:
        """Deferred wakeup for a bare-delay sleep (``yield <float>``)."""
        if sleep_id == self._sleep_id and self._waiting_on is _SLEEPING:
            self._step(_START)

    def _step(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        gen = self._generator
        env._active_process = self
        try:
            exception = event._exception
            if exception is not None:
                target = gen.throw(exception)
            else:
                value = event._value
                target = gen.send(None if value is PENDING else value)
        except StopIteration as stop:
            env._active_process = None
            self._value = stop.value
            env._schedule(self)
            return
        except BaseException as exc:
            env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._exception = exc
            self._value = None
            env._schedule(self)
            return
        env._active_process = None
        cls = target.__class__
        if cls is float:
            # Bare-delay sleep: occupies the exact queue slot the
            # equivalent ``yield env.timeout(delay)`` would have taken
            # (same time, priority, and sequence number) without building
            # an Event.  Hot sim-internal delays use this lane.
            if target < 0:
                gen.throw(ValueError(f"negative delay {target!r}"))
            self._waiting_on = _SLEEPING
            self._sleep_id += 1
            env._seq += 1
            heappush(env._queue,
                     (env._now + target, 1, env._seq,
                      _Deferred(self._wake_sleep, (self._sleep_id,))))
            return
        if cls is not Event and not isinstance(target, Event):
            if isinstance(target, float):
                # Slow-path sleep for float subclasses (numpy scalars).
                delay = float(target)
                if delay < 0:
                    gen.throw(ValueError(f"negative delay {target!r}"))
                self._waiting_on = _SLEEPING
                self._sleep_id += 1
                env._seq += 1
                heappush(env._queue,
                         (env._now + delay, 1, env._seq,
                          _Deferred(self._wake_sleep, (self._sleep_id,))))
                return
            gen.throw(TypeError(
                f"process {self.name!r} yielded non-event {target!r}"))
        if target.env is not env:
            gen.throw(SimulationError(
                "yielded event belongs to a different environment"))
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is not None:
            callbacks.append(self._step)
        else:
            # Target already processed — resume immediately (inlined
            # Event.add_callback fallback).
            self._step(target)


class Environment:
    """The simulation environment: clock plus event queue.

    Events are executed in order of ``(time, priority, sequence)``.  Lower
    priority values run first at equal times; the default priority is 1 and
    "urgent" kernel-internal events use 0.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Any] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Event-loop counters (observability); ``None`` keeps the
        #: uninstrumented hot loop.
        self.stats: Optional[EnvStats] = None

    def enable_stats(self) -> EnvStats:
        """Attach (or return the existing) event-loop counters."""
        if self.stats is None:
            self.stats = EnvStats()
        return self.stats

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event creation ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined Event construction + scheduling: timeouts are the single
        # most allocated event kind (~half the queue on big runs).
        ev = Event.__new__(Event)
        ev.env = self
        ev.callbacks = []
        ev._value = value
        ev._exception = None
        ev._scheduled = True
        ev.name = name or "timeout"
        ev.abandoned = False
        self._seq += 1
        heappush(self._queue, (self._now + delay, 1, self._seq, ev))
        return ev

    def call_at(self, delay: float, fn: Callable[..., None],
                *args: Any) -> None:
        """Schedule a bare ``fn(*args)`` call ``delay`` time units from now.

        The lightweight fire-and-forget lane: nothing waits on it, nothing
        observes it — it simply runs at its queue position.  Used for link
        wakeups, posted-write commits, and process starts; prefer it over a
        sentinel ``timeout().add_callback`` pair whenever no process will
        ever yield on the occurrence.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay, 1, self._seq, _Deferred(fn, args)))

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Spawn *generator* as a new process."""
        return Process(self, generator, name)

    def run_all(self, generators: Iterable[Generator[Event, Any, Any]]) -> list:
        """Spawn all *generators*, run to completion, return their results."""
        procs = [self.process(g) for g in generators]
        self.run()
        return [p.value for p in procs]

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = 1) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._seq += 1
        heappush(self._queue,
                 (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one queue entry."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        stats = self.stats
        if stats is not None:
            stats.entries += 1
            if len(self._queue) > stats.max_queue_len:
                stats.max_queue_len = len(self._queue)
        when, _prio, _seq, event = heappop(self._queue)
        if when > self._now:
            self._now = when
            if stats is not None:
                stats.time_advances += 1
        if event.__class__ is _Deferred:
            if stats is not None:
                stats.deferred_calls += 1
            event.fn(*event.args)
            return
        callbacks = event.callbacks
        event.callbacks = None
        if stats is not None:
            stats.events += 1
            stats.callbacks += len(callbacks)
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*.

        Unhandled process failures propagate out of :meth:`run` the moment
        the failed process event is processed with no observer attached.
        """
        if self.stats is not None:
            return self._run_counting(until)
        queue = self._queue
        if until is None:
            # Hot loop: local aliases, no bound checks, single-callback
            # dispatch without iterator setup.
            while queue:
                when, _prio, _seq, event = heappop(queue)
                if event.__class__ is _Deferred:
                    if when > self._now:
                        self._now = when
                    event.fn(*event.args)
                    continue
                if event.abandoned:
                    # An orphaned timer (e.g. the losing arm of a bounded
                    # wait): dropped without advancing the clock, so a
                    # dangling timeout cannot stretch the simulated run.
                    continue
                if when > self._now:
                    self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if (not callbacks and event._exception is not None
                        and isinstance(event, Process)):
                    raise event._exception
            return
        if until < self._now:
            raise ValueError(f"until={until!r} lies in the past")
        while queue:
            if queue[0][0] > until:
                self._now = until
                return
            when, _prio, _seq, event = heappop(queue)
            if event.__class__ is _Deferred:
                if when > self._now:
                    self._now = when
                event.fn(*event.args)
                continue
            if event.abandoned:
                continue
            if when > self._now:
                self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if (not callbacks and event._exception is not None
                    and isinstance(event, Process)):
                raise event._exception
        self._now = until

    def run_watchdog(self, deadline: float) -> bool:
        """Run like :meth:`run`, but stop *before* crossing ``deadline``.

        Returns ``True`` when the queue drained (normal completion) and
        ``False`` when the next event lies beyond the deadline — i.e. the
        simulation would run past its simulated-time budget.  Unlike
        ``run(until=deadline)`` the clock is left at the last processed
        event, not advanced to the deadline, so callers can still report a
        meaningful elapsed time for the work that did happen.  Unhandled
        process failures propagate exactly as in :meth:`run`.
        """
        queue = self._queue
        stats = self.stats
        while queue:
            if queue[0][0] > deadline:
                head = queue[0][3]
                if head.__class__ is not _Deferred and head.abandoned:
                    # An orphaned timer beyond the deadline is not pending
                    # work — drop it instead of declaring a timeout.
                    heappop(queue)
                    continue
                return False
            if stats is not None:
                stats.entries += 1
                if len(queue) > stats.max_queue_len:
                    stats.max_queue_len = len(queue)
            when, _prio, _seq, event = heappop(queue)
            if event.__class__ is _Deferred:
                if when > self._now:
                    self._now = when
                    if stats is not None:
                        stats.time_advances += 1
                if stats is not None:
                    stats.deferred_calls += 1
                event.fn(*event.args)
                continue
            if event.abandoned:
                continue
            if when > self._now:
                self._now = when
                if stats is not None:
                    stats.time_advances += 1
            callbacks = event.callbacks
            event.callbacks = None
            if stats is not None:
                stats.events += 1
                stats.callbacks += len(callbacks)
            for callback in callbacks:
                callback(event)
            if (not callbacks and event._exception is not None
                    and isinstance(event, Process)):
                raise event._exception
        return True

    def _run_counting(self, until: Optional[float] = None) -> None:
        """Twin of :meth:`run` that also bumps :class:`EnvStats` counters.

        Pops, time advances, and callback dispatch happen in exactly the
        same order as the uninstrumented loop — the counters are pure
        observation, so the schedule (and every simulated timestamp) is
        identical with stats attached.
        """
        queue = self._queue
        stats = self.stats
        if until is not None and until < self._now:
            raise ValueError(f"until={until!r} lies in the past")
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return
            stats.entries += 1
            if len(queue) > stats.max_queue_len:
                stats.max_queue_len = len(queue)
            when, _prio, _seq, event = heappop(queue)
            if event.__class__ is _Deferred:
                if when > self._now:
                    self._now = when
                    stats.time_advances += 1
                stats.deferred_calls += 1
                event.fn(*event.args)
                continue
            if event.abandoned:
                continue
            if when > self._now:
                self._now = when
                stats.time_advances += 1
            callbacks = event.callbacks
            event.callbacks = None
            stats.events += 1
            stats.callbacks += len(callbacks)
            for callback in callbacks:
                callback(event)
            if (not callbacks and event._exception is not None
                    and isinstance(event, Process)):
                raise event._exception
        if until is not None:
            self._now = until
