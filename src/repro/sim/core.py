"""Discrete-event simulation kernel.

This module implements the minimal deterministic event loop that the whole
GPU-cluster model runs on.  The design follows the classic process-based DES
style (as popularized by SimPy) but is hand-rolled so that the scheduler is
fully deterministic and has no external dependencies:

* :class:`Environment` owns simulated time and a priority queue of pending
  events keyed by ``(time, priority, sequence)`` — the sequence number breaks
  ties so that two runs of the same program produce identical schedules.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator.  The generator *yields* events;
  whenever a yielded event fires, the process is resumed with the event's
  value (or the event's exception is thrown into the generator).  A process
  is itself an event that succeeds with the generator's return value, so
  processes can be joined (``yield child``) and composed (``yield from``).

Only the simulation kernel lives here; synchronization primitives built on
top of it (timeouts, signals, resources, stores, bandwidth links) live in the
sibling modules of :mod:`repro.sim`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Interrupt",
    "SimulationError",
    "PENDING",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence that processes may wait on.

    An event goes through at most one transition: *pending* →
    *triggered* (either succeeded with a value or failed with an
    exception).  Once triggered it is scheduled on the environment's queue
    and its callbacks run at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_scheduled",
                 "name", "abandoned")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        #: Callables invoked with this event when it fires.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self.name = name
        #: Set when the process waiting on this event was interrupted away
        #: from it; queue-like primitives drop abandoned waiters instead of
        #: handing them items/tokens nobody will receive.
        self.abandoned = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- transitions --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with *value* and schedule its callbacks."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event get the exception thrown into their
        generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed: run at once (still inside the event loop).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` instances.  The process is itself an
    event which succeeds with the generator's return value, enabling joins::

        result = yield env.process(worker(env))
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any], name: str = ""):
        super().__init__(env, name or getattr(generator, "__name__", "proc"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off the process as soon as the loop runs.
        start = Event(env, name=f"start:{self.name}")
        start.add_callback(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the awaited event first.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        interrupter = Event(self.env, name=f"interrupt:{self.name}")
        interrupter.add_callback(self._on_interrupt_event)
        interrupter.fail(Interrupt(cause))

    # -- internals ----------------------------------------------------------
    def _on_interrupt_event(self, event: Event) -> None:
        if self.triggered:
            return  # finished in the meantime; drop the interrupt
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.triggered:
                target.abandoned = True
        self._waiting_on = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(
                    None if event._value is PENDING else event._value)
        except StopIteration as stop:
            env._active_process = None
            self._value = stop.value
            env._schedule(self)
            return
        except BaseException as exc:
            env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._exception = exc
            self._value = None
            env._schedule(self)
            return
        env._active_process = None
        if not isinstance(target, Event):
            self._generator.throw(TypeError(
                f"process {self.name!r} yielded non-event {target!r}"))
        if target.env is not env:
            self._generator.throw(SimulationError(
                "yielded event belongs to a different environment"))
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """The simulation environment: clock plus event queue.

    Events are executed in order of ``(time, priority, sequence)``.  Lower
    priority values run first at equal times; the default priority is 1 and
    "urgent" kernel-internal events use 0.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Any] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event creation ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        ev = Event(self, name or "timeout")
        ev._value = value
        self._schedule(ev, delay=delay)
        return ev

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Spawn *generator* as a new process."""
        return Process(self, generator, name)

    def run_all(self, generators: Iterable[Generator[Event, Any, Any]]) -> list:
        """Spawn all *generators*, run to completion, return their results."""
        procs = [self.process(g) for g in generators]
        self.run()
        return [p.value for p in procs]

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = 1) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue,
                       (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now - 1e-18:  # pragma: no cover - defensive
            raise SimulationError("time ran backwards")
        self._now = max(self._now, when)
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*.

        Unhandled process failures propagate out of :meth:`run` the moment
        the failed process event is processed with no observer attached.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until!r} lies in the past")
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return
            when, _prio, _seq, event = heapq.heappop(self._queue)
            self._now = max(self._now, when)
            callbacks = event.callbacks
            event.callbacks = None
            assert callbacks is not None
            for callback in callbacks:
                callback(event)
            if (event._exception is not None and not callbacks
                    and isinstance(event, Process)):
                raise event._exception
        if until is not None:
            self._now = until
