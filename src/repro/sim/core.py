"""Discrete-event simulation kernel.

This module implements the minimal deterministic event loop that the whole
GPU-cluster model runs on.  The design follows the classic process-based DES
style (as popularized by SimPy) but is hand-rolled so that the scheduler is
fully deterministic and has no external dependencies:

* :class:`Environment` owns simulated time and a pending-entry schedule
  ordered by ``(time, priority, sequence)`` — the sequence number breaks
  ties so that two runs of the same program produce identical schedules.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator.  The generator *yields* events;
  whenever a yielded event fires, the process is resumed with the event's
  value (or the event's exception is thrown into the generator).  A process
  is itself an event that succeeds with the generator's return value, so
  processes can be joined (``yield child``) and composed (``yield from``).

Scheduler structure (the batched calendar-queue core)
-----------------------------------------------------
The schedule is *logically* one priority queue keyed by ``(time, priority,
sequence)``; it is *physically* three tiers, chosen so the overwhelmingly
common scheduling patterns never touch a heap:

1. **The due lane** — a plain FIFO of entries scheduled at *exactly* the
   current simulated time with the default priority.  Sequence numbers are
   handed out monotonically, so appending keeps the lane sorted by
   construction; a triggered event (``succeed``/``fail``), a zero-delay
   timeout, and a zero-delay deferred call are all O(1) appends, and the
   run loop drains the lane in a tight batch without re-checking the clock
   — the clock advances once per distinct timestamp, not once per entry.
2. **The near-future ring** — a calendar queue of ``_RING_SIZE`` time
   buckets, each ``bucket_width`` of simulated time wide.  An entry with
   ``when`` within the ring horizon lands in bucket ``int(when / width)
   mod _RING_SIZE``; each bucket is a small binary heap ordered by the full
   ``(time, priority, sequence)`` key, so intra-bucket order is exactly the
   global order restricted to that bucket.  Because ``int(when / width)``
   is monotone in ``when`` and the horizon spans exactly one lap of the
   ring, draining buckets in slot order and each bucket in key order
   reproduces the global key order bit-for-bit.
3. **The far-future overflow heap** — entries beyond the ring horizon
   (long fault windows, watchdogs, anything ``>= _RING_SIZE`` buckets
   ahead).  As the clock advances, due overflow entries migrate into the
   ring; each entry migrates at most once.

Hot-path notes: the event loop processes hundreds of thousands of entries
per simulated run, so the kernel offers a second, lighter scheduling lane
next to full events: :meth:`Environment.call_at` enqueues a bare
``(callable, args)`` pair — no callback list, no value slot, no one-shot
bookkeeping — which fire-and-forget machinery (bandwidth-link wakeups,
posted-write commits, process starts) uses instead of sentinel events.
Both lanes share the same ``(time, priority, sequence)`` keys, so a
deferred call occupies exactly the queue position the equivalent sentinel
event would have — the schedule is unchanged, only cheaper.  Retired
:class:`_Deferred` carriers are recycled through a freelist
(``Environment._dfree``): the deferred/timeout lane is roughly half the
queue on big runs, and slot reuse removes that allocation churn entirely.
(Full :class:`Event` objects are deliberately *not* pooled: user code may
legally hold a reference to a fired event — the losing arm of a bounded
wait, a stored put-acknowledgement — and observe ``.value``/``.ok`` long
after dispatch, so recycling them would corrupt observable state.)

Only the simulation kernel lives here; synchronization primitives built on
top of it (timeouts, signals, resources, stores, bandwidth links) live in the
sibling modules of :mod:`repro.sim`.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "EnvStats",
    "Event",
    "Process",
    "Interrupt",
    "SimulationError",
    "PENDING",
    "PARK",
]

#: Number of calendar buckets in the near-future ring (power of two).
_RING_SIZE = 256
_RING_MASK = _RING_SIZE - 1
#: Default bucket width [simulated seconds].  The hardware model's event
#: spacing is nanoseconds-to-microseconds (memory latencies, PCIe
#: transactions, NIC serialization), so 100 ns buckets put typical delays a
#: handful of slots ahead and the ring horizon (_RING_SIZE * width ≈ 25.6 µs)
#: comfortably beyond the common case; millisecond-scale fault windows and
#: watchdogs overflow to the far heap.
_DEFAULT_BUCKET_WIDTH = 1e-7
#: Slot numbers stay below 2**52 so ``float(slot + _RING_SIZE)`` is exact
#: and the ring-eligibility boundary is bit-stable; beyond it (≈ 14 sim
#: years at the default width) the core degrades to the far heap alone,
#: which is simply the classic single-heap scheduler.
_SLOT_LIMIT = float(2 ** 52)
#: Sentinel for "no timed entry pending": compares greater than every real
#: schedule entry (real priorities are 0–2, the sentinel's is 3), so the
#: hot loops test ``entry < _NO_ENTRY`` / ``ne[0] > now`` without a
#: ``None`` branch.  Identity (``is _NO_ENTRY``) is the emptiness test.
_NO_ENTRY = (float("inf"), 3, 0, None)


class EnvStats:
    """Event-loop counters for the observability layer.

    Only attached via :meth:`Environment.enable_stats`; a bare environment
    carries ``stats = None`` and its hot loop is byte-for-byte the
    uninstrumented one (``run`` dispatches to the counting twin loop only
    when stats are attached).  Counting is passive — the instrumented loop
    pops, advances time, and dispatches in exactly the same order, so
    attaching stats never moves a simulated timestamp.
    """

    __slots__ = ("entries", "deferred_calls", "events", "callbacks",
                 "time_advances", "max_queue_len")

    def __init__(self) -> None:
        #: Queue entries processed (events + deferred calls).
        self.entries = 0
        #: Lightweight-lane deferred calls fired.
        self.deferred_calls = 0
        #: Full events processed (callback lists run).
        self.events = 0
        #: Individual callbacks invoked.
        self.callbacks = 0
        #: Entries that advanced the simulated clock.
        self.time_advances = 0
        #: High-water mark of pending schedule entries (all three tiers).
        self.max_queue_len = 0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PENDING>"


PENDING = _Pending()


class _Deferred:
    """A bare scheduled call — the lightweight event-queue lane.

    Carries only the callable and its arguments; the event loop invokes it
    directly instead of running an event's callback list.  Never exposed to
    user code: processes cannot wait on it.  Instances are recycled through
    the environment's freelist once dispatched.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: tuple):
        self.fn = fn
        self.args = args


class Event:
    """A one-shot occurrence that processes may wait on.

    An event goes through at most one transition: *pending* →
    *triggered* (either succeeded with a value or failed with an
    exception).  Once triggered it is scheduled on the environment's queue
    and its callbacks run at the current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_scheduled",
                 "name", "abandoned")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        #: Callables invoked with this event when it fires.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self.name = name
        #: Set when the process waiting on this event was interrupted away
        #: from it; queue-like primitives drop abandoned waiters instead of
        #: handing them items/tokens nobody will receive.
        self.abandoned = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed or is pending."""
        if self._exception is not None:
            raise self._exception
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- transitions --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with *value* and schedule its callbacks."""
        if self._value is not PENDING or self._exception is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        # Inlined Environment._schedule (hot path): a freshly triggered
        # event fires at the current time with default priority, which is
        # exactly the due lane — an O(1) append, no heap.
        env = self.env
        self._scheduled = True
        env._seq += 1
        env._due.append((env._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event get the exception thrown into their
        generator.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register *callback*; runs immediately if already processed."""
        if self.callbacks is None:
            # Already processed: run at once (still inside the event loop).
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class _StartValue:
    """Duck-typed stand-in for the start sentinel event of a process.

    Read-only: :meth:`Process._step` only looks at ``_exception`` and
    ``_value``, so one shared instance starts every process.
    """

    __slots__ = ()
    _exception = None
    _value = None


_START = _StartValue()


class _Sleeping:
    """Sentinel for ``Process._waiting_on`` while in a bare-delay sleep."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<SLEEPING>"


_SLEEPING = _Sleeping()
#: Shared argument tuple for sleep wakeups: every bare-delay wakeup resumes
#: its process with the start sentinel, so one module-level tuple serves
#: all of them (no per-sleep allocation).
_START_ARGS = (_START,)


class _Park:
    """Yield sentinel: suspend the process until an external wake.

    A process that yields :data:`PARK` detaches from the schedule entirely
    — no event, no timer, no queue entry.  It resumes only when some other
    component calls :meth:`Environment.wake_parked` (typically a queue that
    registered the parked process and computes the exact poll tick at which
    the process would have observed new work).  This is the poll-elision
    primitive: one scheduled wake replaces an unbounded
    ``while True: yield poll_latency`` loop, at the identical timestamp.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PARK>"


PARK = _Park()


class _Parked:
    """Sentinel for ``Process._waiting_on`` while parked (see ``PARK``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<PARKED>"


_PARKED = _Parked()


class _WakeBox:
    """Duck-typed value carrier for parked-process wakes.

    Like :class:`_StartValue` but with a writable value slot:
    :meth:`Process._step` reads only ``_exception`` (always ``None``) and
    ``_value``, so each process reuses one box for all its wakes — no Event
    allocation per wake.
    """

    __slots__ = ("_value",)
    _exception = None

    def __init__(self) -> None:
        self._value = None


def _drop_wake(_event: Any) -> None:
    """Replacement target for an invalidated sleep wakeup.

    Interrupting a sleeping process cannot remove its pending wakeup from
    the schedule, so the wakeup's deferred carrier is retargeted here and
    fires as a no-op at its original queue position.
    """


class Process(Event):
    """A running simulation process wrapping a generator.

    The generator yields :class:`Event` instances.  The process is itself an
    event which succeeds with the generator's return value, enabling joins::

        result = yield env.process(worker(env))
    """

    __slots__ = ("_generator", "_waiting_on", "_pending_wake",
                 "_wake_box", "_park_gen", "_park_queue", "_step_cb",
                 "_parked_cb")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any], name: str = ""):
        super().__init__(env, name or getattr(generator, "__name__", "proc"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        #: The deferred carrier of the pending bare-delay wakeup while
        #: ``_waiting_on is _SLEEPING``; interrupting the sleep retargets
        #: it at :func:`_drop_wake` so the stale wakeup fires as a no-op.
        self._pending_wake: Optional[_Deferred] = None
        #: Reusable value carrier for PARK wakes (lazily created on the
        #: first park; ``None`` for processes that never park).
        self._wake_box: Optional[_WakeBox] = None
        #: Park generation counter: bumped when a park is invalidated
        #: (interrupt while parked), so an already-scheduled wake for the
        #: stale park fires as a no-op.
        self._park_gen = 0
        #: The queue that registered this parked process, if any; cleared
        #: on wake or interrupt so future commits take the normal path.
        self._park_queue: Optional[Any] = None
        #: Cached bound methods: every sleep wakeup and event callback
        #: stores a reference to ``_step`` (and every park wake to
        #: ``_parked_step``) — binding them once removes a bound-method
        #: allocation per scheduling operation.
        self._step_cb = self._step
        self._parked_cb = self._parked_step
        # Kick off the process as soon as the loop runs: a deferred call in
        # place of the old sentinel start event (same queue slot, no Event).
        env.call_at(0.0, self._step_cb, _START)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the awaited event first.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        interrupter = Event(self.env, name=f"interrupt:{self.name}")
        interrupter.add_callback(self._on_interrupt_event)
        interrupter.fail(Interrupt(cause))

    # -- internals ----------------------------------------------------------
    def _on_interrupt_event(self, event: Event) -> None:
        if self.triggered:
            return  # finished in the meantime; drop the interrupt
        target = self._waiting_on
        if target is _SLEEPING:
            # Invalidate the pending deferred wakeup for the sleep: it
            # stays in the schedule but now fires as a no-op.
            self._pending_wake.fn = _drop_wake
            self._pending_wake = None
        elif target is _PARKED:
            # Deregister from the parking queue (future commits must take
            # the normal path) and invalidate any in-flight wake via the
            # generation counter.
            q = self._park_queue
            if q is not None and q._park_proc is self:
                q._park_proc = None
            self._park_queue = None
            self._park_gen += 1
        elif target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._step_cb)
            except ValueError:
                pass
            if not target.triggered:
                target.abandoned = True
        self._waiting_on = None
        self._step(event)

    def _sleep(self, delay: float) -> None:
        """Enter a bare-delay sleep: the wakeup occupies the exact queue
        slot the equivalent ``yield env.timeout(delay)`` would have taken
        (same time, priority, and sequence number) without building an
        Event.  The wakeup's deferred carrier calls :meth:`_step` directly
        — no trampoline frame.  Hot sim-internal delays use this lane (the
        common float case is inlined in :meth:`_step`; this method serves
        the float-subclass slow path)."""
        env = self.env
        self._waiting_on = _SLEEPING
        env._seq += 1
        free = env._dfree
        if free:
            d = free.pop()
            d.fn = self._step_cb
            d.args = _START_ARGS
        else:
            d = _Deferred(self._step_cb, _START_ARGS)
        self._pending_wake = d
        if delay == 0.0:
            env._due.append((env._seq, d))
            return
        # Inlined Environment timed push (see _push_timed).
        when = env._now + delay
        entry = (when, 1, env._seq, d)
        t = when * env._inv
        if t < env._ring_limit:
            b = env._ring[int(t) & _RING_MASK]
            heappush(b, entry)
            env._ring_count += 1
        else:
            b = env._far
            heappush(b, entry)
        if entry < env._next_entry:
            env._next_entry = entry
            env._next_src = b

    def _parked_step(self, gen: int, value: Any) -> None:
        """Resume a parked process with *value* (wake_parked's target).

        The generation guard drops wakes scheduled for a park that was
        since invalidated (interrupt) or already served.
        """
        if gen != self._park_gen or self._waiting_on is not _PARKED:
            return
        self._park_queue = None
        box = self._wake_box
        box._value = value
        self._step(box)

    def _step(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        gen = self._generator
        env._active_process = self
        try:
            exception = event._exception
            if exception is not None:
                target = gen.throw(exception)
            else:
                value = event._value
                target = gen.send(None if value is PENDING else value)
        except StopIteration as stop:
            env._active_process = None
            self._value = stop.value
            env._schedule(self)
            return
        except BaseException as exc:
            env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._exception = exc
            self._value = None
            env._schedule(self)
            return
        env._active_process = None
        cls = target.__class__
        if cls is float:
            # Inlined _sleep — the bare-delay lane is the hottest single
            # scheduling path in the whole model (every compute/latency
            # cost is a float yield).
            if target < 0:
                gen.throw(ValueError(f"negative delay {target!r}"))
            self._waiting_on = _SLEEPING
            env._seq += 1
            free = env._dfree
            if free:
                d = free.pop()
                d.fn = self._step_cb
                d.args = _START_ARGS
            else:
                d = _Deferred(self._step_cb, _START_ARGS)
            self._pending_wake = d
            if target == 0.0:
                env._due.append((env._seq, d))
                return
            when = env._now + target
            entry = (when, 1, env._seq, d)
            t = when * env._inv
            if t < env._ring_limit:
                b = env._ring[int(t) & _RING_MASK]
                heappush(b, entry)
                env._ring_count += 1
            else:
                b = env._far
                heappush(b, entry)
            if entry < env._next_entry:
                env._next_entry = entry
                env._next_src = b
            return
        if cls is not Event and not isinstance(target, Event):
            if target is PARK:
                # Park: detach from the schedule entirely.  The component
                # that handed out PARK (a queue) has registered this
                # process and will call Environment.wake_parked at the
                # exact tick a poll loop would have observed new work.
                if self._wake_box is None:
                    self._wake_box = _WakeBox()
                self._waiting_on = _PARKED
                return
            if isinstance(target, float):
                # Slow-path sleep for float subclasses (numpy scalars).
                delay = float(target)
                if delay < 0:
                    gen.throw(ValueError(f"negative delay {target!r}"))
                self._sleep(delay)
                return
            gen.throw(TypeError(
                f"process {self.name!r} yielded non-event {target!r}"))
        if target.env is not env:
            gen.throw(SimulationError(
                "yielded event belongs to a different environment"))
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is not None:
            callbacks.append(self._step_cb)
        else:
            # Target already processed — resume immediately (inlined
            # Event.add_callback fallback).
            self._step(target)


class Environment:
    """The simulation environment: clock plus event queue.

    Events are executed in order of ``(time, priority, sequence)``.  Lower
    priority values run first at equal times; the default priority is 1 and
    "urgent" kernel-internal events use 0.

    *bucket_width* is the calendar-queue bucket granularity in simulated
    seconds (see the module docstring); it is a pure performance knob — the
    dispatch order is identical for any positive width.
    """

    def __init__(self, initial_time: float = 0.0,
                 bucket_width: float = _DEFAULT_BUCKET_WIDTH):
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, "
                             f"got {bucket_width!r}")
        self._now = float(initial_time)
        self._seq = 0
        self._active_process: Optional[Process] = None
        # -- the three schedule tiers (see module docstring) -------------
        #: Due lane: ``(seq, obj)`` entries at exactly the current time
        #: with default priority, FIFO == seq order by construction.
        self._due: deque = deque()
        #: Near-future calendar ring: per-bucket heaps of full
        #: ``(when, priority, seq, obj)`` entries.
        self._ring: List[List[Any]] = [[] for _ in range(_RING_SIZE)]
        self._ring_count = 0
        #: Far-future overflow heap (beyond the ring horizon).
        self._far: List[Any] = []
        self._inv = 1.0 / bucket_width
        t = self._now * self._inv
        self._slot = int(t) if -_SLOT_LIMIT < t < _SLOT_LIMIT else 0
        #: Ring-eligibility boundary in slot units: an entry is ring-bound
        #: iff ``when * _inv < _ring_limit``.  Kept as an exact float
        #: (slots stay below 2**52) so pushes and far→ring migration agree
        #: bit-for-bit on the boundary.
        self._ring_limit = float(self._slot + _RING_SIZE)
        #: Cached minimum pending *timed* entry (ring or far) and the list
        #: that holds it at index 0; ``_NO_ENTRY`` when both tiers are
        #: empty.  Maintained on every push, recomputed after every timed
        #: pop.
        self._next_entry: tuple = _NO_ENTRY
        self._next_src: Optional[List[Any]] = None
        #: Freelist of retired _Deferred carriers (slot reuse).
        self._dfree: List[_Deferred] = []
        #: Event-loop counters (observability); ``None`` keeps the
        #: uninstrumented hot loop.
        self.stats: Optional[EnvStats] = None

    def enable_stats(self) -> EnvStats:
        """Attach (or return the existing) event-loop counters."""
        if self.stats is None:
            self.stats = EnvStats()
        return self.stats

    # -- clock ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event creation ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined Event construction + scheduling: timeouts are the single
        # most allocated event kind (~half the queue on big runs).
        ev = Event.__new__(Event)
        ev.env = self
        ev.callbacks = []
        ev._value = value
        ev._exception = None
        ev._scheduled = True
        ev.name = name or "timeout"
        ev.abandoned = False
        self._seq += 1
        if delay == 0.0:
            self._due.append((self._seq, ev))
            return ev
        # Inlined timed push (see _push_timed).
        when = self._now + delay
        entry = (when, 1, self._seq, ev)
        t = when * self._inv
        if t < self._ring_limit:
            b = self._ring[int(t) & _RING_MASK]
            heappush(b, entry)
            self._ring_count += 1
        else:
            b = self._far
            heappush(b, entry)
        if entry < self._next_entry:
            self._next_entry = entry
            self._next_src = b
        return ev

    def call_at(self, delay: float, fn: Callable[..., None],
                *args: Any) -> None:
        """Schedule a bare ``fn(*args)`` call ``delay`` time units from now.

        The lightweight fire-and-forget lane: nothing waits on it, nothing
        observes it — it simply runs at its queue position.  Used for link
        wakeups, posted-write commits, and process starts; prefer it over a
        sentinel ``timeout().add_callback`` pair whenever no process will
        ever yield on the occurrence.  The carrier object comes from the
        freelist when one is available.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._seq += 1
        free = self._dfree
        if free:
            d = free.pop()
            d.fn = fn
            d.args = args
        else:
            d = _Deferred(fn, args)
        if delay == 0.0:
            self._due.append((self._seq, d))
            return
        # Inlined timed push (see _push_timed).
        when = self._now + delay
        entry = (when, 1, self._seq, d)
        t = when * self._inv
        if t < self._ring_limit:
            b = self._ring[int(t) & _RING_MASK]
            heappush(b, entry)
            self._ring_count += 1
        else:
            b = self._far
            heappush(b, entry)
        if entry < self._next_entry:
            self._next_entry = entry
            self._next_src = b

    def wake_parked(self, delay: float, proc: Process,
                    value: Any = None) -> None:
        """Schedule a wake for a process parked via ``yield PARK``.

        The wake rides the lightweight deferred lane (same queue position a
        ``timeout(delay)`` the process could have yielded would occupy) and
        resumes the generator with *value*.  Stale wakes — the process was
        interrupted away from the park, or already woken — fire as no-ops
        via the park generation guard.
        """
        self.call_at(delay, proc._parked_cb, proc._park_gen, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        """Spawn *generator* as a new process."""
        return Process(self, generator, name)

    def run_all(self, generators: Iterable[Generator[Event, Any, Any]]) -> list:
        """Spawn all *generators*, run to completion, return their results."""
        procs = [self.process(g) for g in generators]
        self.run()
        return [p.value for p in procs]

    # -- scheduling --------------------------------------------------------
    def _push_timed(self, when: float, priority: int, seq: int,
                    obj: Any) -> None:
        """Insert a timed entry into the ring or the far heap.

        This is the canonical form of the push that the hot call sites
        (:meth:`timeout`, :meth:`call_at`, ``Process._sleep``) inline:
        bucket selection is ``int(when / width) mod _RING_SIZE``, and the
        cached minimum is min-updated so peeks never rescan.
        """
        entry = (when, priority, seq, obj)
        t = when * self._inv
        if t < self._ring_limit:
            b = self._ring[int(t) & _RING_MASK]
            heappush(b, entry)
            self._ring_count += 1
        else:
            b = self._far
            heappush(b, entry)
        if entry < self._next_entry:
            self._next_entry = entry
            self._next_src = b

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = 1) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._seq += 1
        if delay == 0.0 and priority == 1:
            self._due.append((self._seq, event))
        else:
            self._push_timed(self._now + delay, priority, self._seq, event)

    def _advance_clock(self, when: float) -> None:
        """Advance the clock to *when*; slide the ring window forward and
        migrate newly ring-eligible far-heap entries into their buckets."""
        self._now = when
        t = when * self._inv
        if t < _SLOT_LIMIT:
            ns = int(t)
            if ns > self._slot:
                self._slot = ns
                limit = float(ns + _RING_SIZE)
                self._ring_limit = limit
                far = self._far
                if far and far[0][0] * self._inv < limit:
                    ring = self._ring
                    inv = self._inv
                    while far and far[0][0] * inv < limit:
                        e = heappop(far)
                        heappush(ring[int(e[0] * inv) & _RING_MASK], e)
                        self._ring_count += 1

    def _rescan(self) -> None:
        """Recompute the cached minimum timed entry after a timed pop.

        Ring entries all lie within one ring lap of the current slot, so
        scanning slots upward from the clock's slot visits buckets in
        time order and the first non-empty bucket's top is the ring
        minimum; with the ring empty the far-heap top is the minimum.
        """
        if self._ring_count:
            s = self._slot
            ring = self._ring
            while True:
                b = ring[s & _RING_MASK]
                if b:
                    self._next_entry = b[0]
                    self._next_src = b
                    return
                s += 1
        far = self._far
        if far:
            self._next_entry = far[0]
            self._next_src = far
        else:
            self._next_entry = _NO_ENTRY
            self._next_src = None

    def _pop_timed(self) -> Any:
        """Pop the minimum timed entry; advance the clock; return its
        payload object — or ``None`` when the entry was an abandoned timer
        (dropped without advancing the clock, so a dangling timeout cannot
        stretch the simulated run)."""
        entry = self._next_entry
        src = self._next_src
        heappop(src)
        if src is not self._far:
            self._ring_count -= 1
        obj = entry[3]
        if obj.__class__ is not _Deferred and obj.abandoned:
            self._rescan()
            return None
        when = entry[0]
        if when > self._now:
            self._advance_clock(when)
        self._rescan()
        return obj

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._now if self._due else self._next_entry[0]

    def step(self) -> None:
        """Process exactly one schedule entry.

        Abandoned timers (e.g. the losing arm of a bounded wait whose
        winner already resumed the process) are *not* entries: they are
        consumed and dropped without dispatching and without advancing the
        clock — the same guard the batch loops apply — and the step
        processes the next live entry instead.
        """
        if not self._due and self._next_entry is _NO_ENTRY:
            raise SimulationError("step() on an empty schedule")
        stats = self.stats
        due = self._due
        while due or self._next_entry is not _NO_ENTRY:
            if stats is not None:
                stats.entries += 1
                pending = len(due) + self._ring_count + len(self._far)
                if pending > stats.max_queue_len:
                    stats.max_queue_len = pending
            # Entry selection: due lane vs cached timed minimum, full
            # (when, priority, seq) order (identical in all loops).
            ne = self._next_entry
            if due and (ne[0] > self._now or ne[1] > 1
                        or (ne[1] == 1 and ne[2] > due[0][0])):
                obj = due.popleft()[1]
                if obj.__class__ is not _Deferred and obj.abandoned:
                    continue
            else:
                before = self._now
                obj = self._pop_timed()
                if obj is None:
                    continue
                if stats is not None and self._now > before:
                    stats.time_advances += 1
            if obj.__class__ is _Deferred:
                if stats is not None:
                    stats.deferred_calls += 1
                obj.fn(*obj.args)
                self._dfree.append(obj)
                return
            callbacks = obj.callbacks
            obj.callbacks = None
            if stats is not None:
                stats.events += 1
                stats.callbacks += len(callbacks)
            for callback in callbacks:
                callback(obj)
            return
        # Every remaining entry was abandoned: the schedule is effectively
        # empty, and a silent no-op would strand ``while True: step()``
        # drivers.
        raise SimulationError("step() on an empty schedule")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches *until*.

        Unhandled process failures propagate out of :meth:`run` the moment
        the failed process event is processed with no observer attached.
        """
        if self.stats is not None:
            return self._run_counting(until)
        if until is not None and until < self._now:
            raise ValueError(f"until={until!r} lies in the past")
        # Hot loop: the pop/rescan/clock-advance machinery of _pop_timed is
        # inlined (a Python-level call per entry would cost more than the
        # heap work it wraps), stable containers and module globals are
        # local aliases, the clock is mirrored in a local (write-through to
        # ``_now`` so pushes from callbacks see it), and the due lane
        # drains in a tight batch — the clock only moves on timed pops,
        # i.e. once per distinct timestamp.
        due = self._due
        dfree = self._dfree
        ring = self._ring
        far = self._far
        inv = self._inv
        now = self._now
        no_entry = _NO_ENTRY
        deferred = _Deferred
        pop = heappop
        push = heappush
        slot_limit = _SLOT_LIMIT
        while True:
            ne = self._next_entry
            # Timed entries at the current timestamp carry smaller sequence
            # numbers than anything appended since the clock reached it, so
            # they interleave ahead of the due lane; the common case (next
            # timed entry in the future) is a single float compare.
            if due and (ne[0] > now or ne[1] > 1
                        or (ne[1] == 1 and ne[2] > due[0][0])):
                event = due.popleft()[1]
                if event.__class__ is deferred:
                    event.fn(*event.args)
                    dfree.append(event)
                    continue
                if event.abandoned:
                    # An orphaned timer (abandoned after being scheduled):
                    # dropped like its timed twin below.
                    continue
            else:
                if ne is no_entry:
                    if until is not None:
                        self._now = until
                    return
                when = ne[0]
                if until is not None and when > until:
                    self._now = until
                    return
                # -- inlined _pop_timed ----------------------------------
                src = self._next_src
                pop(src)
                if src is not far:
                    self._ring_count -= 1
                event = ne[3]
                is_def = event.__class__ is deferred
                if not is_def and event.abandoned:
                    event = None  # dropped; no clock advance
                elif when > now:
                    # Inlined _advance_clock: slide the ring window and
                    # migrate newly eligible far-heap entries.
                    now = when
                    self._now = when
                    t = when * inv
                    if t < slot_limit:
                        ns = int(t)
                        if ns > self._slot:
                            self._slot = ns
                            limit = float(ns + _RING_SIZE)
                            self._ring_limit = limit
                            while far and far[0][0] * inv < limit:
                                e = pop(far)
                                push(ring[int(e[0] * inv) & _RING_MASK], e)
                                self._ring_count += 1
                # Inlined _rescan.  Fast path: a non-empty just-popped ring
                # bucket still holds the timed minimum — every other ring
                # entry lives in a strictly later slot (slot selection is
                # monotone in time), and the far-heap top is beyond the
                # ring horizon entirely.
                if src and src is not far:
                    self._next_entry = src[0]
                elif self._ring_count:
                    s = self._slot
                    while True:
                        b = ring[s & _RING_MASK]
                        if b:
                            self._next_entry = b[0]
                            self._next_src = b
                            break
                        s += 1
                elif far:
                    self._next_entry = far[0]
                    self._next_src = far
                else:
                    self._next_entry = no_entry
                    self._next_src = None
                # --------------------------------------------------------
                if event is None:
                    continue
                if is_def:
                    event.fn(*event.args)
                    dfree.append(event)
                    continue
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if (not callbacks and event._exception is not None
                    and isinstance(event, Process)):
                raise event._exception

    def run_watchdog(self, deadline: float) -> bool:
        """Run like :meth:`run`, but stop *before* crossing ``deadline``.

        Returns ``True`` when the queue drained (normal completion) and
        ``False`` when the next event lies beyond the deadline — i.e. the
        simulation would run past its simulated-time budget.  Unlike
        ``run(until=deadline)`` the clock is left at the last processed
        event, not advanced to the deadline, so callers can still report a
        meaningful elapsed time for the work that did happen.  Unhandled
        process failures propagate exactly as in :meth:`run`.
        """
        due = self._due
        dfree = self._dfree
        stats = self.stats
        while True:
            ne = self._next_entry
            if due:
                take_due = (ne[0] > self._now or ne[1] > 1
                            or (ne[1] == 1 and ne[2] > due[0][0]))
            elif ne is not _NO_ENTRY:
                if ne[0] > deadline:
                    head = ne[3]
                    if head.__class__ is not _Deferred and head.abandoned:
                        # An orphaned timer beyond the deadline is not
                        # pending work — drop it instead of declaring a
                        # timeout.
                        self._pop_timed()
                        continue
                    return False
                take_due = False
            else:
                return True
            if stats is not None:
                stats.entries += 1
                pending = len(due) + self._ring_count + len(self._far)
                if pending > stats.max_queue_len:
                    stats.max_queue_len = pending
            if take_due:
                event = due.popleft()[1]
            else:
                before = self._now
                event = self._pop_timed()
                if event is None:
                    continue
                if stats is not None and self._now > before:
                    stats.time_advances += 1
            if event.__class__ is _Deferred:
                if stats is not None:
                    stats.deferred_calls += 1
                event.fn(*event.args)
                dfree.append(event)
                continue
            if event.abandoned:
                continue
            callbacks = event.callbacks
            event.callbacks = None
            if stats is not None:
                stats.events += 1
                stats.callbacks += len(callbacks)
            for callback in callbacks:
                callback(event)
            if (not callbacks and event._exception is not None
                    and isinstance(event, Process)):
                raise event._exception

    def _run_counting(self, until: Optional[float] = None) -> None:
        """Twin of :meth:`run` that also bumps :class:`EnvStats` counters.

        Pops, time advances, and callback dispatch happen in exactly the
        same order as the uninstrumented loop — the counters are pure
        observation, so the schedule (and every simulated timestamp) is
        identical with stats attached.
        """
        due = self._due
        dfree = self._dfree
        stats = self.stats
        if until is not None and until < self._now:
            raise ValueError(f"until={until!r} lies in the past")
        while True:
            ne = self._next_entry
            if due:
                take_due = (ne[0] > self._now or ne[1] > 1
                            or (ne[1] == 1 and ne[2] > due[0][0]))
            elif ne is not _NO_ENTRY:
                if until is not None and ne[0] > until:
                    self._now = until
                    return
                take_due = False
            else:
                break
            stats.entries += 1
            pending = len(due) + self._ring_count + len(self._far)
            if pending > stats.max_queue_len:
                stats.max_queue_len = pending
            if take_due:
                event = due.popleft()[1]
            else:
                before = self._now
                event = self._pop_timed()
                if event is None:
                    continue
                if self._now > before:
                    stats.time_advances += 1
            if event.__class__ is _Deferred:
                stats.deferred_calls += 1
                event.fn(*event.args)
                dfree.append(event)
                continue
            if event.abandoned:
                continue
            callbacks = event.callbacks
            event.callbacks = None
            stats.events += 1
            stats.callbacks += len(callbacks)
            for callback in callbacks:
                callback(event)
            if (not callbacks and event._exception is not None
                    and isinstance(event, Process)):
                raise event._exception
        if until is not None:
            self._now = until
