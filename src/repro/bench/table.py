"""Plain-text table/series rendering for benchmark reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table", "format_value", "ascii_series"]


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """Aligned text table; one per reproduced figure."""

    title: str
    columns: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"row has {len(values)} cells, table has "
                             f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[format_value(v) for v in row] for row in self.rows]
        widths = [max(len(str(col)), *(len(r[i]) for r in cells))
                  if cells else len(str(col))
                  for i, col in enumerate(self.columns)]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(str(c).rjust(w)
                           for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def ascii_series(xs: Sequence[float], ys: Sequence[float], width: int = 60,
                 height: int = 12, label: str = "") -> str:
    """A tiny ASCII scatter/line plot for terminal benchmark reports."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("series must be equal-length and non-empty")
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = max(xmax - xmin, 1e-30)
    yspan = max(ymax - ymin, 1e-30)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - xmin) / xspan * (width - 1))
        row = height - 1 - int((y - ymin) / yspan * (height - 1))
        grid[row][col] = "*"
    lines = [f"{label} (y: {ymin:.3g}..{ymax:.3g}, x: {xmin:.3g}..{xmax:.3g})"]
    lines += ["|" + "".join(r) + "|" for r in grid]
    return "\n".join(lines)
