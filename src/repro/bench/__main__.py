"""Command-line figure runner: regenerate the paper's evaluation without
pytest.

Usage::

    python -m repro.bench fig6              # one figure
    python -m repro.bench fig9 fig10        # several
    python -m repro.bench all               # everything (minutes)
    python -m repro.bench fig10 --nodes 1 2 4
    python -m repro.bench fig6 -o results/  # also write tables to files

Each figure prints the same table the corresponding benchmark module
produces; the pytest benchmarks remain the canonical shape-asserting
entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .overlap import run_overlap
from .pingpong import pingpong_sweep
from .table import Table
from .weak_scaling import (
    particles_weak_scaling,
    spmv_weak_scaling,
    stencil_weak_scaling,
)

__all__ = ["main"]


def _fig6(args) -> Table:
    sizes = [4 ** k for k in range(0, 12)]
    shared = pingpong_sweep(True, sizes, iterations=args.iterations)
    distributed = pingpong_sweep(False, sizes, iterations=args.iterations)
    table = Table("Fig. 6 - put bandwidth vs packet size",
                  ["packet [B]", "shared [MB/s]", "distributed [MB/s]",
                   "shared lat [us]", "distributed lat [us]"])
    for s, d in zip(shared, distributed):
        table.add_row(s.packet_bytes, s.bandwidth / 1e6, d.bandwidth / 1e6,
                      s.latency * 1e6, d.latency * 1e6)
    return table


def _overlap_table(mode: str, title: str, args) -> Table:
    sweep = [0, 16, 64, 128, 256, 512]
    nodes = args.nodes[0] if args.nodes else 8
    ex = run_overlap(mode, 0, False, True, args.steps, nodes, 52).elapsed
    table = Table(title, ["compute iters", "compute&exchange [ms]",
                          "compute only [ms]", "halo exchange [ms]"])
    for n in sweep:
        both = run_overlap(mode, n, True, True, args.steps, nodes,
                           52).elapsed
        comp = (run_overlap(mode, n, True, False, args.steps, nodes,
                            52).elapsed if n else 0.0)
        table.add_row(n, both * 1e3, comp * 1e3, ex * 1e3)
    return table


def _fig7(args) -> Table:
    return _overlap_table(
        "newton", "Fig. 7 - overlap for square root (Newton-Raphson)",
        args)


def _fig8(args) -> Table:
    return _overlap_table(
        "copy", "Fig. 8 - overlap for memory-to-memory copy", args)


def _fig9(args) -> Table:
    return particles_weak_scaling(node_counts=args.nodes or (1, 2, 4, 8),
                                  verify=not args.no_verify)


def _fig10(args) -> Table:
    return stencil_weak_scaling(node_counts=args.nodes or (1, 2, 4, 8),
                                verify=not args.no_verify)


def _fig11(args) -> Table:
    return spmv_weak_scaling(node_counts=args.nodes or (1, 4, 9),
                             verify=not args.no_verify)


FIGURES: Dict[str, Callable[[argparse.Namespace], Table]] = {
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the dCUDA paper's evaluation figures.")
    parser.add_argument("figures", nargs="+",
                        choices=sorted(FIGURES) + ["all"],
                        help="figures to regenerate")
    parser.add_argument("--nodes", type=int, nargs="+", default=None,
                        help="node counts (weak-scaling figures) or the "
                             "single node count (overlap figures)")
    parser.add_argument("--iterations", type=int, default=30,
                        help="ping-pong iterations (fig6)")
    parser.add_argument("--steps", type=int, default=20,
                        help="iterations per overlap point (fig7/fig8)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip reference-solution verification")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="directory to also write the tables into")
    args = parser.parse_args(argv)

    wanted = sorted(FIGURES) if "all" in args.figures \
        else list(dict.fromkeys(args.figures))
    if args.output:
        args.output.mkdir(parents=True, exist_ok=True)
    for name in wanted:
        table = FIGURES[name](args)
        text = table.render()
        print(text)
        print()
        if args.output:
            (args.output / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
