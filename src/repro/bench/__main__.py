"""Command-line figure runner: regenerate the paper's evaluation without
pytest.

Usage::

    python -m repro.bench fig6              # one figure
    python -m repro.bench fig9 fig10        # several
    python -m repro.bench all               # everything (minutes)
    python -m repro.bench fig10 --nodes 1 2 4
    python -m repro.bench fig6 --workers 4  # sweep on a process pool
    python -m repro.bench fig6 --cache-dir .repro-cache
    python -m repro.bench fig6 -o results/  # also write tables to files

Every figure is a sweep of independent simulation points, so this CLI is
a thin client of the suite registry (:mod:`repro.exec.suites`): it builds
the figure's spec list, hands it to the deterministic sweep engine
(``--workers`` for a process pool, ``--cache-dir`` for content-addressed
result caching — the tables are bit-identical either way), and renders
the assembled table.  ``python -m repro.exec run <figure>`` executes the
*same* specs, so cached results are shared between the two CLIs; the
pytest benchmarks remain the canonical shape-asserting entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..exec import run_specs
from ..exec.suites import SUITE_NAMES, build_suite

__all__ = ["main", "FIGURES"]

#: The figure names this CLI accepts (the suite registry minus the
#: non-figure sweeps).
FIGURES = tuple(n for n in SUITE_NAMES if n.startswith("fig"))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the dCUDA paper's evaluation figures.")
    parser.add_argument("figures", nargs="+",
                        choices=sorted(FIGURES) + ["all"],
                        help="figures to regenerate")
    parser.add_argument("--nodes", type=int, nargs="+", default=None,
                        help="node counts (weak-scaling figures) or the "
                             "single node count (overlap figures)")
    parser.add_argument("--iterations", type=int, default=30,
                        help="ping-pong iterations (fig6)")
    parser.add_argument("--steps", type=int, default=20,
                        help="iterations per overlap point (fig7/fig8)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip reference-solution verification")
    parser.add_argument("--workers", "-j", type=int, default=None,
                        help="sweep engine worker processes (default: "
                             "$REPRO_EXEC_WORKERS or 1 = serial)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        metavar="DIR",
                        help="content-addressed result cache directory "
                             "(default: no caching)")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="directory to also write the tables into")
    args = parser.parse_args(argv)

    wanted = sorted(FIGURES) if "all" in args.figures \
        else list(dict.fromkeys(args.figures))
    if args.output:
        args.output.mkdir(parents=True, exist_ok=True)
    for name in wanted:
        suite = build_suite(
            name, iterations=args.iterations, overlap_steps=args.steps,
            overlap_nodes=args.nodes[0] if args.nodes else 8,
            node_counts=tuple(args.nodes) if args.nodes else None,
            verify=not args.no_verify)
        report = run_specs(suite.specs, workers=args.workers,
                           cache=args.cache_dir, shared=suite.shared)
        text = suite.assemble(report.results)
        print(text)
        print(f"engine: {report.summary()}")
        print()
        if args.output:
            (args.output / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
