"""Benchmark harness: microbenchmarks, weak-scaling drivers, statistics."""

from .profile import LaunchProfile, NodeProfile
from .stats import Measurement, median, median_ci, summarize
from .table import Table, ascii_series, format_value
from .pingpong import (
    DEFAULT_PACKET_SIZES,
    PingPongResult,
    pingpong_sweep,
    run_pingpong,
)
from .overlap import (
    COPY_BYTES_PER_ITER,
    NEWTON_FLOPS_PER_ITER,
    OverlapPoint,
    overlap_sweep,
    run_overlap,
)
from .weak_scaling import (
    ScalingRow,
    particles_weak_scaling,
    spmv_weak_scaling,
    stencil_weak_scaling,
)
# NOTE: repro.bench.simperf is intentionally not imported here — it is a
# ``python -m repro.bench.simperf`` entry point, and importing it from the
# package __init__ would trigger the double-import RuntimeWarning under
# runpy.  Import it as ``from repro.bench.simperf import ...``.

__all__ = [
    "LaunchProfile", "NodeProfile",
    "Measurement", "median", "median_ci", "summarize",
    "Table", "ascii_series", "format_value",
    "DEFAULT_PACKET_SIZES", "PingPongResult", "pingpong_sweep",
    "run_pingpong",
    "COPY_BYTES_PER_ITER", "NEWTON_FLOPS_PER_ITER", "OverlapPoint",
    "overlap_sweep", "run_overlap",
    "ScalingRow", "particles_weak_scaling", "spmv_weak_scaling",
    "stencil_weak_scaling",
]
