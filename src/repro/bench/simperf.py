"""Simulator-throughput benchmark: events/sec and wall-clock time.

The paper's evaluation is expressed in *simulated* time; this module
measures the *simulator* itself — how many scheduler events the DES kernel
retires per second of host wall-clock time — so performance work on the
kernel (virtual-time fair-share links, the bare-delay sleep lane, deferred
calls, store fast paths) can be tracked quantitatively.

Two complementary probes:

* :func:`synthetic_throughput` — a pure kernel microbenchmark: a pool of
  processes that sleep, contend on a semaphore, and exchange tokens
  through a store.  It exercises every scheduling lane (bare-delay sleeps,
  triggered events, deferred calls, FIFO dispatch) with no model code on
  top, so it isolates raw scheduler throughput.
* :func:`diffusion_throughput` — the full stack: one dCUDA
  horizontal-diffusion run (the Fig. 10 workload) on a real cluster
  model, reporting both wall-clock and events/sec end to end.

The *events* count is the number of heap entries ever scheduled
(``Environment._seq``), which is exact and deterministic: two runs of the
same workload schedule the identical entry sequence, so events/sec
differences are purely host-speed effects.

The probes run through the sweep engine (:mod:`repro.exec`) as
**non-cacheable** specs — a wall-clock number served from a disk cache
would measure the disk, not the simulator — and the CLI records the
machine-readable perf trajectory to ``BENCH_simperf.json`` at the repo
root, so the events/sec trend is trackable across PRs.

Run from the command line::

    PYTHONPATH=src python -m repro.bench.simperf            # quick probe
    PYTHONPATH=src python -m repro.bench.simperf --full     # figure scale
    PYTHONPATH=src python -m repro.bench.simperf --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

from ..apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from ..hw import Cluster, greina
from ..sim import Environment, Semaphore, Store
from .table import Table

__all__ = [
    "SimPerfResult",
    "synthetic_throughput",
    "diffusion_throughput",
    "simperf_specs",
    "simperf_table",
    "run_simperf",
    "write_bench_json",
]


@dataclass(frozen=True)
class SimPerfResult:
    """One throughput measurement of the simulator."""

    #: Probe name (``synthetic`` or ``diffusion``).
    label: str
    #: Scheduler events retired (heap entries ever scheduled).
    events: int
    #: Host wall-clock duration of the run [s].
    wall_s: float
    #: Final simulated time reached [s].
    sim_time_s: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _worker(env: Environment, sem: Semaphore, store: Store,
            hops: int, period: float):
    """One synthetic process: sleep, acquire, exchange, release."""
    for i in range(hops):
        yield period
        yield from sem.acquire()
        store.put(i)
        token = yield store.get()
        assert token is not None
        sem.release()


def synthetic_throughput(num_procs: int = 64,
                         hops: int = 500) -> SimPerfResult:
    """Raw scheduler throughput on a synthetic contention workload.

    *num_procs* processes each perform *hops* rounds of sleep → semaphore
    acquire → store put/get → release.  The semaphore has a quarter of the
    process count in capacity, so both the uncontended fast path and the
    FCFS waiter queue are exercised.
    """
    env = Environment()
    sem = Semaphore(env, capacity=max(1, num_procs // 4), name="bench-sem")
    store = Store(env, name="bench-store")
    for p in range(num_procs):
        # Distinct periods keep wakeups interleaved instead of batched.
        env.process(_worker(env, sem, store, hops, 1e-6 * (1 + p % 7)),
                    name=f"bench:{p}")
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return SimPerfResult(label="synthetic", events=env._seq, wall_s=wall,
                         sim_time_s=env.now)


def diffusion_throughput(wl: Optional[DiffusionWorkload] = None,
                         num_nodes: int = 2,
                         ranks_per_device: int = 16) -> SimPerfResult:
    """End-to-end throughput of one dCUDA diffusion run (Fig. 10 stack)."""
    wl = wl or DiffusionWorkload(ni=32, nj_per_device=32, nk=8, steps=4)
    cluster = Cluster(greina(num_nodes))
    t0 = time.perf_counter()
    elapsed, _out, _profile = run_dcuda_diffusion(cluster, wl,
                                                  ranks_per_device)
    wall = time.perf_counter() - t0
    return SimPerfResult(label="diffusion", events=cluster.env._seq,
                         wall_s=wall, sim_time_s=elapsed)


def simperf_specs(quick: bool = True) -> list:
    """The two probes as (non-cacheable) engine specs.

    *quick* keeps the runtime to a couple of seconds (the CI smoke
    setting); the full setting uses the figure-scale diffusion workload.
    """
    from ..exec import RunSpec

    if quick:
        probes = [
            dict(probe="synthetic", num_procs=32, hops=200),
            dict(probe="diffusion"),
        ]
    else:
        probes = [
            dict(probe="synthetic", num_procs=128, hops=2000),
            dict(probe="diffusion",
                 wl=DiffusionWorkload(ni=128, nj_per_device=416, nk=26,
                                      steps=10),
                 num_nodes=2, ranks_per_device=208),
        ]
    return [RunSpec("simperf_probe", p, label=f"simperf:{p['probe']}",
                    cacheable=False) for p in probes]


def simperf_table(results: List[SimPerfResult]) -> Table:
    """Render probe results into the throughput table."""
    table = Table("Simulator throughput",
                  ["probe", "events", "wall [s]", "events/s",
                   "simulated [ms]"])
    for r in results:
        table.add_row(r.label, r.events, r.wall_s, r.events_per_sec,
                      r.sim_time_s * 1e3)
    table.add_note("events = scheduler heap entries; identical across "
                   "runs of the same workload")
    return table


def run_simperf(quick: bool = True,
                workers: Optional[int] = None) -> Table:
    """Run both probes through the engine; returns the results table."""
    from ..exec import run_specs

    report = run_specs(simperf_specs(quick=quick), workers=workers)
    return simperf_table(report.results)


def write_bench_json(results: List[SimPerfResult], workers: int,
                     quick: bool, path=None) -> str:
    """Write the machine-readable perf trajectory (``BENCH_simperf.json``).

    Returns:
        The path written to (repo root by default), as a string.
    """
    from ..exec.fingerprint import repo_root, source_fingerprint

    path = path or (repo_root() / "BENCH_simperf.json")
    payload = {
        "bench": "simperf",
        "mode": "quick" if quick else "full",
        "workers": workers,
        # Probes are never cacheable, so the hit rate is 0 by design.
        "cache_hit_rate": 0.0,
        "source_fingerprint": source_fingerprint()[:16],
        "rows": [
            {"probe": r.label, "events": r.events,
             "wall_s": round(r.wall_s, 6),
             "events_per_sec": round(r.events_per_sec, 1),
             "sim_time_s": r.sim_time_s}
            for r in results
        ],
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return str(path)


def main(argv=None) -> int:  # pragma: no cover - thin CLI
    from ..exec import default_workers, run_specs

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.simperf",
        description="Simulator-throughput probes (events/sec).")
    parser.add_argument("--full", action="store_true",
                        help="figure-scale workload instead of the quick "
                             "probe")
    parser.add_argument("--workers", "-j", type=int, default=None,
                        help="engine worker processes (default: "
                             "$REPRO_EXEC_WORKERS or 1)")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="trajectory file path (default: "
                             "BENCH_simperf.json at the repo root)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the trajectory file")
    args = parser.parse_args(argv)

    quick = not args.full
    workers = args.workers if args.workers is not None else default_workers()
    report = run_specs(simperf_specs(quick=quick), workers=workers)
    print(simperf_table(report.results).render())
    print(f"engine: {report.summary()}")
    if not args.no_json:
        path = write_bench_json(report.results, workers, quick,
                                path=args.json)
        print(f"trajectory: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
