"""Simulator-throughput benchmark: events/sec and wall-clock time.

The paper's evaluation is expressed in *simulated* time; this module
measures the *simulator* itself — how many scheduler events the DES kernel
retires per second of host wall-clock time — so performance work on the
kernel (virtual-time fair-share links, the bare-delay sleep lane, deferred
calls, store fast paths) can be tracked quantitatively.

Two complementary probes:

* :func:`synthetic_throughput` — a pure kernel microbenchmark: a pool of
  processes that sleep, contend on a semaphore, and exchange tokens
  through a store.  It exercises every scheduling lane (bare-delay sleeps,
  triggered events, deferred calls, FIFO dispatch) with no model code on
  top, so it isolates raw scheduler throughput.
* :func:`diffusion_throughput` — the full stack: one dCUDA
  horizontal-diffusion run (the Fig. 10 workload) on a real cluster
  model, reporting both wall-clock and events/sec end to end.

The *events* count is the number of heap entries ever scheduled
(``Environment._seq``), which is exact and deterministic: two runs of the
same workload schedule the identical entry sequence, so events/sec
differences are purely host-speed effects.

The probes run through the sweep engine (:mod:`repro.exec`) as
**non-cacheable** specs — a wall-clock number served from a disk cache
would measure the disk, not the simulator — and the CLI records the
machine-readable perf trajectory to ``BENCH_simperf.json`` at the repo
root, so the events/sec trend is trackable across PRs.

Run from the command line::

    PYTHONPATH=src python -m repro.bench.simperf            # quick probe
    PYTHONPATH=src python -m repro.bench.simperf --full     # figure scale
    PYTHONPATH=src python -m repro.bench.simperf --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

from ..apps.diffusion import DiffusionWorkload, run_dcuda_diffusion
from ..hw import Cluster, greina
from ..sim import Environment, Semaphore, Store
from .table import Table

__all__ = [
    "SimPerfResult",
    "synthetic_throughput",
    "diffusion_throughput",
    "simperf_specs",
    "simperf_table",
    "run_simperf",
    "write_bench_json",
]


@dataclass(frozen=True)
class SimPerfResult:
    """One throughput measurement of the simulator."""

    #: Probe name (``synthetic`` or ``diffusion``).
    label: str
    #: Scheduler events retired (heap entries ever scheduled).
    events: int
    #: Host wall-clock duration of the run [s].
    wall_s: float
    #: Final simulated time reached [s].
    sim_time_s: float
    #: Communication backend under test (diffusion probe), or ``None``
    #: for probes that run below the runtime (synthetic).
    backend: Optional[str] = None

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _worker(env: Environment, sem: Semaphore, store: Store,
            hops: int, period: float):
    """One synthetic process: sleep, acquire, exchange, release."""
    for i in range(hops):
        yield period
        yield from sem.acquire()
        store.put(i)
        token = yield store.get()
        assert token is not None
        sem.release()


def synthetic_throughput(num_procs: int = 64,
                         hops: int = 500) -> SimPerfResult:
    """Raw scheduler throughput on a synthetic contention workload.

    *num_procs* processes each perform *hops* rounds of sleep → semaphore
    acquire → store put/get → release.  The semaphore has a quarter of the
    process count in capacity, so both the uncontended fast path and the
    FCFS waiter queue are exercised.
    """
    env = Environment()
    sem = Semaphore(env, capacity=max(1, num_procs // 4), name="bench-sem")
    store = Store(env, name="bench-store")
    for p in range(num_procs):
        # Distinct periods keep wakeups interleaved instead of batched.
        env.process(_worker(env, sem, store, hops, 1e-6 * (1 + p % 7)),
                    name=f"bench:{p}")
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return SimPerfResult(label="synthetic", events=env._seq, wall_s=wall,
                         sim_time_s=env.now)


def diffusion_throughput(wl: Optional[DiffusionWorkload] = None,
                         num_nodes: int = 2,
                         ranks_per_device: int = 16,
                         comm_backend: str = "proxy") -> SimPerfResult:
    """End-to-end throughput of one dCUDA diffusion run (Fig. 10 stack).

    *comm_backend* selects the communication backend under test; the
    proxy path drives far more host/PCIe machinery per message than the
    device-initiated one, so events/s is a per-backend quantity.
    """
    wl = wl or DiffusionWorkload(ni=32, nj_per_device=32, nk=8, steps=4)
    cluster = Cluster(greina(num_nodes, comm_backend=comm_backend))
    t0 = time.perf_counter()
    elapsed, _out, _profile = run_dcuda_diffusion(cluster, wl,
                                                  ranks_per_device)
    wall = time.perf_counter() - t0
    return SimPerfResult(label="diffusion", events=cluster.env._seq,
                         wall_s=wall, sim_time_s=elapsed,
                         backend=comm_backend)


def best_of(fn, repeats: int) -> SimPerfResult:
    """Steady-state measurement: run *fn* ``repeats`` times, keep the
    fastest run.

    A single-shot probe folds one-time costs — import warm-up, allocator
    arena growth, cold interpreter inline caches, the per-process field
    cache — into its wall time, so its events/s is dominated by process
    start-up, not the scheduler.  The event count is identical across
    repeats (the schedule is deterministic), so taking the minimum wall
    time measures the simulator's sustained rate, which is the quantity
    the throughput trajectory tracks.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results = [fn() for _ in range(repeats)]
    return max(results, key=lambda r: r.events_per_sec)


#: Steady-state repeats recorded for quick-mode rows (best-of-N).
QUICK_REPEATS = 3

#: All communication backends the diffusion probe can drive
#: (``--backend all`` expands to these).
ALL_BACKENDS = ("proxy", "device", "stream")


def _backend_list(comm_backend) -> List[str]:
    """Normalize a backend selector: name, comma list, ``"all"``, or a
    sequence of names."""
    if isinstance(comm_backend, str):
        if comm_backend == "all":
            return list(ALL_BACKENDS)
        return [b.strip() for b in comm_backend.split(",") if b.strip()]
    return list(comm_backend)


def simperf_specs(quick: bool = True, repeats: Optional[int] = None,
                  comm_backend="proxy") -> list:
    """The two probes as (non-cacheable) engine specs.

    *quick* keeps the runtime to a couple of seconds (the CI smoke
    setting); the full setting uses the figure-scale diffusion workload.
    *repeats* overrides the steady-state best-of-N policy (default:
    ``QUICK_REPEATS`` for quick mode, a single run at figure scale).
    *comm_backend* selects the communication backend(s) for the
    diffusion probe — a name, a comma-separated list, ``"all"``, or a
    sequence; one diffusion spec is built per backend (the synthetic
    probe runs below the runtime and has no backend).  Non-default
    backends are reflected in the spec label.
    """
    from ..exec import RunSpec

    if repeats is None:
        repeats = QUICK_REPEATS if quick else 1
    backends = _backend_list(comm_backend)
    if quick:
        probes = [dict(probe="synthetic", num_procs=32, hops=200)]
        probes += [dict(probe="diffusion", comm_backend=b)
                   for b in backends]
    else:
        probes = [dict(probe="synthetic", num_procs=128, hops=2000)]
        probes += [dict(probe="diffusion",
                        wl=DiffusionWorkload(ni=128, nj_per_device=416,
                                             nk=26, steps=10),
                        num_nodes=2, ranks_per_device=208,
                        comm_backend=b)
                   for b in backends]
    specs = []
    for p in probes:
        p["repeats"] = repeats
        label = f"simperf:{p['probe']}"
        if p["probe"] == "diffusion" and p["comm_backend"] != "proxy":
            label += f":{p['comm_backend']}"
        specs.append(RunSpec("simperf_probe", p, label=label,
                             cacheable=False))
    return specs


def simperf_table(results: List[SimPerfResult]) -> Table:
    """Render probe results into the throughput table."""
    table = Table("Simulator throughput",
                  ["probe", "backend", "events", "wall [s]", "events/s",
                   "simulated [ms]"])
    for r in results:
        table.add_row(r.label, r.backend or "-", r.events, r.wall_s,
                      r.events_per_sec, r.sim_time_s * 1e3)
    table.add_note("events = scheduler heap entries; identical across "
                   "runs of the same workload")
    return table


def run_simperf(quick: bool = True,
                workers: Optional[int] = None) -> Table:
    """Run both probes through the engine; returns the results table."""
    from ..exec import run_specs

    report = run_specs(simperf_specs(quick=quick), workers=workers)
    return simperf_table(report.results)


def write_bench_json(results: List[SimPerfResult], workers: int,
                     quick: bool, path=None,
                     repeats: Optional[int] = None) -> str:
    """Write the machine-readable perf trajectory (``BENCH_simperf.json``).

    Returns:
        The path written to (repo root by default), as a string.
    """
    from ..exec.fingerprint import repo_root, source_fingerprint

    if repeats is None:
        repeats = QUICK_REPEATS if quick else 1
    path = path or (repo_root() / "BENCH_simperf.json")
    payload = {
        "bench": "simperf",
        "mode": "quick" if quick else "full",
        "workers": workers,
        # Steady-state policy: each row is the best of `repeats` runs
        # (see best_of) so the trajectory tracks the sustained rate, not
        # process start-up.  Rows recorded before this field existed were
        # single cold-start shots.
        "measurement": {"policy": "best-of", "repeats": repeats},
        # Probes are never cacheable, so the hit rate is 0 by design.
        "cache_hit_rate": 0.0,
        # Diffusion rows carry the comm backend under test and gates
        # compare like-for-like per backend.  Rows written before the
        # field existed are proxy measurements; a measured backend with
        # no matching baseline row falls back to the proxy row for one
        # release (see check_regression) and should be re-baselined.
        "backend_policy": "per-backend rows; missing baseline backend "
                          "falls back to proxy for one release",
        "source_fingerprint": source_fingerprint()[:16],
        "rows": [
            dict({"probe": r.label, "events": r.events,
                  "wall_s": round(r.wall_s, 6),
                  "events_per_sec": round(r.events_per_sec, 1),
                  "sim_time_s": r.sim_time_s},
                 **({"backend": r.backend} if r.backend else {}))
            for r in results
        ],
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return str(path)


def profile_probes(quick: bool = True, top: int = 25,
                   comm_backend="proxy") -> str:
    """Run each probe under cProfile; return the top-*top* cumulative
    tables as text (the ``--profile`` CLI mode).

    *comm_backend* selects the diffusion probe's communication backend
    (same selector forms as :func:`simperf_specs`), so a profile can be
    attributed to the same backend the gate measures.

    Profiling overhead inflates wall times several-fold, so the tables
    are for *attribution* — never record their events/s.
    """
    import cProfile
    import io
    import pstats

    from ..exec.spec import resolve_entrypoint

    sections = []
    for spec in simperf_specs(quick=quick, repeats=1,
                              comm_backend=comm_backend):
        fn = resolve_entrypoint(spec.entrypoint)
        prof = cProfile.Profile()
        result = prof.runcall(fn, spec.params, {})
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(top)
        sections.append(
            f"=== {spec.label}: {result.events} events, "
            f"{result.wall_s:.3f}s under profiler ===\n{buf.getvalue()}")
    return "\n".join(sections)


def check_regression(results: List[SimPerfResult], baseline_path,
                     threshold: float = 0.8,
                     synthetic_threshold: float = 0.7) -> List[str]:
    """Compare measured rows against a committed trajectory file.

    The blocking CI gate.  A failure message is returned when

    * a diffusion row's events/s falls below ``threshold`` (default
      80%) of the committed row **for the same backend** — baselines
      recorded before rows carried a ``backend`` field, and backends
      missing from the baseline, fall back to the committed proxy row
      for one release (the fallback is named in the gate output; fix by
      re-recording the trajectory);
    * the synthetic probe falls below ``synthetic_threshold`` (default
      70%).  The kernel microbenchmark has higher run-to-run variance
      than the full stack, hence the wider band, but a sub-70% reading
      means the scheduler itself regressed and now blocks rather than
      being merely informational.
    """
    with open(baseline_path) as f:
        baseline = json.load(f)
    committed = {(row["probe"], row.get("backend")): row["events_per_sec"]
                 for row in baseline.get("rows", [])}
    failures = []
    for r in results:
        base = committed.get((r.label, r.backend))
        note = ""
        if base is None and r.backend is not None:
            # Like-for-like fallbacks: a proxy measurement matches a
            # pre-backend-field row; other backends borrow the proxy
            # baseline for one release.
            base = committed.get((r.label, None))
            if base is None:
                base = committed.get((r.label, "proxy"))
            if base is not None and r.backend != "proxy":
                note = (" [no committed row for this backend; compared "
                        "against proxy — re-record the trajectory]")
        if base is None or base <= 0:
            continue
        ratio = r.events_per_sec / base
        backend = f"[{r.backend}] " if r.backend else ""
        line = (f"{r.label} {backend}{r.events_per_sec:,.0f} ev/s vs "
                f"committed {base:,.0f} ev/s ({ratio:.2f}x){note}")
        gate = synthetic_threshold if r.label == "synthetic" else threshold
        if ratio < gate:
            failures.append(f"REGRESSION {line} — below the {gate:.0%} gate")
        else:
            print(f"gate: {line}")
    return failures


def main(argv=None) -> int:  # pragma: no cover - thin CLI
    from ..exec import default_workers, run_specs

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.simperf",
        description="Simulator-throughput probes (events/sec).")
    parser.add_argument("--full", action="store_true",
                        help="figure-scale workload instead of the quick "
                             "probe")
    parser.add_argument("--workers", "-j", type=int, default=None,
                        help="engine worker processes (default: "
                             "$REPRO_EXEC_WORKERS or 1)")
    parser.add_argument("--json", type=str, default=None, metavar="PATH",
                        help="trajectory file path (default: "
                             "BENCH_simperf.json at the repo root)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the trajectory file")
    parser.add_argument("--repeats", type=int, default=None, metavar="N",
                        help="best-of-N steady-state measurement "
                             "(default: 3 quick, 1 full)")
    parser.add_argument("--backend", type=str, default="proxy",
                        metavar="NAME",
                        help="communication backend(s) for the diffusion "
                             "probe: proxy, device, stream, a comma "
                             "list, or 'all' — one diffusion row per "
                             "backend (default: proxy)")
    parser.add_argument("--profile", action="store_true",
                        help="run each probe under cProfile and print the "
                             "top-25 cumulative table instead of measuring")
    parser.add_argument("--gate", type=str, nargs="?", metavar="PATH",
                        const="", default=None,
                        help="regression gate: compare against the "
                             "committed trajectory (default "
                             "BENCH_simperf.json) and exit 1 if the "
                             "diffusion probe regressed >20%%; does not "
                             "overwrite the trajectory file")
    parser.add_argument("--gate-threshold", type=float, default=0.8,
                        help="allowed fraction of the committed diffusion "
                             "events/s (default 0.8)")
    parser.add_argument("--synthetic-gate-threshold", type=float,
                        default=0.7,
                        help="allowed fraction of the committed synthetic "
                             "events/s before the gate blocks "
                             "(default 0.7)")
    args = parser.parse_args(argv)

    quick = not args.full
    if args.profile:
        print(profile_probes(quick=quick, comm_backend=args.backend))
        return 0
    workers = args.workers if args.workers is not None else default_workers()
    report = run_specs(simperf_specs(quick=quick, repeats=args.repeats,
                                     comm_backend=args.backend),
                       workers=workers)
    print(simperf_table(report.results).render())
    print(f"engine: {report.summary()}")
    if args.gate is not None:
        from ..exec.fingerprint import repo_root

        baseline = args.gate or str(repo_root() / "BENCH_simperf.json")
        failures = check_regression(
            report.results, baseline, threshold=args.gate_threshold,
            synthetic_threshold=args.synthetic_gate_threshold)
        for msg in failures:
            print(msg, file=sys.stderr)
        return 1 if failures else 0
    if not args.no_json:
        path = write_bench_json(report.results, workers, quick,
                                path=args.json, repeats=args.repeats)
        print(f"trajectory: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
