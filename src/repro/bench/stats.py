"""Measurement statistics: median and nonparametric confidence interval.

The paper reports the median of repeated measurements together with the
nonparametric 95% confidence interval (§IV-A).  The interval is computed
from order statistics of the binomial distribution — no normality
assumption.  (The simulator is deterministic, so repeated identical runs
collapse the interval; the harness varies seeds where the workload allows.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = ["Measurement", "median", "median_ci", "summarize"]


def median(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("median of no samples")
    s = sorted(samples)
    n = len(s)
    mid = n // 2
    if n % 2:
        return s[mid]
    return 0.5 * (s[mid - 1] + s[mid])


def _binom_cdf(k: int, n: int, p: float) -> float:
    total = 0.0
    for i in range(k + 1):
        total += math.comb(n, i) * p ** i * (1 - p) ** (n - i)
    return total


def median_ci(samples: Sequence[float],
              confidence: float = 0.95) -> Tuple[float, float]:
    """Nonparametric CI for the median from order statistics.

    Picks the tightest symmetric pair of order statistics whose binomial
    coverage reaches *confidence*; degenerates to (min, max) for tiny
    sample counts.
    """
    if not samples:
        raise ValueError("confidence interval of no samples")
    s = sorted(samples)
    n = len(s)
    if n == 1:
        return s[0], s[0]
    alpha = 1.0 - confidence
    # Find the largest k such that P(X < k) + P(X > n-k) <= alpha for
    # X ~ Binomial(n, 0.5): the CI is then (s[k-1], s[n-k]) ... walk k up.
    best = (s[0], s[-1])
    k = 1
    while 2 * k <= n:
        tail = _binom_cdf(k - 1, n, 0.5)
        if 2.0 * tail > alpha:
            break
        best = (s[k - 1], s[n - k])
        k += 1
    return best


@dataclass(frozen=True)
class Measurement:
    """A repeated measurement summary."""

    samples: Tuple[float, ...]

    @property
    def median(self) -> float:
        return median(self.samples)

    @property
    def ci95(self) -> Tuple[float, float]:
        return median_ci(self.samples, 0.95)

    @property
    def n(self) -> int:
        return len(self.samples)


def summarize(samples: Sequence[float]) -> Measurement:
    return Measurement(tuple(samples))
