"""Launch profiling: where did the time and the transactions go?

``LaunchProfile.from_result`` digests a :class:`~repro.dcuda.LaunchResult`
into per-node hardware counters (PCIe transactions, DMA traffic, NIC
messages/bytes, device-memory utilization, host-worker busy time, queue
flow-control statistics) and — when tracing was enabled — a per-activity
time breakdown.  This is the observability layer the paper's performance
discussion implies: it makes statements like "the notification matching is
compute heavy" directly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..dcuda.launch import LaunchResult
from .table import Table

__all__ = ["NodeProfile", "LaunchProfile"]


@dataclass(frozen=True)
class NodeProfile:
    """Hardware counters of one node over a launch."""

    node: int
    pcie_mapped_writes: int
    pcie_mapped_reads: int
    dma_copies: int
    dma_bytes: float
    nic_messages: int
    nic_bytes: float
    mem_bytes: float
    mem_utilization: float
    worker_busy: float
    worker_utilization: float
    queue_credit_reloads: int
    queue_full_stalls: int


@dataclass
class LaunchProfile:
    """Aggregated post-mortem of one kernel launch."""

    elapsed: float
    nodes: List[NodeProfile]
    #: Per activity kind (compute/comm/wait/match): total block time [s].
    activity: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: LaunchResult) -> "LaunchProfile":
        runtime = result.runtime
        cluster = runtime.cluster
        elapsed = max(result.elapsed, 1e-30)
        nodes: List[NodeProfile] = []
        for system in runtime.systems:
            node = system.node
            mem = node.device.memory
            reloads = sum(st.cmd_queue.stats.credit_reloads
                          + st.ack_queue.stats.credit_reloads
                          + st.notif_queue.stats.credit_reloads
                          + st.log_queue.stats.credit_reloads
                          for st in system.states)
            stalls = sum(st.cmd_queue.stats.full_stalls
                         + st.ack_queue.stats.full_stalls
                         + st.notif_queue.stats.full_stalls
                         + st.log_queue.stats.full_stalls
                         for st in system.states)
            nic = cluster.fabric.nic_stats(node.index)
            nodes.append(NodeProfile(
                node=node.index,
                pcie_mapped_writes=node.pcie.mapped_writes,
                pcie_mapped_reads=node.pcie.mapped_reads,
                dma_copies=node.pcie.dma_copies,
                dma_bytes=node.pcie.dma_bytes,
                nic_messages=nic["messages"],
                nic_bytes=nic["bytes"],
                mem_bytes=mem.bytes_transferred,
                mem_utilization=(mem.bytes_transferred
                                 / mem.link.bandwidth / elapsed),
                worker_busy=node.worker.busy_time,
                worker_utilization=node.worker.utilization(elapsed),
                queue_credit_reloads=reloads,
                queue_full_stalls=stalls,
            ))
        activity: Dict[str, float] = {}
        for iv in result.tracer.intervals:
            activity[iv.kind] = activity.get(iv.kind, 0.0) + iv.duration
        return cls(elapsed=result.elapsed, nodes=nodes, activity=activity)

    # -- aggregates ------------------------------------------------------
    def total(self, attr: str) -> float:
        return sum(getattr(n, attr) for n in self.nodes)

    def activity_share(self, kind: str) -> float:
        """Fraction of total traced block time spent in *kind*."""
        total = sum(self.activity.values())
        if total <= 0:
            return 0.0
        return self.activity.get(kind, 0.0) / total

    # -- rendering ----------------------------------------------------------
    def render(self) -> str:
        table = Table("launch profile",
                      ["node", "pcie wr", "pcie rd", "dma", "nic msgs",
                       "nic MB", "mem util", "worker util", "reloads",
                       "stalls"])
        for n in self.nodes:
            table.add_row(n.node, n.pcie_mapped_writes, n.pcie_mapped_reads,
                          n.dma_copies, n.nic_messages,
                          n.nic_bytes / 1e6, n.mem_utilization,
                          n.worker_utilization, n.queue_credit_reloads,
                          n.queue_full_stalls)
        table.add_note(f"simulated time: {self.elapsed * 1e3:.3f} ms")
        if self.activity:
            total = sum(self.activity.values())
            parts = ", ".join(f"{k}={v / total:.0%}"
                              for k, v in sorted(self.activity.items()))
            table.add_note(f"block activity: {parts}")
        return table.render()
