"""Weak-scaling drivers for the three mini-applications (Figs. 9-11).

Each driver runs the dCUDA and MPI-CUDA variants over a list of node
counts with a constant per-node workload, verifies both against the serial
reference, and returns a :class:`~repro.bench.table.Table` with one row per
node count: dCUDA time, MPI-CUDA time, and the communication time measured
by the MPI-CUDA variant (the paper's "halo exchange" line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..apps.diffusion import (
    DiffusionWorkload,
    reference as diffusion_reference,
    run_dcuda_diffusion,
    run_mpicuda_diffusion,
)
from ..apps.particles import (
    ParticleWorkload,
    reference as particles_reference,
    run_dcuda_particles,
    run_mpicuda_particles,
)
from ..apps.spmv import (
    SpmvWorkload,
    reference as spmv_reference,
    run_dcuda_spmv,
    run_mpicuda_spmv,
)
from ..hw import Cluster, greina
from .table import Table

__all__ = ["ScalingRow", "particles_weak_scaling", "stencil_weak_scaling",
           "spmv_weak_scaling"]


@dataclass(frozen=True)
class ScalingRow:
    nodes: int
    dcuda_time: float
    mpicuda_time: float
    comm_time: float


def _scaling_table(title: str, comm_label: str,
                   rows: List[ScalingRow]) -> Table:
    table = Table(title,
                  ["nodes", "dcuda [ms]", "mpi-cuda [ms]",
                   f"{comm_label} [ms]"])
    for row in rows:
        table.add_row(row.nodes, row.dcuda_time * 1e3,
                      row.mpicuda_time * 1e3, row.comm_time * 1e3)
    return table


def particles_weak_scaling(node_counts: Sequence[int] = (1, 2, 4, 8),
                           wl: Optional[ParticleWorkload] = None,
                           ranks_per_device: int = 26,
                           nblocks: int = 208,
                           verify: bool = True) -> Table:
    """Fig. 9: particle simulation, constant cells/particles per node."""
    wl = wl or ParticleWorkload(cells_per_node=104,
                                particles_per_node=10400, steps=10)
    rows = []
    for nodes in node_counts:
        t_d, state_d, _ = run_dcuda_particles(Cluster(greina(nodes)), wl,
                                              ranks_per_device)
        t_m, state_m, stats = run_mpicuda_particles(Cluster(greina(nodes)),
                                                    wl, nblocks=nblocks)
        if verify:
            ref = particles_reference(wl, nodes)
            np.testing.assert_allclose(state_d, ref, rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(state_m, ref, rtol=1e-9, atol=1e-9)
        halo = max(s["halo_time"] for s in stats.values())
        rows.append(ScalingRow(nodes, t_d, t_m, halo))
    table = _scaling_table("Fig. 9 - particle simulation weak scaling",
                           "halo exchange", rows)
    table.add_note(f"{wl.cells_per_node} cells and {wl.particles_per_node} "
                   f"particles per node, {wl.steps} iterations")
    return table


def stencil_weak_scaling(node_counts: Sequence[int] = (1, 2, 4, 8),
                         wl: Optional[DiffusionWorkload] = None,
                         ranks_per_device: int = 208,
                         nblocks: int = 208,
                         verify: bool = True) -> Table:
    """Fig. 10: horizontal-diffusion stencil, constant grid per device."""
    wl = wl or DiffusionWorkload(ni=128, nj_per_device=416, nk=26, steps=10)
    rows = []
    for nodes in node_counts:
        t_d, out_d, _ = run_dcuda_diffusion(Cluster(greina(nodes)), wl,
                                            ranks_per_device)
        t_m, out_m, stats = run_mpicuda_diffusion(Cluster(greina(nodes)),
                                                  wl, nblocks=nblocks)
        if verify:
            ref = diffusion_reference(wl, nodes)
            np.testing.assert_allclose(out_d, ref, rtol=1e-9)
            np.testing.assert_allclose(out_m, ref, rtol=1e-9)
        halo = max(s["halo_time"] for s in stats.values())
        rows.append(ScalingRow(nodes, t_d, t_m, halo))
    table = _scaling_table("Fig. 10 - stencil program weak scaling",
                           "halo exchange", rows)
    table.add_note(f"{wl.ni}x{wl.nj_per_device}x{wl.nk} grid points per "
                   f"device, {wl.steps} iterations")
    return table


def spmv_weak_scaling(node_counts: Sequence[int] = (1, 4, 9),
                      wl: Optional[SpmvWorkload] = None,
                      ranks_per_device: int = 208,
                      nblocks: int = 208,
                      verify: bool = True) -> Table:
    """Fig. 11: sparse matrix-vector multiplication, square device grids."""
    wl = wl or SpmvWorkload(n_per_device=10486, density=0.03, iters=10)
    rows = []
    for nodes in node_counts:
        t_d, y_d, _ = run_dcuda_spmv(Cluster(greina(nodes)), wl,
                                     ranks_per_device)
        t_m, y_m, stats = run_mpicuda_spmv(Cluster(greina(nodes)), wl,
                                           nblocks=nblocks)
        if verify:
            ref = spmv_reference(wl, nodes)
            np.testing.assert_allclose(y_d, ref, rtol=1e-9)
            np.testing.assert_allclose(y_m, ref, rtol=1e-9)
        comm = max(s["comm_time"] for s in stats.values())
        rows.append(ScalingRow(nodes, t_d, t_m, comm))
    table = _scaling_table("Fig. 11 - sparse matrix-vector weak scaling",
                           "communication", rows)
    table.add_note(f"{wl.n_per_device}^2 elements per device, "
                   f"{wl.density:.1%} populated, {wl.iters} iterations")
    return table
