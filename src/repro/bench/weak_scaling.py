"""Weak-scaling drivers for the three mini-applications (Figs. 9-11).

Each driver runs the dCUDA and MPI-CUDA variants over a list of node
counts with a constant per-node workload, verifies both against the serial
reference, and returns a :class:`~repro.bench.table.Table` with one row per
node count: dCUDA time, MPI-CUDA time, and the communication time measured
by the MPI-CUDA variant (the paper's "halo exchange" line).

Every node count is an *independent* simulation, so the per-point body
lives in :func:`scaling_point` and the drivers fan the points out through
the sweep engine (:mod:`repro.exec`): ``workers=1`` (the default) runs
them serially in-process with results bit-identical to the historical
loop, ``workers=N`` spreads them over a process pool, and passing a
``cache`` makes re-runs near-instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..apps.diffusion import (
    DiffusionWorkload,
    reference as diffusion_reference,
    run_dcuda_diffusion,
    run_mpicuda_diffusion,
)
from ..apps.particles import (
    ParticleWorkload,
    reference as particles_reference,
    run_dcuda_particles,
    run_mpicuda_particles,
)
from ..apps.spmv import (
    SpmvWorkload,
    reference as spmv_reference,
    run_dcuda_spmv,
    run_mpicuda_spmv,
)
from ..hw import Cluster, greina
from .table import Table

__all__ = ["ScalingRow", "scaling_point", "weak_scaling_specs",
           "weak_scaling_table", "particles_weak_scaling",
           "stencil_weak_scaling", "spmv_weak_scaling"]


@dataclass(frozen=True)
class ScalingRow:
    nodes: int
    dcuda_time: float
    mpicuda_time: float
    comm_time: float


def scaling_point(app: str, nodes: int, wl=None,
                  ranks_per_device: Optional[int] = None,
                  nblocks: Optional[int] = None,
                  verify: bool = True) -> ScalingRow:
    """One weak-scaling measurement: both variants at one node count.

    Args:
        app: ``"particles"`` (Fig. 9), ``"stencil"`` (Fig. 10), or
            ``"spmv"`` (Fig. 11).
        nodes: Cluster size for this point.
        wl: Workload dataclass; the figure's default when ``None``.
        ranks_per_device: dCUDA over-subscription (figure default when
            ``None``).
        nblocks: MPI-CUDA launch width (figure default when ``None``).
        verify: Check both variants against the serial reference.

    Returns:
        A :class:`ScalingRow` for this node count.

    Raises:
        ValueError: Unknown *app*.
    """
    if app == "particles":
        wl = wl or ParticleWorkload(cells_per_node=104,
                                    particles_per_node=10400, steps=10)
        rpd = ranks_per_device if ranks_per_device is not None else 26
        nb = nblocks if nblocks is not None else 208
        run_d, run_m, ref_fn = (run_dcuda_particles, run_mpicuda_particles,
                                particles_reference)
        comm_key, rtol, atol = "halo_time", 1e-9, 1e-9
    elif app == "stencil":
        wl = wl or DiffusionWorkload(ni=128, nj_per_device=416, nk=26,
                                     steps=10)
        rpd = ranks_per_device if ranks_per_device is not None else 208
        nb = nblocks if nblocks is not None else 208
        run_d, run_m, ref_fn = (run_dcuda_diffusion, run_mpicuda_diffusion,
                                diffusion_reference)
        comm_key, rtol, atol = "halo_time", 1e-9, 0.0
    elif app == "spmv":
        wl = wl or SpmvWorkload(n_per_device=10486, density=0.03, iters=10)
        rpd = ranks_per_device if ranks_per_device is not None else 208
        nb = nblocks if nblocks is not None else 208
        run_d, run_m, ref_fn = (run_dcuda_spmv, run_mpicuda_spmv,
                                spmv_reference)
        comm_key, rtol, atol = "comm_time", 1e-9, 0.0
    else:
        raise ValueError(f"unknown weak-scaling app {app!r}")

    t_d, out_d, _ = run_d(Cluster(greina(nodes)), wl, rpd)
    t_m, out_m, stats = run_m(Cluster(greina(nodes)), wl, nblocks=nb)
    if verify:
        ref = ref_fn(wl, nodes)
        np.testing.assert_allclose(out_d, ref, rtol=rtol, atol=atol)
        np.testing.assert_allclose(out_m, ref, rtol=rtol, atol=atol)
    comm = max(s[comm_key] for s in stats.values())
    return ScalingRow(nodes, t_d, t_m, comm)


def _scaling_table(title: str, comm_label: str,
                   rows: List[ScalingRow]) -> Table:
    table = Table(title,
                  ["nodes", "dcuda [ms]", "mpi-cuda [ms]",
                   f"{comm_label} [ms]"])
    for row in rows:
        table.add_row(row.nodes, row.dcuda_time * 1e3,
                      row.mpicuda_time * 1e3, row.comm_time * 1e3)
    return table


#: Per-figure presentation: title, comm-column label, default workload
#: factory, default dCUDA over-subscription, note renderer.
_FIGS = {
    "particles": dict(
        title="Fig. 9 - particle simulation weak scaling",
        comm="halo exchange", rpd=26,
        default_wl=lambda: ParticleWorkload(cells_per_node=104,
                                            particles_per_node=10400,
                                            steps=10),
        note=lambda wl: (f"{wl.cells_per_node} cells and "
                         f"{wl.particles_per_node} particles per node, "
                         f"{wl.steps} iterations")),
    "stencil": dict(
        title="Fig. 10 - stencil program weak scaling",
        comm="halo exchange", rpd=208,
        default_wl=lambda: DiffusionWorkload(ni=128, nj_per_device=416,
                                             nk=26, steps=10),
        note=lambda wl: (f"{wl.ni}x{wl.nj_per_device}x{wl.nk} grid points "
                         f"per device, {wl.steps} iterations")),
    "spmv": dict(
        title="Fig. 11 - sparse matrix-vector weak scaling",
        comm="communication", rpd=208,
        default_wl=lambda: SpmvWorkload(n_per_device=10486, density=0.03,
                                        iters=10),
        note=lambda wl: (f"{wl.n_per_device}^2 elements per device, "
                         f"{wl.density:.1%} populated, {wl.iters} "
                         "iterations")),
}


def weak_scaling_specs(app: str, node_counts: Sequence[int], wl=None,
                       ranks_per_device: Optional[int] = None,
                       nblocks: Optional[int] = None,
                       verify: bool = True):
    """Build the engine specs for one weak-scaling figure.

    Returns:
        ``(specs, wl)`` — one ``weak_scaling_point``
        :class:`~repro.exec.spec.RunSpec` per node count, plus the
        resolved workload (needed for the table note).

    Raises:
        ValueError: Unknown *app*.
    """
    from ..exec import RunSpec

    if app not in _FIGS:
        raise ValueError(f"unknown weak-scaling app {app!r}")
    fig = _FIGS[app]
    wl = wl or fig["default_wl"]()
    rpd = ranks_per_device if ranks_per_device is not None else fig["rpd"]
    nb = nblocks if nblocks is not None else 208
    specs = [RunSpec("weak_scaling_point",
                     dict(app=app, nodes=nodes, wl=wl,
                          ranks_per_device=rpd, nblocks=nb, verify=verify),
                     label=f"{app}:n{nodes}")
             for nodes in node_counts]
    return specs, wl


def weak_scaling_table(app: str, wl, rows: List[ScalingRow]) -> Table:
    """Assemble the figure table from engine results (one per node count).

    Raises:
        ValueError: Unknown *app*.
    """
    if app not in _FIGS:
        raise ValueError(f"unknown weak-scaling app {app!r}")
    fig = _FIGS[app]
    table = _scaling_table(fig["title"], fig["comm"], rows)
    table.add_note(fig["note"](wl))
    return table


def _run_weak_scaling(app: str, node_counts: Sequence[int], wl,
                      ranks_per_device: int, nblocks: int, verify: bool,
                      workers, cache) -> Table:
    from ..exec import run_specs

    specs, wl = weak_scaling_specs(app, node_counts, wl=wl,
                                   ranks_per_device=ranks_per_device,
                                   nblocks=nblocks, verify=verify)
    rows = run_specs(specs, workers=workers, cache=cache).results
    return weak_scaling_table(app, wl, rows)


def particles_weak_scaling(node_counts: Sequence[int] = (1, 2, 4, 8),
                           wl=None,
                           ranks_per_device: int = 26,
                           nblocks: int = 208,
                           verify: bool = True,
                           workers: Optional[int] = None,
                           cache=None) -> Table:
    """Fig. 9: particle simulation, constant cells/particles per node."""
    return _run_weak_scaling("particles", node_counts, wl, ranks_per_device,
                             nblocks, verify, workers, cache)


def stencil_weak_scaling(node_counts: Sequence[int] = (1, 2, 4, 8),
                         wl=None,
                         ranks_per_device: int = 208,
                         nblocks: int = 208,
                         verify: bool = True,
                         workers: Optional[int] = None,
                         cache=None) -> Table:
    """Fig. 10: horizontal-diffusion stencil, constant grid per device."""
    return _run_weak_scaling("stencil", node_counts, wl, ranks_per_device,
                             nblocks, verify, workers, cache)


def spmv_weak_scaling(node_counts: Sequence[int] = (1, 4, 9),
                      wl=None,
                      ranks_per_device: int = 208,
                      nblocks: int = 208,
                      verify: bool = True,
                      workers: Optional[int] = None,
                      cache=None) -> Table:
    """Fig. 11: sparse matrix-vector multiplication, square device grids."""
    return _run_weak_scaling("spmv", node_counts, wl, ranks_per_device,
                             nblocks, verify, workers, cache)
