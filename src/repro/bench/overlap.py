"""Overlap microbenchmark (Figs. 7 and 8, §IV-B).

Iteratively runs a compute phase followed by a halo-exchange phase on eight
nodes; runtime switches disable either phase independently (avoiding code
generation effects, as in the paper).  Two workloads probe the two regimes:

* ``newton`` — square-root iterations (Newton-Raphson), compute bound,
* ``copy``   — memory-to-memory copies, device-bandwidth bound.

Expected shape: full execution time between ``max(compute, exchange)``
(perfect overlap) and ``compute + exchange`` (no overlap); the paper
measures perfect overlap for copy and good-but-imperfect overlap for
Newton (notification matching is itself compute heavy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..dcuda import launch
from ..hw import Cluster, greina
from ..hw.config import MachineConfig
from .stats import median

__all__ = ["OverlapPoint", "run_overlap", "overlap_sweep",
           "NEWTON_FLOPS_PER_ITER", "COPY_BYTES_PER_ITER"]

#: One Newton-Raphson square-root iteration: 128 divisions per rank
#: (a division is ~20 FLOP-equivalents on Kepler).
NEWTON_FLOPS_PER_ITER = 128 * 20.0
#: One copy iteration moves 1 kB per rank (read + write = 2 kB traffic).
COPY_BYTES_PER_ITER = 1024.0

HALO_TAG = 61


@dataclass(frozen=True)
class OverlapPoint:
    """One measured configuration of the overlap benchmark."""

    mode: str                 # "newton" | "copy"
    compute_iters: int
    do_compute: bool
    do_exchange: bool
    steps: int
    elapsed: float            # seconds, setup excluded


def _overlap_kernel(rank, mode: str, compute_iters: int, steps: int,
                    do_compute: bool, do_exchange: bool,
                    halo_bytes: int, loop_time: Dict[int, float]):
    size = rank.comm_size()
    r = rank.world_rank
    buf = np.zeros(2 * halo_bytes, dtype=np.uint8)
    win = yield from rank.win_create(buf)
    yield from rank.barrier()
    lsend = r - 1 >= 0
    rsend = r + 1 < size
    data = buf[:halo_bytes]
    t0 = rank.now
    for _ in range(steps):
        if do_compute:
            if mode == "newton":
                yield from rank.compute(
                    flops=NEWTON_FLOPS_PER_ITER * compute_iters,
                    detail="newton")
            elif mode == "copy":
                yield from rank.compute(
                    mem_bytes=2.0 * COPY_BYTES_PER_ITER * compute_iters,
                    detail="copy")
            else:
                raise ValueError(f"unknown overlap mode {mode!r}")
        if do_exchange:
            if lsend:
                yield from rank.put_notify(win, r - 1, halo_bytes, data,
                                           tag=HALO_TAG)
            if rsend:
                yield from rank.put_notify(win, r + 1, halo_bytes, data,
                                           tag=HALO_TAG)
            yield from rank.wait_notifications(win, tag=HALO_TAG,
                                               count=lsend + rsend)
    loop_time[r] = rank.now - t0
    yield from rank.finish()


def run_overlap(mode: str, compute_iters: int, do_compute: bool = True,
                do_exchange: bool = True, steps: int = 20,
                num_nodes: int = 8, ranks_per_device: int = 52,
                halo_bytes: int = 1024,
                cfg: Optional[MachineConfig] = None,
                cluster: Optional[Cluster] = None) -> OverlapPoint:
    """One configuration; elapsed is the median of the per-rank loop times
    (setup such as window creation is excluded, §IV-A).

    Pass a pre-built *cluster* to keep access to its tracer/metrics after
    the run (the observability CLI does); it overrides cfg/num_nodes.
    """
    if cluster is None:
        cluster = Cluster((cfg or greina()).with_nodes(num_nodes))
    loop_time: Dict[int, float] = {}
    launch(cluster, _overlap_kernel, ranks_per_device,
           kernel_args={"mode": mode, "compute_iters": compute_iters,
                        "steps": steps, "do_compute": do_compute,
                        "do_exchange": do_exchange,
                        "halo_bytes": halo_bytes, "loop_time": loop_time})
    return OverlapPoint(mode=mode, compute_iters=compute_iters,
                        do_compute=do_compute, do_exchange=do_exchange,
                        steps=steps, elapsed=median(list(loop_time.values())))


def overlap_sweep(mode: str, compute_iter_values: Sequence[int],
                  steps: int = 20, num_nodes: int = 8,
                  ranks_per_device: int = 52
                  ) -> Dict[str, List[OverlapPoint]]:
    """The full figure: compute&exchange and compute-only curves plus the
    exchange-only horizontal line."""
    both = [run_overlap(mode, n, True, True, steps, num_nodes,
                        ranks_per_device) for n in compute_iter_values]
    compute_only = [run_overlap(mode, n, True, False, steps, num_nodes,
                                ranks_per_device)
                    for n in compute_iter_values]
    exchange_only = [run_overlap(mode, 0, False, True, steps, num_nodes,
                                 ranks_per_device)]
    return {"both": both, "compute_only": compute_only,
            "exchange_only": exchange_only}
