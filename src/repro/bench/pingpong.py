"""Ping-pong microbenchmark: put latency and bandwidth (Fig. 6, §IV-B).

Two ranks bounce a data packet using notified puts; latency is half of one
iteration, bandwidth is packet size over latency.  Ranks are placed either
on the same device (shared memory) or on two nodes (distributed memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..dcuda import launch
from ..hw import Cluster, greina
from ..hw.config import MachineConfig

__all__ = ["PingPongResult", "run_pingpong", "pingpong_sweep",
           "DEFAULT_PACKET_SIZES"]

DEFAULT_PACKET_SIZES = tuple(4 ** k for k in range(0, 12))  # 1 B .. 4 MB


@dataclass(frozen=True)
class PingPongResult:
    shared: bool
    packet_bytes: int
    iterations: int
    latency: float            # seconds, half round trip

    @property
    def bandwidth(self) -> float:
        """Payload rate [B/s]."""
        return self.packet_bytes / self.latency if self.latency > 0 else 0.0


def run_pingpong(shared: bool, packet_bytes: int = 0, iterations: int = 100,
                 cfg: MachineConfig | None = None) -> PingPongResult:
    """One ping-pong measurement.

    Setup time (window creation, barrier) is excluded by timing only the
    iteration loop — the paper's subtract-zero-iterations methodology.
    """
    if packet_bytes < 0:
        raise ValueError(f"negative packet size {packet_bytes}")
    nodes = 1 if shared else 2
    rpd = 2 if shared else 1
    cluster = Cluster((cfg or greina()).with_nodes(nodes))
    buffers = {r: np.zeros(max(packet_bytes, 1), dtype=np.uint8)
               for r in range(2)}
    loop_time: Dict[int, float] = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        t0 = rank.now
        data = buffers[r][:packet_bytes]
        for _ in range(iterations):
            if r == 0:
                yield from rank.put_notify(win, 1, 0, data, tag=1)
                yield from rank.wait_notifications(win, source=1, tag=1,
                                                   count=1)
            else:
                yield from rank.wait_notifications(win, source=0, tag=1,
                                                   count=1)
                yield from rank.put_notify(win, 0, 0, data, tag=1)
        loop_time[r] = rank.now - t0
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=rpd)
    latency = loop_time[0] / iterations / 2.0
    return PingPongResult(shared=shared, packet_bytes=packet_bytes,
                          iterations=iterations, latency=latency)


def pingpong_sweep(shared: bool,
                   packet_sizes: Sequence[int] = DEFAULT_PACKET_SIZES,
                   iterations: int = 50) -> List[PingPongResult]:
    """The Fig. 6 bandwidth curve for one placement."""
    return [run_pingpong(shared, size, iterations) for size in packet_sizes]
