"""Ping-pong microbenchmark: put latency and bandwidth (Fig. 6, §IV-B).

Two ranks bounce a data packet using notified puts; latency is half of one
iteration, bandwidth is packet size over latency.  Ranks are placed either
on the same device (shared memory) or on two nodes (distributed memory).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..dcuda import launch
from ..hw import Cluster, greina
from ..hw.config import MachineConfig
from ..platform import PlacementSpec

__all__ = ["PingPongResult", "run_pingpong", "run_pingpong_pair",
           "pingpong_sweep", "DEFAULT_PACKET_SIZES"]

DEFAULT_PACKET_SIZES = tuple(4 ** k for k in range(0, 12))  # 1 B .. 4 MB


@dataclass(frozen=True)
class PingPongResult:
    shared: bool
    packet_bytes: int
    iterations: int
    latency: float            # seconds, half round trip

    @property
    def bandwidth(self) -> float:
        """Payload rate [B/s]."""
        return self.packet_bytes / self.latency if self.latency > 0 else 0.0


def run_pingpong(shared: bool, packet_bytes: int = 0, iterations: int = 100,
                 cfg: MachineConfig | None = None) -> PingPongResult:
    """One ping-pong measurement.

    Setup time (window creation, barrier) is excluded by timing only the
    iteration loop — the paper's subtract-zero-iterations methodology.
    """
    if packet_bytes < 0:
        raise ValueError(f"negative packet size {packet_bytes}")
    nodes = 1 if shared else 2
    rpd = 2 if shared else 1
    base = cfg if cfg is not None else greina()
    cluster = Cluster(base.with_nodes(nodes))
    latency = _timed_pingpong(cluster, rpd, packet_bytes, iterations)
    return PingPongResult(shared=shared, packet_bytes=packet_bytes,
                          iterations=iterations, latency=latency)


def run_pingpong_pair(cfg: MachineConfig, a: Tuple[int, int] = (0, 0),
                      b: Tuple[int, int] = (1, 0), packet_bytes: int = 0,
                      iterations: int = 100) -> PingPongResult:
    """Ping-pong between two explicitly placed ranks on any platform.

    Pins rank 0 to device *a* and rank 1 to device *b* — ``(node, gpu)``
    pairs of *cfg*'s topology — so the measured latency reflects exactly
    the path between them: the shared-memory fast path when ``a == b``,
    the node's intra-node link when the devices share a node, and the
    (possibly multi-hop routed) interconnect otherwise.
    """
    if packet_bytes < 0:
        raise ValueError(f"negative packet size {packet_bytes}")
    a, b = tuple(a), tuple(b)
    spec = PlacementSpec("explicit", explicit=(a, b))
    cluster = Cluster(replace(cfg, placement=spec))
    latency = _timed_pingpong(cluster, 1, packet_bytes, iterations)
    return PingPongResult(shared=a == b, packet_bytes=packet_bytes,
                          iterations=iterations, latency=latency)


def _timed_pingpong(cluster: Cluster, ranks_per_device: int,
                    packet_bytes: int, iterations: int) -> float:
    """Launch the two-rank bounce kernel; returns the half-round-trip."""
    buffers = {r: np.zeros(max(packet_bytes, 1), dtype=np.uint8)
               for r in range(2)}
    loop_time: Dict[int, float] = {}

    def kernel(rank):
        r = rank.world_rank
        win = yield from rank.win_create(buffers[r])
        yield from rank.barrier()
        t0 = rank.now
        data = buffers[r][:packet_bytes]
        for _ in range(iterations):
            if r == 0:
                yield from rank.put_notify(win, 1, 0, data, tag=1)
                yield from rank.wait_notifications(win, source=1, tag=1,
                                                   count=1)
            else:
                yield from rank.wait_notifications(win, source=0, tag=1,
                                                   count=1)
                yield from rank.put_notify(win, 0, 0, data, tag=1)
        loop_time[r] = rank.now - t0
        yield from rank.finish()

    launch(cluster, kernel, ranks_per_device=ranks_per_device)
    return loop_time[0] / iterations / 2.0


def pingpong_sweep(shared: bool,
                   packet_sizes: Sequence[int] = DEFAULT_PACKET_SIZES,
                   iterations: int = 50) -> List[PingPongResult]:
    """The Fig. 6 bandwidth curve for one placement."""
    return [run_pingpong(shared, size, iterations) for size in packet_sizes]
