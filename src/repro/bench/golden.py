"""Golden simulated-timestamp capture (determinism guard rail).

The simulator's contract is that performance work on the DES kernel (the
virtual-time fair-share links, the pooled timeout path, the notification
matching index) must never move a single *simulated* timestamp.  This
module defines one miniature instance of every figure workload and digests
each into a flat ``{label: simulated time}`` mapping.  The captured values
are stored in ``tests/fixtures/golden_timestamps.json`` and the regression
test ``tests/integration/test_golden_timestamps.py`` asserts that the
current kernel reproduces them **exactly** — ``==`` on floats, not
``pytest.approx``.

Regenerate the fixture (only after an *intentional* model change) with::

    PYTHONPATH=src python -m repro.bench.golden tests/fixtures/golden_timestamps.json

A second fixture freezes the *per-communication-backend* schedules
(``tests/fixtures/comm_backend_timestamps.json``): the same ping-pong and
overlap miniatures, run once per backend in
:data:`~repro.hw.config.COMM_BACKENDS`.  Its proxy entries must stay
bit-identical to the corresponding ``fig6``/``fig7``/``fig8`` entries of
the main fixture (the proxy backend *is* the historical code path), and
its device/stream entries pin those backends' cost models.  Regenerate
with::

    PYTHONPATH=src python -m repro.bench.golden --backends tests/fixtures/comm_backend_timestamps.json
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict

from ..apps.diffusion import DiffusionWorkload
from ..apps.particles import ParticleWorkload
from ..apps.spmv import SpmvWorkload
from ..hw.config import COMM_BACKENDS, greina
from .overlap import run_overlap
from .pingpong import run_pingpong
from .weak_scaling import (
    particles_weak_scaling,
    spmv_weak_scaling,
    stencil_weak_scaling,
)

__all__ = ["GOLDEN_WORKLOADS", "capture", "write_fixture",
           "capture_backends", "write_backend_fixture"]


def _rows(table, label: str) -> Dict[str, float]:
    """Flatten a weak-scaling table into per-node-count timestamp entries."""
    out: Dict[str, float] = {}
    cols = list(table.columns)
    nodes = table.column("nodes")
    dcuda = table.column(cols[1])
    mpicuda = table.column(cols[2])
    comm = table.column(cols[3])
    for n, d, m, c in zip(nodes, dcuda, mpicuda, comm):
        out[f"{label}.n{n}.dcuda_ms"] = d
        out[f"{label}.n{n}.mpicuda_ms"] = m
        out[f"{label}.n{n}.comm_ms"] = c
    return out


def _fig6() -> Dict[str, float]:
    shared = run_pingpong(shared=True, packet_bytes=256, iterations=4)
    dist = run_pingpong(shared=False, packet_bytes=256, iterations=4)
    return {"fig6.shared.latency": shared.latency,
            "fig6.distributed.latency": dist.latency}


def _fig7() -> Dict[str, float]:
    pt = run_overlap("newton", compute_iters=4, steps=2, num_nodes=2,
                     ranks_per_device=4)
    return {"fig7.newton.elapsed": pt.elapsed}


def _fig8() -> Dict[str, float]:
    pt = run_overlap("copy", compute_iters=4, steps=2, num_nodes=2,
                     ranks_per_device=4)
    return {"fig8.copy.elapsed": pt.elapsed}


def _fig9() -> Dict[str, float]:
    wl = ParticleWorkload(cells_per_node=8, particles_per_node=48, steps=2)
    table = particles_weak_scaling(node_counts=(1, 2), wl=wl,
                                   ranks_per_device=2, nblocks=4)
    return _rows(table, "fig9")


def _fig10() -> Dict[str, float]:
    wl = DiffusionWorkload(ni=8, nj_per_device=6, nk=2, steps=2)
    table = stencil_weak_scaling(node_counts=(1, 2), wl=wl,
                                 ranks_per_device=3, nblocks=4)
    return _rows(table, "fig10")


def _fig11() -> Dict[str, float]:
    wl = SpmvWorkload(n_per_device=16, density=0.2, iters=1)
    table = spmv_weak_scaling(node_counts=(1, 4), wl=wl,
                              ranks_per_device=2, nblocks=4)
    return _rows(table, "fig11")


#: Label -> callable producing ``{timestamp label: simulated time}``.
GOLDEN_WORKLOADS: Dict[str, Callable[[], Dict[str, float]]] = {
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
}


def capture() -> Dict[str, float]:
    """Run every miniature figure workload; returns all timestamps."""
    out: Dict[str, float] = {}
    for fn in GOLDEN_WORKLOADS.values():
        out.update(fn())
    return out


def _backend_probe(backend: str) -> Dict[str, float]:
    """The fig6/fig7/fig8 miniatures on one communication backend.

    The workload shapes are *identical* to :func:`_fig6`/:func:`_fig7`/
    :func:`_fig8` so the ``proxy.*`` entries can be cross-checked for
    bit-equality against the main fixture.
    """
    cfg = greina(comm_backend=backend)
    shared = run_pingpong(shared=True, packet_bytes=256, iterations=4,
                          cfg=cfg)
    dist = run_pingpong(shared=False, packet_bytes=256, iterations=4,
                        cfg=cfg)
    newton = run_overlap("newton", compute_iters=4, steps=2, num_nodes=2,
                         ranks_per_device=4, cfg=cfg)
    copy = run_overlap("copy", compute_iters=4, steps=2, num_nodes=2,
                       ranks_per_device=4, cfg=cfg)
    return {f"{backend}.pingpong.shared.latency": shared.latency,
            f"{backend}.pingpong.distributed.latency": dist.latency,
            f"{backend}.overlap.newton.elapsed": newton.elapsed,
            f"{backend}.overlap.copy.elapsed": copy.elapsed}


def capture_backends() -> Dict[str, float]:
    """Run the backend miniatures on every registered backend."""
    out: Dict[str, float] = {}
    for backend in COMM_BACKENDS:
        out.update(_backend_probe(backend))
    return out


def write_backend_fixture(path: str) -> Dict[str, float]:
    """Capture and persist the per-backend golden timestamps as JSON."""
    values = capture_backends()
    with open(path, "w") as fh:
        json.dump(values, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return values


def write_fixture(path: str) -> Dict[str, float]:
    """Capture and persist the golden timestamps as JSON.

    ``json`` serializes floats with ``repr``, which round-trips IEEE-754
    doubles exactly — the fixture preserves every bit of each timestamp.
    """
    values = capture()
    with open(path, "w") as fh:
        json.dump(values, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return values


if __name__ == "__main__":  # pragma: no cover - capture utility
    argv = sys.argv[1:]
    backends = "--backends" in argv
    argv = [a for a in argv if a != "--backends"]
    default = ("comm_backend_timestamps.json" if backends
               else "golden_timestamps.json")
    target = argv[0] if argv else default
    if target.startswith("-"):
        print("usage: python -m repro.bench.golden [--backends] "
              "[output.json]\n"
              "(captures a fixture; the exactness *checks* are "
              "tests/integration/test_golden_timestamps.py and "
              "tests/comm/test_golden_backends.py)",
              file=sys.stderr)
        sys.exit(2)
    if backends:
        vals = write_backend_fixture(target)
    else:
        vals = write_fixture(target)
    print(f"captured {len(vals)} golden timestamps -> {target}")
