"""Golden simulated-timestamp capture (determinism guard rail).

The simulator's contract is that performance work on the DES kernel (the
virtual-time fair-share links, the pooled timeout path, the notification
matching index) must never move a single *simulated* timestamp.  This
module defines one miniature instance of every figure workload and digests
each into a flat ``{label: simulated time}`` mapping.  The captured values
are stored in ``tests/fixtures/golden_timestamps.json`` and the regression
test ``tests/integration/test_golden_timestamps.py`` asserts that the
current kernel reproduces them **exactly** — ``==`` on floats, not
``pytest.approx``.

Regenerate the fixture (only after an *intentional* model change) with::

    PYTHONPATH=src python -m repro.bench.golden tests/fixtures/golden_timestamps.json
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict

from ..apps.diffusion import DiffusionWorkload
from ..apps.particles import ParticleWorkload
from ..apps.spmv import SpmvWorkload
from .overlap import run_overlap
from .pingpong import run_pingpong
from .weak_scaling import (
    particles_weak_scaling,
    spmv_weak_scaling,
    stencil_weak_scaling,
)

__all__ = ["GOLDEN_WORKLOADS", "capture", "write_fixture"]


def _rows(table, label: str) -> Dict[str, float]:
    """Flatten a weak-scaling table into per-node-count timestamp entries."""
    out: Dict[str, float] = {}
    cols = list(table.columns)
    nodes = table.column("nodes")
    dcuda = table.column(cols[1])
    mpicuda = table.column(cols[2])
    comm = table.column(cols[3])
    for n, d, m, c in zip(nodes, dcuda, mpicuda, comm):
        out[f"{label}.n{n}.dcuda_ms"] = d
        out[f"{label}.n{n}.mpicuda_ms"] = m
        out[f"{label}.n{n}.comm_ms"] = c
    return out


def _fig6() -> Dict[str, float]:
    shared = run_pingpong(shared=True, packet_bytes=256, iterations=4)
    dist = run_pingpong(shared=False, packet_bytes=256, iterations=4)
    return {"fig6.shared.latency": shared.latency,
            "fig6.distributed.latency": dist.latency}


def _fig7() -> Dict[str, float]:
    pt = run_overlap("newton", compute_iters=4, steps=2, num_nodes=2,
                     ranks_per_device=4)
    return {"fig7.newton.elapsed": pt.elapsed}


def _fig8() -> Dict[str, float]:
    pt = run_overlap("copy", compute_iters=4, steps=2, num_nodes=2,
                     ranks_per_device=4)
    return {"fig8.copy.elapsed": pt.elapsed}


def _fig9() -> Dict[str, float]:
    wl = ParticleWorkload(cells_per_node=8, particles_per_node=48, steps=2)
    table = particles_weak_scaling(node_counts=(1, 2), wl=wl,
                                   ranks_per_device=2, nblocks=4)
    return _rows(table, "fig9")


def _fig10() -> Dict[str, float]:
    wl = DiffusionWorkload(ni=8, nj_per_device=6, nk=2, steps=2)
    table = stencil_weak_scaling(node_counts=(1, 2), wl=wl,
                                 ranks_per_device=3, nblocks=4)
    return _rows(table, "fig10")


def _fig11() -> Dict[str, float]:
    wl = SpmvWorkload(n_per_device=16, density=0.2, iters=1)
    table = spmv_weak_scaling(node_counts=(1, 4), wl=wl,
                              ranks_per_device=2, nblocks=4)
    return _rows(table, "fig11")


#: Label -> callable producing ``{timestamp label: simulated time}``.
GOLDEN_WORKLOADS: Dict[str, Callable[[], Dict[str, float]]] = {
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
}


def capture() -> Dict[str, float]:
    """Run every miniature figure workload; returns all timestamps."""
    out: Dict[str, float] = {}
    for fn in GOLDEN_WORKLOADS.values():
        out.update(fn())
    return out


def write_fixture(path: str) -> Dict[str, float]:
    """Capture and persist the golden timestamps as JSON.

    ``json`` serializes floats with ``repr``, which round-trips IEEE-754
    doubles exactly — the fixture preserves every bit of each timestamp.
    """
    values = capture()
    with open(path, "w") as fh:
        json.dump(values, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return values


if __name__ == "__main__":  # pragma: no cover - capture utility
    target = sys.argv[1] if len(sys.argv) > 1 else "golden_timestamps.json"
    if target.startswith("-"):
        print("usage: python -m repro.bench.golden [output.json]\n"
              "(captures the fixture; the exactness *check* is "
              "tests/integration/test_golden_timestamps.py)",
              file=sys.stderr)
        sys.exit(2)
    vals = write_fixture(target)
    print(f"captured {len(vals)} golden timestamps -> {target}")
