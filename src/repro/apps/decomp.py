"""Domain-decomposition helpers shared by the mini-applications."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["partition_1d", "block_range", "square_grid", "Neighbors1D"]


def partition_1d(total: int, parts: int) -> List[int]:
    """Split *total* items into *parts* contiguous chunks, sizes balanced
    to within one."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total < parts:
        raise ValueError(f"cannot give {parts} parts of {total} items at "
                         "least one item each")
    base = total // parts
    rem = total % parts
    return [base + (1 if i < rem else 0) for i in range(parts)]


def block_range(total: int, parts: int, index: int) -> Tuple[int, int]:
    """Half-open item range ``[lo, hi)`` of chunk *index*."""
    sizes = partition_1d(total, parts)
    lo = sum(sizes[:index])
    return lo, lo + sizes[index]


def square_grid(num_nodes: int) -> Tuple[int, int]:
    """The paper's SpMV decomposition requires a square grid of devices."""
    side = int(round(math.sqrt(num_nodes)))
    if side * side != num_nodes:
        raise ValueError(
            f"SpMV needs a square node count (1, 4, 9, ...), got {num_nodes}")
    return side, side


@dataclass(frozen=True)
class Neighbors1D:
    """Left/right neighbour ranks of a 1-D decomposition (None at edges)."""

    rank: int
    size: int

    @property
    def left(self):
        return self.rank - 1 if self.rank - 1 >= 0 else None

    @property
    def right(self):
        return self.rank + 1 if self.rank + 1 < self.size else None

    @property
    def count(self) -> int:
        """Number of neighbours (what the stencil waits for)."""
        return (self.left is not None) + (self.right is not None)
