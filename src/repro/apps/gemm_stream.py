"""Pipelined (microbatched) GEMM forward pass in the streaming-GEMV style.

One *producer* rank streams the input activations ``X`` tile by tile
into every worker's double buffer while the workers multiply: worker *w*
owns a row block of the weight matrix ``W`` and computes its block of
``Y = W @ X`` for tile ``t`` while tile ``t+1`` is already in flight —
the Fig.-1 overlap claim applied to an ML forward pass.  Flow control is
credit-based: a worker acknowledges a consumed buffer slot with a
one-element notified put, and the producer reuses a slot only after
every worker's ack for it arrived, so the double buffer is never
overwritten while a multiply reads it.  The pass ends with an
``all_gather`` over the workers (any algorithm family), leaving the full
``Y`` on every worker.

Run modes isolate the two phases for the overlap-efficiency measurement
(the Fig. 7/8 methodology): ``both`` runs the full pipeline,
``compute`` multiplies preloaded tiles without any traffic, ``stream``
moves the traffic without multiplying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..dcuda import DRank, launch
from ..dcuda.collectives import all_gather, chunk_bounds, scratch_elems
from ..hw.cluster import Cluster

__all__ = ["GemmWorkload", "gemm_reference", "run_gemm_pipeline",
           "overlap_efficiency", "MODES"]

TAG_TILE = 31
TAG_ACK = 7001
TAG_GATHER = 9000

#: Run modes: full pipeline, compute phase only, streaming phase only.
MODES = ("both", "compute", "stream")


@dataclass(frozen=True)
class GemmWorkload:
    """Shapes of one pipelined forward pass ``Y = W @ X``.

    ``W`` is ``(m, k)`` split row-wise over the workers; ``X`` is
    ``(k, batch)`` streamed in ``tiles`` column tiles.
    """

    m: int = 24
    k: int = 12
    batch: int = 8
    tiles: int = 4
    #: Stream-buffer depth in tiles (credit window): the producer keeps
    #: up to this many tiles in flight per worker before stalling on
    #: acks, so one slow multiply does not serialize the pipeline.
    slots: int = 2
    seed: int = 13

    def validate(self, workers: int) -> None:
        """Check the shapes divide evenly over *workers*.

        Args:
            workers: Computing ranks (total ranks minus the producer).

        Raises:
            ValueError: fewer than one worker, ``m`` not divisible by the
                worker count, or ``batch`` not divisible by ``tiles``.
        """
        if workers < 1:
            raise ValueError("gemm pipeline needs a producer plus at "
                             "least one worker rank")
        if self.m % workers:
            raise ValueError(f"m={self.m} rows do not split over "
                             f"{workers} workers")
        if self.batch % self.tiles:
            raise ValueError(f"batch={self.batch} does not split into "
                             f"{self.tiles} tiles")
        if self.slots < 2:
            raise ValueError("the stream buffer needs at least two "
                             "slots to double-buffer")


def _weights(wl: GemmWorkload) -> np.ndarray:
    return np.random.default_rng(wl.seed).standard_normal((wl.m, wl.k))


def _inputs(wl: GemmWorkload) -> np.ndarray:
    return np.random.default_rng(wl.seed + 1).standard_normal(
        (wl.k, wl.batch))


def gemm_reference(wl: GemmWorkload, workers: int) -> np.ndarray:
    """The serial answer ``W @ X``, computed per (row block, tile) in
    stream order — the exact operation sequence the workers run, so the
    distributed result matches bit-for-bit (BLAS picks different
    blocking for different operand shapes, so a single full-matrix
    multiply would differ in the last bits)."""
    w, x = _weights(wl), _inputs(wl)
    bt = wl.batch // wl.tiles
    rows = wl.m // workers
    y = np.zeros((wl.m, wl.batch))
    for i in range(workers):
        blk = w[i * rows:(i + 1) * rows, :]
        for t in range(wl.tiles):
            y[i * rows:(i + 1) * rows, t * bt:(t + 1) * bt] = \
                blk @ x[:, t * bt:(t + 1) * bt]
    return y


def overlap_efficiency(both: float, compute: float, stream: float) -> float:
    """Fraction of the streaming time hidden behind compute:
    ``(compute + stream - both) / stream`` (1.0 = perfect overlap,
    0.0 = fully serialized)."""
    return (compute + stream - both) / stream if stream > 0 else 0.0


def _gemm_kernel(rank: DRank, wl: GemmWorkload, mode: str, algorithm: str,
                 ybufs: Dict[int, np.ndarray], stats: Dict[int, dict]):
    p = rank.comm_size()
    r = rank.world_rank
    workers = list(range(1, p))
    nw = len(workers)
    bt = wl.batch // wl.tiles
    tile_elems = wl.k * bt
    x = _inputs(wl)
    stream = mode in ("both", "stream")
    compute = mode in ("both", "compute")

    slots = wl.slots
    xbuf = np.zeros(slots * tile_elems)
    ack = np.zeros(max(nw, 1))
    ybuf = ybufs[r]
    n = ybuf.size
    xwin = yield from rank.win_create(xbuf)
    ackwin = yield from rank.win_create(ack)
    ywin = yield from rank.win_create(ybuf)
    swin = yield from rank.win_create(np.zeros(scratch_elems(max(nw, 1), n)))
    yield from rank.barrier()
    t0 = rank.now

    if r == 0:
        # Producer: stream tile t into slot t % slots of every worker; a
        # slot is reused only once every worker acked consuming it, so
        # up to `slots` tiles are in flight per worker.
        if stream:
            for t in range(wl.tiles):
                if t >= slots:
                    for w in workers:
                        yield from rank.wait_notifications(
                            ackwin, source=w, tag=TAG_ACK + t - slots,
                            count=1)
                tile = np.ascontiguousarray(
                    x[:, t * bt:(t + 1) * bt]).reshape(-1)
                for w in workers:
                    yield from rank.put_notify(
                        xwin, w, (t % slots) * tile_elems, tile,
                        tag=TAG_TILE + t)
            for t in range(max(wl.tiles - slots, 0), wl.tiles):
                for w in workers:
                    yield from rank.wait_notifications(
                        ackwin, source=w, tag=TAG_ACK + t, count=1)
    else:
        idx = workers.index(r)
        rows = wl.m // nw
        wblock = _weights(wl)[idx * rows:(idx + 1) * rows, :]
        yview = ybuf.reshape(wl.m, wl.batch)
        # The weight block stays device-resident across tiles; each tile
        # streams its operands in and the output block out.
        flops = 2.0 * rows * wl.k * bt
        mem = 8.0 * (tile_elems + rows * bt)
        for t in range(wl.tiles):
            if stream:
                yield from rank.wait_notifications(
                    xwin, source=0, tag=TAG_TILE + t, count=1)
                tile = xbuf[(t % slots) * tile_elems:
                            (t % slots + 1) * tile_elems].reshape(wl.k, bt)
            else:
                tile = x[:, t * bt:(t + 1) * bt]
            if compute:
                # Multiply tile t; with streaming on, later tiles are in
                # flight underneath this phase — the overlap under test.
                yield from rank.compute(
                    flops, mem,
                    fn=lambda t=t, tile=tile: yview.__setitem__(
                        (slice(idx * rows, (idx + 1) * rows),
                         slice(t * bt, (t + 1) * bt)), wblock @ tile),
                    detail="gemm_tile")
            if stream:
                yield from rank.put_notify(ackwin, 0, idx,
                                           np.array([float(t)]),
                                           tag=TAG_ACK + t)
    loop = rank.now - t0
    # The gather is timed apart from the pipeline: it is a bulk
    # collective over the finished Y, not part of the overlap window.
    gather = 0.0
    if mode == "both" and r != 0 and nw > 1:
        t1 = rank.now
        yield from all_gather(rank, ywin, swin, workers, ybuf,
                              algorithm=algorithm, tag_base=TAG_GATHER)
        gather = rank.now - t1
    yield from rank.flush()
    yield from rank.barrier()
    yield from rank.finish()
    stats[r] = {"loop": loop, "gather": gather}


def run_gemm_pipeline(cluster: Cluster, wl: GemmWorkload,
                      ranks_per_device: int = 1, mode: str = "both",
                      algorithm: str = "ring"):
    """Run the pipelined forward pass on *cluster*.

    Args:
        cluster: The machine; rank 0 is the producer, the rest workers.
        wl: Workload shapes.
        ranks_per_device: dCUDA ranks per GPU.
        mode: ``both`` | ``compute`` | ``stream`` (see module docstring).
        algorithm: Collective family for the final worker all-gather.

    Returns:
        ``(elapsed, y, stats)`` — the median worker *pipeline* loop time
        (the final gather is timed separately, in each worker's
        ``stats[r]["gather"]``), the full ``Y`` as assembled on worker
        rank 1 (``None`` unless *mode* is ``both``), and the per-rank
        stats dict.

    Raises:
        ValueError: *mode* is unknown or the workload does not divide
            over the available workers.
    """
    if mode not in MODES:
        raise ValueError(f"unknown gemm pipeline mode {mode!r}; "
                         f"expected one of {MODES}")
    total = cluster.platform.place(ranks_per_device).total_ranks
    wl.validate(total - 1)
    ybufs = {r: np.zeros(wl.m * wl.batch) for r in range(total)}
    stats: Dict[int, dict] = {}
    launch(cluster, _gemm_kernel, ranks_per_device,
           kernel_args={"wl": wl, "mode": mode, "algorithm": algorithm,
                        "ybufs": ybufs, "stats": stats})
    loops = sorted(stats[r]["loop"] for r in range(1, total))
    elapsed = loops[len(loops) // 2]
    y: Optional[np.ndarray] = None
    if mode == "both":
        y = ybufs[1].reshape(wl.m, wl.batch).copy()
    return elapsed, y, stats
