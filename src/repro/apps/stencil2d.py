"""The paper's running example (Fig. 2): a 2-D 5-point stencil with halo
exchange, in dCUDA and MPI-CUDA variants plus a serial reference.

Domain: ``(nj_global + 2) x ni`` points (one fixed zero boundary row on each
j-side), 1-D decomposition along j.  Each device owns ``nj_per_device`` rows
plus one halo row per side; dCUDA ranks split the device rows further and
register *overlapping* windows into the device array (Fig. 3): a halo
exchange between same-device ranks is the zero-copy case, only device
boundaries travel over the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..dcuda import DRank, launch
from ..hw.cluster import Cluster
from ..mpicuda import MPICudaContext, run_mpicuda
from .decomp import Neighbors1D, block_range

__all__ = ["Stencil2DWorkload", "reference", "make_device_arrays",
           "run_dcuda_stencil2d", "run_mpicuda_stencil2d", "apply_stencil"]

HALO_TAG = 11


@dataclass(frozen=True)
class Stencil2DWorkload:
    """Parameters of one stencil run."""

    ni: int = 64              # i extent (contiguous dimension)
    nj_per_device: int = 32   # j rows owned by each device
    steps: int = 4            # stencil iterations

    @property
    def jstride(self) -> int:
        return self.ni

    def nj_global(self, num_nodes: int) -> int:
        return self.nj_per_device * num_nodes

    def validate(self, num_nodes: int, ranks_per_device: int) -> None:
        if self.nj_per_device < ranks_per_device:
            raise ValueError(
                f"{self.nj_per_device} rows per device cannot feed "
                f"{ranks_per_device} ranks")


def apply_stencil(src: np.ndarray, dst: np.ndarray, rows: slice) -> None:
    """Apply the 5-point stencil on *rows* of a (j, i) array.

    ``dst[j,i] = -4 src[j,i] + src[j,i±1] + src[j±1,i]`` on interior i;
    the i-boundary columns are copied through (fixed boundary).
    """
    j0, j1 = rows.start, rows.stop
    dst[j0:j1, 1:-1] = (-4.0 * src[j0:j1, 1:-1]
                        + src[j0:j1, 2:] + src[j0:j1, :-2]
                        + src[j0 + 1:j1 + 1, 1:-1]
                        + src[j0 - 1:j1 - 1, 1:-1])
    dst[j0:j1, 0] = src[j0:j1, 0]
    dst[j0:j1, -1] = src[j0:j1, -1]


def stencil_costs(points: int) -> Tuple[float, float]:
    """(flops, memory bytes) of a stencil phase over *points* grid points."""
    return 6.0 * points, 3.0 * 8.0 * points


def initial_grid(wl: Stencil2DWorkload, num_nodes: int) -> np.ndarray:
    """Deterministic initial condition on the full (nj_global+2, ni) grid
    (halo rows included, zeroed)."""
    nj = wl.nj_global(num_nodes)
    rng = np.random.default_rng(42)
    grid = np.zeros((nj + 2, wl.ni))
    grid[1:-1, :] = rng.standard_normal((nj, wl.ni))
    return grid


def reference(wl: Stencil2DWorkload, num_nodes: int) -> np.ndarray:
    """Serial reference: returns the interior rows after `steps` sweeps."""
    cur = initial_grid(wl, num_nodes)
    nxt = np.zeros_like(cur)
    for _ in range(wl.steps):
        apply_stencil(cur, nxt, slice(1, cur.shape[0] - 1))
        cur, nxt = nxt, cur
    return cur[1:-1, :].copy()


def make_device_arrays(wl: Stencil2DWorkload,
                       num_nodes: int) -> Dict[int, List[np.ndarray]]:
    """Per-device ``[in, out]`` arrays of shape (nj_per_device+2, ni),
    initialized with the node's slice of the global grid."""
    grid = initial_grid(wl, num_nodes)
    arrays: Dict[int, List[np.ndarray]] = {}
    for node in range(num_nodes):
        lo = node * wl.nj_per_device
        dev_in = grid[lo:lo + wl.nj_per_device + 2, :].copy()
        arrays[node] = [dev_in, np.zeros_like(dev_in)]
    return arrays


def gather_result(wl: Stencil2DWorkload,
                  arrays: Dict[int, List[np.ndarray]],
                  which: int) -> np.ndarray:
    """Stack the interior rows of every device's array *which*."""
    return np.concatenate([arrays[node][which][1:-1, :]
                           for node in sorted(arrays)], axis=0)


# --------------------------------------------------------------- dCUDA ------
def dcuda_stencil_kernel(rank: DRank, wl: Stencil2DWorkload,
                         arrays: Dict[int, List[np.ndarray]]):
    """The Fig. 2 program, one instance per rank."""
    size = rank.comm_size()
    r = rank.comm_rank()
    node = rank.node.index
    rpd = rank.runtime.ranks_per_device
    neigh = Neighbors1D(r, size)
    # This rank's rows within the device array (1-based, halo row at 0).
    lo, hi = block_range(wl.nj_per_device, rpd, rank.comm_rank("device"))
    rows = slice(lo + 1, hi + 1)
    dev_in, dev_out = arrays[node]
    flat = [dev_in.reshape(-1), dev_out.reshape(-1)]
    # Overlapping windows: every rank registers the full device array.
    win = yield from rank.win_create(flat[0])
    wout = yield from rank.win_create(flat[1])
    wins = [win, wout]
    cur = 0  # index of the "in" array/window
    yield from rank.barrier()

    points = (hi - lo) * wl.ni
    flops, mem_bytes = stencil_costs(points)
    js = wl.jstride
    for _ in range(wl.steps):
        src, dst = arrays[node][cur], arrays[node][1 - cur]
        yield from rank.compute(
            flops=flops, mem_bytes=mem_bytes,
            fn=lambda s=src, d=dst: apply_stencil(s, d, rows),
            detail="stencil")
        # Move the domain boundaries of `out` to the neighbour windows.
        w = wins[1 - cur]
        dst_flat = flat[1 - cur]
        if neigh.left is not None:
            # My first row -> left neighbour's bottom halo row.  Offsets are
            # in the coordinates of the *target's* window; windows span the
            # whole device array, so same-device targets alias my memory.
            src_row = dst_flat[rows.start * js:(rows.start + 1) * js]
            if rank.comm_rank("device") > 0:
                off = rows.start * js          # same device: same address
            else:
                off = (wl.nj_per_device + 1) * js  # remote: its halo row
            yield from rank.put_notify(w, neigh.left, off, src_row,
                                       tag=HALO_TAG)
        if neigh.right is not None:
            src_row = dst_flat[(rows.stop - 1) * js:rows.stop * js]
            if rank.comm_rank("device") < rpd - 1:
                off = (rows.stop - 1) * js     # same device: same address
            else:
                off = 0                        # remote: its top halo row
            yield from rank.put_notify(w, neigh.right, off, src_row,
                                       tag=HALO_TAG)
        yield from rank.wait_notifications(w, tag=HALO_TAG,
                                           count=neigh.count)
        cur = 1 - cur

    yield from rank.win_free(win)
    yield from rank.win_free(wout)
    yield from rank.finish()
    return cur


def run_dcuda_stencil2d(cluster: Cluster, wl: Stencil2DWorkload,
                        ranks_per_device: int):
    """Run the dCUDA variant; returns (elapsed, result grid, LaunchResult)."""
    wl.validate(cluster.num_nodes, ranks_per_device)
    arrays = make_device_arrays(wl, cluster.num_nodes)
    res = launch(cluster, dcuda_stencil_kernel, ranks_per_device,
                 kernel_args={"wl": wl, "arrays": arrays})
    final = res.results[0]
    return res.elapsed, gather_result(wl, arrays, final), res


# ------------------------------------------------------------- MPI-CUDA ------
def mpicuda_stencil_program(ctx: MPICudaContext, wl: Stencil2DWorkload,
                            arrays: Dict[int, List[np.ndarray]],
                            nblocks: int, stats: Dict[int, dict]):
    """Host main loop: kernel, then two-sided halo exchange, repeat."""
    node = ctx.rank
    neigh = Neighbors1D(node, ctx.size)
    dev = arrays[node]
    cur = 0
    rows = slice(1, wl.nj_per_device + 1)
    points = wl.nj_per_device * wl.ni
    flops, mem_bytes = stencil_costs(points)
    halo_time = 0.0
    row_bytes = wl.ni * 8.0

    for _ in range(wl.steps):
        src, dst = dev[cur], dev[1 - cur]
        yield from ctx.launch(
            nblocks, flops_per_block=flops / nblocks,
            mem_bytes_per_block=mem_bytes / nblocks,
            fn=lambda s=src, d=dst: apply_stencil(s, d, rows),
            detail="stencil")
        t0 = ctx.now
        reqs = []
        if neigh.left is not None:
            ctx.isend(neigh.left, dst[1, :].copy(), tag=HALO_TAG)
            reqs.append(ctx.irecv(source=neigh.left, tag=HALO_TAG))
        if neigh.right is not None:
            ctx.isend(neigh.right, dst[wl.nj_per_device, :].copy(),
                      tag=HALO_TAG)
            reqs.append(ctx.irecv(source=neigh.right, tag=HALO_TAG))
        for req in reqs:
            msg = yield from req.wait()
            if msg.src == neigh.left:
                dst[0, :] = msg.payload
            else:
                dst[wl.nj_per_device + 1, :] = msg.payload
        halo_time += ctx.now - t0
        yield from ctx.loop_overhead()
        cur = 1 - cur
    stats[node] = {"halo_time": halo_time}
    return cur


def run_mpicuda_stencil2d(cluster: Cluster, wl: Stencil2DWorkload,
                          nblocks: int = 26):
    """Run the baseline; returns (elapsed, result grid, stats per node)."""
    arrays = make_device_arrays(wl, cluster.num_nodes)
    stats: Dict[int, dict] = {}
    res = run_mpicuda(cluster, mpicuda_stencil_program,
                      program_args={"wl": wl, "arrays": arrays,
                                    "nblocks": nblocks, "stats": stats})
    final = res.results[0]
    return res.elapsed, gather_result(wl, arrays, final), stats
