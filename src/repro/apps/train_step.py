"""Data-parallel SGD training step: grads → autotuned allreduce → update.

Every rank holds a full replica of a linear model's weights and a
disjoint shard of the training batch.  One step computes the local
least-squares gradient, allreduces it across the replicas — with the
algorithm family chosen by the
:class:`~repro.dcuda.collectives.CollectiveAutotuner` unless pinned —
and applies the averaged gradient, exactly the loop a data-parallel
training framework runs per batch.

The collective algorithm must be *one* choice on every rank (a mixed
group deadlocks), so the decision is made host-side before launch:
:func:`autotune_step` calibrates from the machine config plus whatever
``Fabric.link_stats()`` the cluster has measured so far (run a probe
step first to feed it real traffic; an idle fabric falls back to the
declared topology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..dcuda import DRank, launch
from ..dcuda.collectives import (CollectiveAutotuner, CollectiveChoice,
                                 allreduce, scratch_elems)
from ..hw.cluster import Cluster

__all__ = ["TrainWorkload", "train_reference", "autotune_step",
           "run_train_step"]

TAG_STEP_STRIDE = 1000


@dataclass(frozen=True)
class TrainWorkload:
    """One data-parallel linear-regression training configuration."""

    features: int = 12
    samples_per_rank: int = 6
    steps: int = 3
    lr: float = 0.05
    seed: int = 11


def _shard(wl: TrainWorkload, r: int):
    rng = np.random.default_rng(wl.seed + 100 + r)
    x = rng.standard_normal((wl.samples_per_rank, wl.features))
    y = rng.standard_normal(wl.samples_per_rank)
    return x, y


def _init_weights(wl: TrainWorkload) -> np.ndarray:
    return np.random.default_rng(wl.seed).standard_normal(wl.features)


def _grad(wl: TrainWorkload, x: np.ndarray, y: np.ndarray,
          w: np.ndarray) -> np.ndarray:
    return x.T @ (x @ w - y) / wl.samples_per_rank


def train_reference(wl: TrainWorkload, ranks: int) -> np.ndarray:
    """Serial reference: the same steps with the gradients averaged in
    ascending rank order (collective schedules may reassociate the sum,
    so distributed weights match to ``allclose``, not bit-for-bit)."""
    w = _init_weights(wl)
    shards = [_shard(wl, r) for r in range(ranks)]
    for _ in range(wl.steps):
        g = np.zeros(wl.features)
        for x, y in shards:
            g += _grad(wl, x, y, w)
        w = w - wl.lr * g / ranks
    return w


def autotune_step(cluster: Cluster, wl: TrainWorkload,
                  ranks_per_device: int = 1,
                  override: Optional[str] = None) -> CollectiveChoice:
    """The autotuner's decision for this workload's gradient allreduce.

    Args:
        cluster: The machine; its fabric's measured ``link_stats()``
            feed the congestion factor (empty stats fall back to the
            declared topology).
        wl: The training workload (fixes the message size).
        ranks_per_device: dCUDA ranks per GPU.
        override: Pin the family instead of consulting the cost model.

    Returns:
        The :class:`~repro.dcuda.collectives.CollectiveChoice`, costs
        included.
    """
    tuner = CollectiveAutotuner.from_config(
        cluster.cfg, cluster.fabric.link_stats(), override=override)
    placement = cluster.platform.place(ranks_per_device)
    group = list(range(placement.total_ranks))
    return tuner.choose("allreduce", placement, group, wl.features * 8)


def _train_kernel(rank: DRank, wl: TrainWorkload, algorithm: str,
                  weights: Dict[int, np.ndarray], stats: Dict[int, dict]):
    p = rank.comm_size()
    r = rank.world_rank
    group = list(range(p))
    x, y = _shard(wl, r)
    w = weights[r]
    grad = np.zeros(wl.features)
    gwin = yield from rank.win_create(grad)
    swin = yield from rank.win_create(
        np.zeros(scratch_elems(p, wl.features)))
    yield from rank.barrier()
    t0 = rank.now
    comm_time = 0.0
    for step in range(wl.steps):
        # Local gradient: two GEMV passes over the shard.
        yield from rank.compute(
            flops=4.0 * wl.samples_per_rank * wl.features,
            mem_bytes=8.0 * (2 * wl.samples_per_rank * wl.features
                             + 2 * wl.features),
            fn=lambda: np.copyto(grad, _grad(wl, x, y, w)),
            detail="grad")
        tc = rank.now
        yield from allreduce(rank, gwin, swin, group, grad,
                             algorithm=algorithm,
                             tag_base=step * TAG_STEP_STRIDE)
        comm_time += rank.now - tc
        yield from rank.compute(
            flops=2.0 * wl.features, mem_bytes=24.0 * wl.features,
            fn=lambda: np.copyto(w, w - wl.lr * grad / p),
            detail="update")
    loop = rank.now - t0
    yield from rank.flush()
    yield from rank.barrier()
    yield from rank.finish()
    stats[r] = {"loop": loop, "allreduce": comm_time}


def run_train_step(cluster: Cluster, wl: TrainWorkload,
                   ranks_per_device: int = 1, algorithm: str = "auto",
                   override: Optional[str] = None):
    """Run *wl.steps* data-parallel SGD steps on *cluster*.

    Args:
        cluster: The machine.
        wl: The training workload.
        ranks_per_device: dCUDA ranks per GPU.
        algorithm: Collective family for the gradient allreduce;
            ``"auto"`` resolves it host-side via :func:`autotune_step`.
        override: Autotuner pin, forwarded when *algorithm* is ``auto``.

    Returns:
        ``(elapsed, weights, info)`` — median per-rank loop time, the
        final weight replica of rank 0, and a dict with the executed
        ``algorithm``, the autotuner ``choice`` (``None`` when pinned
        per call), and per-rank ``stats``.
    """
    choice: Optional[CollectiveChoice] = None
    if algorithm == "auto":
        choice = autotune_step(cluster, wl, ranks_per_device, override)
        algorithm = choice.algorithm
    total = cluster.platform.place(ranks_per_device).total_ranks
    weights = {r: _init_weights(wl) for r in range(total)}
    stats: Dict[int, dict] = {}
    launch(cluster, _train_kernel, ranks_per_device,
           kernel_args={"wl": wl, "algorithm": algorithm,
                        "weights": weights, "stats": stats})
    loops = sorted(stats[r]["loop"] for r in range(total))
    elapsed = loops[len(loops) // 2]
    return elapsed, weights[0].copy(), {"algorithm": algorithm,
                                        "choice": choice, "stats": stats}
