"""Horizontal-diffusion stencil program (the paper's second mini-app).

A simplified version of the COSMO atmospheric model's horizontal diffusion:
four dependent stencils (Laplacian, x-flux with limiter, y-flux with
limiter, output) applied to a 3-D regular grid with a limited number of
vertical k-levels, stored column-major (i contiguous, k slowest).  The
domain is decomposed one-dimensionally along j; sub-domains carry a
one-point halo in both j-directions, and each halo consists of one
continuous storage segment per vertical k-level.

Per loop iteration the program runs three compute phases (lap; flx+fly;
out) and communicates four one-point halos: lap to the left neighbour, fly
to the right neighbour, and out to both.  The dCUDA variant sends one
message per k-level (the paper's 26 separate 1 kB messages), whereas the
MPI-CUDA variant packs each halo into a continuous communication buffer and
sends it as a single message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..dcuda import DRank, launch
from ..hw.cluster import Cluster
from ..mpicuda import MPICudaContext, run_mpicuda
from .decomp import Neighbors1D, block_range

__all__ = ["DiffusionWorkload", "reference", "run_dcuda_diffusion",
           "run_mpicuda_diffusion"]

TAG_LAP = 21
TAG_FLY = 22
TAG_OUT = 23

ARRAYS = ("inp", "out", "lap", "flx", "fly")


@dataclass(frozen=True)
class DiffusionWorkload:
    """Grid dimensions per device and iteration count."""

    ni: int = 32              # contiguous horizontal dimension
    nj_per_device: int = 16   # decomposed horizontal dimension, per device
    nk: int = 4               # vertical levels (halo = nk messages in dCUDA)
    steps: int = 3
    coeff: float = 0.025

    def validate(self, ranks_per_device: int) -> None:
        if self.nj_per_device < ranks_per_device:
            raise ValueError(
                f"{self.nj_per_device} rows per device cannot feed "
                f"{ranks_per_device} ranks")


# ----------------------------------------------------------- numerics -------
# The stages compute through preallocated contiguous scratch buffers (one
# set per slice shape, reused across calls) instead of fresh temporaries.
# Each element goes through the exact same sequence of IEEE-754 operations
# as the naive expression form, so results are bit-identical; the scratch
# reuse only avoids the per-call mmap/page-fault churn of multi-hundred-KB
# temporaries, which dominates when the simulator replays these stages tens
# of thousands of times.  (`f[mask] = 0.0` is the masked-fill equivalent of
# ``np.where(mask, 0.0, f)``.)

_scratch: Dict[tuple, np.ndarray] = {}
_scratch_bool: Dict[tuple, np.ndarray] = {}


def _tmp(shape: tuple, slot: int) -> np.ndarray:
    buf = _scratch.get((shape, slot))
    if buf is None:
        buf = _scratch[(shape, slot)] = np.empty(shape)
    return buf


def _tmp_bool(shape: tuple) -> np.ndarray:
    buf = _scratch_bool.get(shape)
    if buf is None:
        buf = _scratch_bool[shape] = np.empty(shape, dtype=bool)
    return buf


def _stage_lap(inp: np.ndarray, lap: np.ndarray, j0: int, j1: int) -> None:
    """lap = 4*in - sum of 4 neighbours, on rows [j0, j1), interior i.

    The op chain accumulates directly into the destination slice (the
    slabs are per-block private, and a stage completes synchronously
    within one callback, so no other simulated actor can observe the
    intermediate states) — one fewer full pass than temp-then-copy, with
    the per-element IEEE-754 op sequence unchanged.
    """
    lv = lap[:, j0:j1, 1:-1]
    np.multiply(inp[:, j0:j1, 1:-1], 4.0, out=lv)
    np.subtract(lv, inp[:, j0:j1, 2:], out=lv)
    np.subtract(lv, inp[:, j0:j1, :-2], out=lv)
    np.subtract(lv, inp[:, j0 + 1:j1 + 1, 1:-1], out=lv)
    np.subtract(lv, inp[:, j0 - 1:j1 - 1, 1:-1], out=lv)


def _stage_flx(inp: np.ndarray, lap: np.ndarray, flx: np.ndarray,
               j0: int, j1: int) -> None:
    """x-flux with limiter on rows [j0, j1), i in [0, ni-1)."""
    shape = inp.shape[0], j1 - j0, inp.shape[2] - 1
    d = _tmp(shape, 1)
    m = _tmp_bool(shape)
    fv = flx[:, j0:j1, :-1]
    np.subtract(lap[:, j0:j1, 1:], lap[:, j0:j1, :-1], out=fv)
    np.subtract(inp[:, j0:j1, 1:], inp[:, j0:j1, :-1], out=d)
    np.multiply(fv, d, out=d)
    np.greater(d, 0.0, out=m)
    np.copyto(fv, 0.0, where=m)


def _stage_fly(inp: np.ndarray, lap: np.ndarray, fly: np.ndarray,
               j0: int, j1: int) -> None:
    """y-flux with limiter on rows [j0, j1) (needs lap/in at j+1)."""
    shape = inp.shape[0], j1 - j0, inp.shape[2]
    d = _tmp(shape, 1)
    m = _tmp_bool(shape)
    fv = fly[:, j0:j1, :]
    np.subtract(lap[:, j0 + 1:j1 + 1, :], lap[:, j0:j1, :], out=fv)
    np.subtract(inp[:, j0 + 1:j1 + 1, :], inp[:, j0:j1, :], out=d)
    np.multiply(fv, d, out=d)
    np.greater(d, 0.0, out=m)
    np.copyto(fv, 0.0, where=m)


def _stage_out(inp: np.ndarray, flx: np.ndarray, fly: np.ndarray,
               out: np.ndarray, coeff: float, j0: int, j1: int) -> None:
    """out = in - coeff * flux divergence, rows [j0, j1), interior i
    (needs fly at j-1)."""
    ov = out[:, j0:j1, 1:-1]
    np.subtract(flx[:, j0:j1, 1:-1], flx[:, j0:j1, :-2], out=ov)
    np.add(ov, fly[:, j0:j1, 1:-1], out=ov)
    np.subtract(ov, fly[:, j0 - 1:j1 - 1, 1:-1], out=ov)
    np.multiply(ov, coeff, out=ov)
    np.subtract(inp[:, j0:j1, 1:-1], ov, out=ov)


def _phase_costs(points: int) -> Dict[str, Tuple[float, float]]:
    """(flops, bytes) per phase for *points* owned grid points."""
    return {
        "lap": (5.0 * points, 2.0 * 8.0 * points),
        "flux": (8.0 * points, 5.0 * 8.0 * points),
        "out": (6.0 * points, 4.0 * 8.0 * points),
    }


_field_cache: Dict[tuple, np.ndarray] = {}


def initial_field(wl: DiffusionWorkload, num_nodes: int) -> np.ndarray:
    # The field is a pure function of (workload, nodes); benchmark drivers
    # request it several times per node count (dCUDA run, MPI-CUDA run,
    # reference), so cache the pristine copy and hand out duplicates.
    key = (wl, num_nodes)
    cached = _field_cache.get(key)
    if cached is not None:
        return cached.copy()
    nj = wl.nj_per_device * num_nodes
    rng = np.random.default_rng(7)
    field = np.zeros((wl.nk, nj + 2, wl.ni))
    field[:, 1:-1, :] = rng.standard_normal((wl.nk, nj, wl.ni))
    _field_cache[key] = field
    return field.copy()


def reference(wl: DiffusionWorkload, num_nodes: int) -> np.ndarray:
    """Serial reference; returns the interior of the final field."""
    nj = wl.nj_per_device * num_nodes
    inp = initial_field(wl, num_nodes)
    # np.zeros (calloc-backed, lazily zeroed) over zeros_like (eager memset):
    # the boundary rows these stages never write must read as 0.0 either way.
    out = np.zeros(inp.shape)
    lap = np.zeros(inp.shape)
    flx = np.zeros(inp.shape)
    fly = np.zeros(inp.shape)
    for _ in range(wl.steps):
        _stage_lap(inp, lap, 1, nj + 1)
        _stage_flx(inp, lap, flx, 1, nj + 1)
        _stage_fly(inp, lap, fly, 1, nj + 1)
        _stage_out(inp, flx, fly, out, wl.coeff, 1, nj + 1)
        inp, out = out, inp
    return inp[:, 1:-1, :].copy()


def make_device_fields(wl: DiffusionWorkload,
                       num_nodes: int) -> Dict[int, Dict[str, np.ndarray]]:
    """Per-device arrays (nk, nj_per_device+2, ni) for the five fields."""
    field = initial_field(wl, num_nodes)
    per_node: Dict[int, Dict[str, np.ndarray]] = {}
    for node in range(num_nodes):
        lo = node * wl.nj_per_device
        arrays = {"inp": field[:, lo:lo + wl.nj_per_device + 2, :].copy()}
        for name in ("out", "lap", "flx", "fly"):
            arrays[name] = np.zeros(arrays["inp"].shape)
        per_node[node] = arrays
    return per_node


def gather_field(fields: Dict[int, Dict[str, np.ndarray]],
                 name: str) -> np.ndarray:
    return np.concatenate([fields[n][name][:, 1:-1, :]
                           for n in sorted(fields)], axis=1)


# --------------------------------------------------------------- dCUDA ------
def dcuda_diffusion_kernel(rank: DRank, wl: DiffusionWorkload,
                           fields: Dict[int, Dict[str, np.ndarray]],
                           stats: Dict[int, dict]):
    size = rank.comm_size()
    r = rank.comm_rank()
    node = rank.node.index
    rpd = rank.runtime.ranks_per_device
    drank = rank.comm_rank("device")
    neigh = Neighbors1D(r, size)
    arrs = fields[node]
    lo, hi = block_range(wl.nj_per_device, rpd, drank)
    j0, j1 = lo + 1, hi + 1  # owned rows within the device array

    # Fully-overlapping windows: each rank registers the whole device array
    # per field (Fig. 3 — shared-memory halo exchange is zero copy).
    wins = {}
    for name in ARRAYS:
        wins[name] = yield from rank.win_create(arrs[name].reshape(-1))
    yield from rank.barrier()

    nj2 = wl.nj_per_device + 2
    row = wl.ni  # elements per (k, j) row segment

    def flat(name):
        return arrs[name].reshape(-1)

    def seg(name, k, j):
        base = (k * nj2 + j) * row
        return flat(name)[base:base + row]

    left_shared = drank > 0
    right_shared = drank < rpd - 1

    def halo_count(to_left: bool) -> int:
        """Notifications one halo transfer produces: overlapping windows of
        same-device ranks need a single zero-copy notified put, remote
        halos arrive as one message per k-level."""
        return 1 if (left_shared if to_left else right_shared) else wl.nk

    def halo_puts(name, cur_name, to_left, tag):
        """Send one j-row (my first or last) to a neighbour.
        *cur_name* resolves in/out swapping."""
        target = neigh.left if to_left else neigh.right
        my_j = j0 if to_left else j1 - 1
        shared = left_shared if to_left else right_shared
        win = wins[name]
        if shared:
            # Identical addresses: the put moves no data, it is purely the
            # fine-grained synchronization (the paper's no-copy case).
            # Single put: hand the backend generator straight up.
            off = (0 * nj2 + my_j) * row
            return rank.put_notify(win, target, off,
                                   seg(cur_name, 0, my_j), tag=tag)
        return remote_halo_puts(name, cur_name, to_left, tag)

    def remote_halo_puts(name, cur_name, to_left, tag):
        # Device boundary: the neighbour device's halo row, one continuous
        # storage segment per vertical k-level (26 separate 1 kB messages
        # at the paper's problem size).
        target = neigh.left if to_left else neigh.right
        my_j = j0 if to_left else j1 - 1
        win = wins[name]
        tgt_j = nj2 - 1 if to_left else 0
        for k in range(wl.nk):
            off = (k * nj2 + tgt_j) * row
            yield from rank.put_notify(win, target, off,
                                       seg(cur_name, k, my_j), tag=tag)

    costs = _phase_costs((hi - lo) * wl.ni * wl.nk)
    names = {"inp": "inp", "out": "out"}  # logical -> physical (swapped)
    t_start = rank.now
    for _ in range(wl.steps):
        inp, out = arrs[names["inp"]], arrs[names["out"]]
        lap, flx, fly = arrs["lap"], arrs["flx"], arrs["fly"]

        # Phase 1: Laplacian, then lap halo to the left neighbour.
        fl, mb = costs["lap"]
        yield from rank.compute(fl, mb, fn=lambda i=inp, l=lap:
                                _stage_lap(i, l, j0, j1), detail="lap")
        if neigh.left is not None:
            yield from halo_puts("lap", "lap", True, TAG_LAP)
        if neigh.right is not None:
            yield from rank.wait_notifications(wins["lap"], tag=TAG_LAP,
                                               count=halo_count(False))

        # Phase 2: x- and y-fluxes, then fly halo to the right neighbour.
        fl, mb = costs["flux"]
        def _flux(i=inp, l=lap, fx=flx, fy=fly):
            _stage_flx(i, l, fx, j0, j1)
            _stage_fly(i, l, fy, j0, j1)

        yield from rank.compute(fl, mb, fn=_flux, detail="flux")
        if neigh.right is not None:
            yield from halo_puts("fly", "fly", False, TAG_FLY)
        if neigh.left is not None:
            yield from rank.wait_notifications(wins["fly"], tag=TAG_FLY,
                                               count=halo_count(True))

        # Phase 3: output, then out halo to both neighbours.
        fl, mb = costs["out"]
        yield from rank.compute(
            fl, mb,
            fn=lambda i=inp, fx=flx, fy=fly, o=out:
            _stage_out(i, fx, fy, o, wl.coeff, j0, j1), detail="out")
        out_name = names["out"]
        if neigh.left is not None:
            yield from halo_puts(out_name, out_name, True, TAG_OUT)
        if neigh.right is not None:
            yield from halo_puts(out_name, out_name, False, TAG_OUT)
        out_count = ((halo_count(True) if neigh.left is not None else 0)
                     + (halo_count(False) if neigh.right is not None else 0))
        yield from rank.wait_notifications(wins[out_name], tag=TAG_OUT,
                                           count=out_count)
        names["inp"], names["out"] = names["out"], names["inp"]

    elapsed = rank.now - t_start
    for name in ARRAYS:
        yield from rank.win_free(wins[name])
    yield from rank.finish()
    if r == 0:
        stats[node] = {"main_loop": elapsed}
    return names["inp"]


def run_dcuda_diffusion(cluster: Cluster, wl: DiffusionWorkload,
                        ranks_per_device: int):
    wl.validate(ranks_per_device)
    fields = make_device_fields(wl, cluster.num_nodes)
    stats: Dict[int, dict] = {}
    res = launch(cluster, dcuda_diffusion_kernel, ranks_per_device,
                 kernel_args={"wl": wl, "fields": fields, "stats": stats})
    final_name = res.results[0]
    return res.elapsed, gather_field(fields, final_name), res


# ------------------------------------------------------------- MPI-CUDA ------
def mpicuda_diffusion_program(ctx: MPICudaContext, wl: DiffusionWorkload,
                              fields: Dict[int, Dict[str, np.ndarray]],
                              nblocks: int, stats: Dict[int, dict]):
    node = ctx.rank
    neigh = Neighbors1D(node, ctx.size)
    arrs = fields[node]
    nj = wl.nj_per_device
    costs = _phase_costs(nj * wl.ni * wl.nk)
    halo_bytes = wl.nk * wl.ni * 8.0
    halo_time = 0.0
    names = {"inp": "inp", "out": "out"}

    def exchange(name, send_left, send_right, tag):
        """Pack + single-message halo exchange; returns elapsed time."""
        nonlocal halo_time
        t0 = ctx.now
        arr = arrs[name]
        reqs = []
        if send_left and neigh.left is not None:
            # Pack kernel: gather nk strided segments into one buffer.
            buf = yield from ctx.launch(
                nblocks, mem_bytes_per_block=2.0 * halo_bytes / nblocks,
                fn=lambda: np.ascontiguousarray(arr[:, 1, :]), detail="pack")
            ctx.isend(neigh.left, buf, tag=tag)
        if send_right and neigh.right is not None:
            buf = yield from ctx.launch(
                nblocks, mem_bytes_per_block=2.0 * halo_bytes / nblocks,
                fn=lambda: np.ascontiguousarray(arr[:, nj, :]), detail="pack")
            ctx.isend(neigh.right, buf, tag=tag)
        if send_right and neigh.left is not None:
            msg = yield from ctx.recv(source=neigh.left, tag=tag)
            arr[:, 0, :] = msg.payload
        if send_left and neigh.right is not None:
            msg = yield from ctx.recv(source=neigh.right, tag=tag)
            arr[:, nj + 1, :] = msg.payload
        halo_time += ctx.now - t0

    for _ in range(wl.steps):
        inp, out = arrs[names["inp"]], arrs[names["out"]]
        lap, flx, fly = arrs["lap"], arrs["flx"], arrs["fly"]
        fl, mb = costs["lap"]
        yield from ctx.launch(nblocks, fl / nblocks, mb / nblocks,
                              fn=lambda i=inp, l=lap:
                              _stage_lap(i, l, 1, nj + 1), detail="lap")
        yield from exchange("lap", True, False, TAG_LAP)
        fl, mb = costs["flux"]
        yield from ctx.launch(
            nblocks, fl / nblocks, mb / nblocks,
            fn=lambda i=inp, l=lap, fx=flx, fy=fly: (
                _stage_flx(i, l, fx, 1, nj + 1),
                _stage_fly(i, l, fy, 1, nj + 1)), detail="flux")
        yield from exchange("fly", False, True, TAG_FLY)
        fl, mb = costs["out"]
        yield from ctx.launch(
            nblocks, fl / nblocks, mb / nblocks,
            fn=lambda i=inp, fx=flx, fy=fly, o=out:
            _stage_out(i, fx, fy, o, wl.coeff, 1, nj + 1), detail="out")
        yield from exchange(names["out"], True, True, TAG_OUT)
        yield from ctx.loop_overhead()
        names["inp"], names["out"] = names["out"], names["inp"]

    stats[node] = {"halo_time": halo_time}
    return names["inp"]


def run_mpicuda_diffusion(cluster: Cluster, wl: DiffusionWorkload,
                          nblocks: int = 26):
    fields = make_device_fields(wl, cluster.num_nodes)
    stats: Dict[int, dict] = {}
    res = run_mpicuda(cluster, mpicuda_diffusion_program,
                      program_args={"wl": wl, "fields": fields,
                                    "nblocks": nblocks, "stats": stats})
    final_name = res.results[0]
    return res.elapsed, gather_field(fields, final_name), stats
