"""Sparse matrix-vector multiplication with a 2-D domain decomposition
(the paper's third mini-app, Fig. 11).

The matrix is split into square per-device sub-domains over a ``pr x pc``
device grid; the input vector lives along the first row and the output
vector along the first column of the decomposition.  Each iteration:

1. broadcast the input-vector block down the columns (manual binary tree),
2. every rank computes its local CSR matrix-vector product,
3. reduce the partial results along the rows (manual binary tree),
4. global barrier — emulating a tightly synchronized follow-up step (the
   worst case for dCUDA's overlap philosophy).

The dCUDA variant over-decomposes along the columns: each device block is
split row-wise over the device's ranks, so the broadcast tree gets deeper
at equal message size, while the reduction sends more but smaller messages
(paper §IV-C).  Reduction messages of the MPI-CUDA variant exceed the 30 kB
staging threshold at the paper's problem size and travel through host
memory; the dCUDA runtime always goes direct device-to-device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from ..dcuda import DRank, launch
from ..hw.cluster import Cluster
from ..mpicuda import MPICudaContext, run_mpicuda
from .decomp import block_range, square_grid

__all__ = ["SpmvWorkload", "reference", "run_dcuda_spmv",
           "run_mpicuda_spmv"]

TAG_BCAST = 41
TAG_REDUCE = 50  # + tree level


@dataclass(frozen=True)
class SpmvWorkload:
    """Per-device matrix block size and sparsity."""

    n_per_device: int = 64    # square block edge per device
    density: float = 0.05
    iters: int = 3
    seed: int = 99

    def validate(self, ranks_per_device: int) -> None:
        if self.n_per_device < ranks_per_device:
            raise ValueError(
                f"block edge {self.n_per_device} cannot feed "
                f"{ranks_per_device} ranks")


_BLOCK_CACHE: Dict[Tuple[SpmvWorkload, int, int], sp.csr_matrix] = {}


def make_block(wl: SpmvWorkload, row: int, col: int) -> sp.csr_matrix:
    """The (row, col) device block — deterministic per coordinates.

    Cached: every rank of a device slices the same block, and the paper's
    problem size (10,486^2 at 0.1%) is expensive to regenerate.
    """
    key = (wl, row, col)
    block = _BLOCK_CACHE.get(key)
    if block is None:
        rng = np.random.default_rng([wl.seed, row, col])
        block = sp.random(wl.n_per_device, wl.n_per_device,
                          density=wl.density, format="csr", rng=rng)
        if len(_BLOCK_CACHE) > 32:
            _BLOCK_CACHE.clear()
        _BLOCK_CACHE[key] = block
    return block


def make_x(wl: SpmvWorkload, pc: int) -> np.ndarray:
    rng = np.random.default_rng([wl.seed, 7])
    return rng.standard_normal(wl.n_per_device * pc)


def spmv_costs(nnz: float, rows: float) -> Tuple[float, float]:
    """(flops, bytes) of one local CSR matvec."""
    return 2.0 * nnz, 12.0 * nnz + 16.0 * rows


def reference(wl: SpmvWorkload, num_nodes: int) -> np.ndarray:
    """y = A x on the assembled global matrix."""
    pr, pc = square_grid(num_nodes)
    blocks = [[make_block(wl, r, c) for c in range(pc)] for r in range(pr)]
    a_global = sp.bmat(blocks, format="csr")
    return a_global @ make_x(wl, pc)


def _tree_levels(p: int) -> int:
    levels = 0
    while (1 << levels) < p:
        levels += 1
    return levels


# --------------------------------------------------------------- dCUDA ------
def dcuda_spmv_kernel(rank: DRank, wl: SpmvWorkload,
                      outputs: Dict[int, np.ndarray],
                      stats: Dict[int, dict],
                      device_x: Dict[int, np.ndarray],
                      x_init: "np.ndarray | None" = None):
    num_nodes = rank.runtime.cluster.num_nodes
    pr, pc = square_grid(num_nodes)
    rpd = rank.runtime.ranks_per_device
    node = rank.node.index
    drank = rank.comm_rank("device")
    dev_row, dev_col = node // pc, node % pc
    n = wl.n_per_device

    # Column position: over-decomposition stacks the device's ranks along
    # the column dimension of the decomposition.
    col_pos = dev_row * rpd + drank
    col_size = pr * rpd

    def col_rank(q: int) -> int:
        """World rank at column position *q* in my column."""
        return (q // rpd) * pc * rpd + dev_col * rpd + (q % rpd)

    def row_rank(c: int) -> int:
        """World rank at column *c* in my row group (same slice)."""
        return (dev_row * pc + c) * rpd + drank

    # My slice of the device block.
    s0, s1 = block_range(n, rpd, drank)
    a_slice = make_block(wl, dev_row, dev_col)[s0:s1, :].tocsr()
    # All ranks of a device register the SAME x buffer: their windows
    # overlap fully, so intra-device broadcast edges are zero-copy
    # notifications -- the runtime "optimizes out" the redundant
    # shared-memory puts (paper SS II-D).
    x_buf = device_x[node]
    if dev_row == 0 and drank == 0:
        x_global = make_x(wl, pc) if x_init is None else x_init
        x_buf[:] = x_global[dev_col * n:(dev_col + 1) * n]
    levels = _tree_levels(pc)
    slice_len = s1 - s0
    scratch = np.zeros((max(levels, 1), slice_len))

    win_x = yield from rank.win_create(x_buf)
    win_scr = yield from rank.win_create(scratch.reshape(-1))
    yield from rank.barrier()
    flops, mem_bytes = spmv_costs(a_slice.nnz, slice_len)
    y_final = np.zeros(slice_len)
    t0 = rank.now

    for _ in range(wl.iters):
        # 1) broadcast x down the column (binomial tree over col_size).
        mask = 1
        while mask < col_size:
            if col_pos & mask:
                yield from rank.wait_notifications(win_x, tag=TAG_BCAST,
                                                   count=1)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if col_pos + mask < col_size:
                yield from rank.put_notify(win_x, col_rank(col_pos + mask),
                                           0, x_buf, tag=TAG_BCAST)
            mask >>= 1

        # 2) local sparse matrix-vector product.
        y_part = yield from rank.compute(
            flops, mem_bytes, fn=lambda: a_slice @ x_buf, detail="spmv")

        # 3) reduce along the row (binomial gather to column 0).
        level = 0
        mask = 1
        while mask < pc:
            if dev_col & mask:
                target = row_rank(dev_col - mask)
                yield from rank.put_notify(
                    win_scr, target, level * slice_len, y_part,
                    tag=TAG_REDUCE + level)
                break
            if dev_col + mask < pc:
                yield from rank.wait_notifications(
                    win_scr, source=row_rank(dev_col + mask),
                    tag=TAG_REDUCE + level, count=1)
                yield from rank.compute(
                    2.0 * slice_len, 24.0 * slice_len,
                    fn=lambda lv=level, yp=y_part:
                    np.add(yp, scratch[lv], out=yp), detail="reduce-add")
            mask <<= 1
            level += 1
        if dev_col == 0:
            y_final[:] = y_part

        # 4) tight synchronization.
        yield from rank.barrier()

    elapsed = rank.now - t0
    yield from rank.win_free(win_x)
    yield from rank.win_free(win_scr)
    yield from rank.finish()
    if dev_col == 0:
        outputs[rank.world_rank] = (dev_row, s0, y_final)
    if rank.world_rank == 0:
        stats[0] = {"main_loop": elapsed}


def _assemble_y(wl: SpmvWorkload, outputs: Dict[int, np.ndarray],
                pr: int) -> np.ndarray:
    y = np.zeros(wl.n_per_device * pr)
    for dev_row, s0, part in outputs.values():
        base = dev_row * wl.n_per_device + s0
        y[base:base + len(part)] = part
    return y


def run_dcuda_spmv(cluster: Cluster, wl: SpmvWorkload,
                   ranks_per_device: int, x_init=None):
    """Run the dCUDA variant; *x_init* overrides the seeded input vector
    (used e.g. by the power-method example)."""
    wl.validate(ranks_per_device)
    pr, pc = square_grid(cluster.num_nodes)
    outputs: Dict[int, np.ndarray] = {}
    stats: Dict[int, dict] = {}
    device_x = {node: np.zeros(wl.n_per_device)
                for node in range(cluster.num_nodes)}
    res = launch(cluster, dcuda_spmv_kernel, ranks_per_device,
                 kernel_args={"wl": wl, "outputs": outputs, "stats": stats,
                              "device_x": device_x, "x_init": x_init})
    return res.elapsed, _assemble_y(wl, outputs, pr), res


# ------------------------------------------------------------- MPI-CUDA ------
def mpicuda_spmv_program(ctx: MPICudaContext, wl: SpmvWorkload,
                         outputs: Dict[int, np.ndarray],
                         stats: Dict[int, dict], nblocks: int):
    num_nodes = ctx.size
    pr, pc = square_grid(num_nodes)
    node = ctx.rank
    dev_row, dev_col = node // pc, node % pc
    n = wl.n_per_device
    a_block = make_block(wl, dev_row, dev_col)
    x_buf = np.zeros(n)
    if dev_row == 0:
        x_buf[:] = make_x(wl, pc)[dev_col * n:(dev_col + 1) * n]
    flops, mem_bytes = spmv_costs(a_block.nnz, n)
    comm_time = 0.0
    y_final = np.zeros(n)

    def col_node(q: int) -> int:
        return q * pc + dev_col

    def row_node(c: int) -> int:
        return dev_row * pc + c

    for _ in range(wl.iters):
        t0 = ctx.now
        # 1) bcast x down the column (manual binomial, two-sided).
        mask = 1
        while mask < pr:
            if dev_row & mask:
                msg = yield from ctx.recv(source=col_node(dev_row - mask),
                                          tag=TAG_BCAST)
                x_buf[:] = msg.payload
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if dev_row + mask < pr:
                ctx.isend(col_node(dev_row + mask), x_buf.copy(),
                          tag=TAG_BCAST)
            mask >>= 1
        comm_time += ctx.now - t0

        # 2) local matvec kernel.
        y_part = yield from ctx.launch(
            nblocks, flops / nblocks, mem_bytes / nblocks,
            fn=lambda: a_block @ x_buf, detail="spmv")

        # 3) reduce along the row (manual binomial, two-sided).
        t0 = ctx.now
        mask = 1
        level = 0
        while mask < pc:
            if dev_col & mask:
                yield from ctx.send(row_node(dev_col - mask), y_part,
                                    tag=TAG_REDUCE + level)
                break
            if dev_col + mask < pc:
                msg = yield from ctx.recv(source=row_node(dev_col + mask),
                                          tag=TAG_REDUCE + level)
                partial = msg.payload
                y_part = yield from ctx.launch(
                    nblocks, 2.0 * n / nblocks, 24.0 * n / nblocks,
                    fn=lambda yp=y_part, pa=partial: yp + pa,
                    detail="reduce-add")
            mask <<= 1
            level += 1
        if dev_col == 0:
            y_final[:] = y_part

        # 4) tight synchronization.
        yield from ctx.barrier()
        comm_time += ctx.now - t0
        yield from ctx.loop_overhead()

    if dev_col == 0:
        outputs[node] = (dev_row, 0, y_final)
    stats[node] = {"comm_time": comm_time}


def run_mpicuda_spmv(cluster: Cluster, wl: SpmvWorkload, nblocks: int = 26):
    pr, pc = square_grid(cluster.num_nodes)
    outputs: Dict[int, np.ndarray] = {}
    stats: Dict[int, dict] = {}
    res = run_mpicuda(cluster, mpicuda_spmv_program,
                      program_args={"wl": wl, "outputs": outputs,
                                    "stats": stats, "nblocks": nblocks})
    return res.elapsed, _assemble_y(wl, outputs, pr), stats
