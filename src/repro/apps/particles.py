"""Particle simulation with short-range repulsive forces (Fig. 9 mini-app).

Particles live in a wide two-dimensional domain decomposed into cells
aligned along the wide edge; the cell width equals the cutoff distance, so
forces act only between particles of the same or neighbouring cells.  The
state is a structure of arrays (id, position, velocity) with fixed-size,
non-overlapping index ranges per cell and a counter per cell; storage is
over-allocated four-fold to absorb non-uniform distributions.

Main-loop steps (paper §IV-C):

1. halo-cell exchange between neighbouring ranks,
2. force computation + position update (reads the pre-update state, so the
   result is decomposition-invariant),
3. sorting out particles that moved to a neighbouring cell,
4. communication of particles that moved to a neighbouring rank,
5. integration of arrived particles (and a canonical per-cell id sort that
   keeps the particle order — and therefore float summation order —
   identical to the serial reference).

The dCUDA variant registers one window per array; counters are directly
accessible on the device.  The MPI-CUDA variant must fetch the bookkeeping
counters to the host (a ``cudaMemcpy`` per exchange) before it can size its
messages — the overhead the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dcuda import DRank, launch
from ..hw.cluster import Cluster
from ..mpicuda import MPICudaContext, run_mpicuda
from .decomp import Neighbors1D, block_range

__all__ = ["ParticleWorkload", "reference", "run_dcuda_particles",
           "run_mpicuda_particles"]

TAG_HALO = 31
TAG_MOVE = 32

FIELDS = ("pid", "x", "y", "vx", "vy")


@dataclass(frozen=True)
class ParticleWorkload:
    """Per-node workload (weak scaling keeps this constant per node)."""

    cells_per_node: int = 16
    particles_per_node: int = 256
    steps: int = 4
    cutoff: float = 1.0       # = cell width
    dt: float = 0.005
    force_k: float = 20.0
    #: Force softening radius (fraction of the cutoff): bounds the 1/r
    #: repulsion for overlapping particles so dense (clustered) initial
    #: conditions stay numerically tame.
    softening: float = 0.05
    #: Initial spatial distribution: "uniform", or "clustered" (a Gaussian
    #: bump per node) — the latter produces the dynamic load imbalance the
    #: paper blames for the particle simulation's non-flat dCUDA scaling
    #: ("the minimal and maximal halo exchange times ... differ by a
    #: factor of two").
    distribution: str = "uniform"

    @property
    def capacity(self) -> int:
        """Per-cell storage: four times the average occupancy (paper)."""
        avg = max(1, -(-self.particles_per_node // self.cells_per_node))
        return 4 * avg

    def width(self, num_nodes: int) -> float:
        return self.cells_per_node * num_nodes * self.cutoff

    def validate(self, ranks_per_device: int) -> None:
        if self.cells_per_node < ranks_per_device:
            raise ValueError(
                f"{self.cells_per_node} cells per node cannot feed "
                f"{ranks_per_device} ranks")


class CellArrays:
    """Structure-of-arrays particle storage over a range of cells.

    Index 0 and -1 are halo cells; ``counts`` tracks per-cell occupancy.
    """

    def __init__(self, ncells_with_halo: int, capacity: int):
        self.capacity = capacity
        self.counts = np.zeros(ncells_with_halo, dtype=np.float64)
        self.fields: Dict[str, np.ndarray] = {
            name: np.zeros((ncells_with_halo, capacity)) for name in FIELDS}

    @property
    def ncells(self) -> int:
        return len(self.counts)

    def count(self, cell: int) -> int:
        return int(self.counts[cell])

    def insert(self, cell: int, rows: Dict[str, np.ndarray]) -> None:
        k = len(rows["pid"])
        if k == 0:
            return
        n = self.count(cell)
        if n + k > self.capacity:
            raise OverflowError(
                f"cell {cell} overflows: {n}+{k} > capacity {self.capacity}")
        for name in FIELDS:
            self.fields[name][cell, n:n + k] = rows[name]
        self.counts[cell] = n + k

    def extract(self, cell: int, mask: np.ndarray) -> Dict[str, np.ndarray]:
        """Remove masked particles from *cell*; returns their rows."""
        n = self.count(cell)
        taken = {name: self.fields[name][cell, :n][mask].copy()
                 for name in FIELDS}
        keep = ~mask
        k = int(keep.sum())
        for name in FIELDS:
            kept = self.fields[name][cell, :n][keep]
            self.fields[name][cell, :k] = kept
            self.fields[name][cell, k:n] = 0.0
        self.counts[cell] = k
        return taken

    def sort_cell(self, cell: int) -> None:
        """Canonical per-cell order: ascending particle id."""
        n = self.count(cell)
        if n < 2:
            return
        order = np.argsort(self.fields["pid"][cell, :n], kind="stable")
        for name in FIELDS:
            self.fields[name][cell, :n] = self.fields[name][cell, :n][order]

    def rows(self, cell: int) -> Dict[str, np.ndarray]:
        n = self.count(cell)
        return {name: self.fields[name][cell, :n].copy() for name in FIELDS}


# ------------------------------------------------------------- physics ------
def compute_forces(arr: CellArrays, lo: int, hi: int,
                   wl: ParticleWorkload) -> Tuple[np.ndarray, np.ndarray]:
    """Accelerations for cells [lo, hi) from the 3-cell neighbourhoods.

    Reads only (no in-place update), so every rank computes from the same
    synchronized snapshot.
    """
    ax = np.zeros((hi - lo, arr.capacity))
    ay = np.zeros((hi - lo, arr.capacity))
    cut2 = wl.cutoff * wl.cutoff
    for c in range(lo, hi):
        n = arr.count(c)
        if n == 0:
            continue
        nb_x, nb_y = [], []
        for cc in (c - 1, c, c + 1):
            m = arr.count(cc)
            nb_x.append(arr.fields["x"][cc, :m])
            nb_y.append(arr.fields["y"][cc, :m])
        nx = np.concatenate(nb_x)
        ny = np.concatenate(nb_y)
        dx = arr.fields["x"][c, :n, None] - nx[None, :]
        dy = arr.fields["y"][c, :n, None] - ny[None, :]
        r2 = dx * dx + dy * dy
        mask = (r2 < cut2) & (r2 > 1e-18)
        r = np.sqrt(np.where(mask, r2, 1.0))
        r_soft = np.maximum(r, wl.softening * wl.cutoff)
        f = np.where(mask, wl.force_k * (wl.cutoff - r) / r_soft, 0.0)
        ax[c - lo, :n] = (f * dx).sum(axis=1)
        ay[c - lo, :n] = (f * dy).sum(axis=1)
    return ax, ay


def integrate(arr: CellArrays, lo: int, hi: int, ax: np.ndarray,
              ay: np.ndarray, wl: ParticleWorkload, width: float) -> None:
    """Velocity/position update with wall reflection, cells [lo, hi)."""
    max_step = 0.95 * wl.cutoff
    for c in range(lo, hi):
        n = arr.count(c)
        if n == 0:
            continue
        f = arr.fields
        f["vx"][c, :n] += wl.dt * ax[c - lo, :n]
        f["vy"][c, :n] += wl.dt * ay[c - lo, :n]
        step_x = np.clip(wl.dt * f["vx"][c, :n], -max_step, max_step)
        step_y = np.clip(wl.dt * f["vy"][c, :n], -max_step, max_step)
        f["x"][c, :n] += step_x
        f["y"][c, :n] += step_y
        # Reflect at the domain walls.
        for coord, vel, limit in (("x", "vx", width), ("y", "vy", 1.0)):
            low = f[coord][c, :n] < 0.0
            f[coord][c, :n] = np.where(low, -f[coord][c, :n],
                                       f[coord][c, :n])
            f[vel][c, :n] = np.where(low, -f[vel][c, :n], f[vel][c, :n])
            highv = f[coord][c, :n] >= limit
            f[coord][c, :n] = np.where(
                highv, np.nextafter(2.0 * limit - f[coord][c, :n], 0.0),
                f[coord][c, :n])
            f[vel][c, :n] = np.where(highv, -f[vel][c, :n], f[vel][c, :n])


def collect_movers(arr: CellArrays, lo: int, hi: int, first_global: int,
                   wl: ParticleWorkload
                   ) -> Tuple[Dict[int, Dict], Dict[int, Dict]]:
    """Remove particles that left their cell; returns per-cell rows moving
    left / right (local cell indices)."""
    left: Dict[int, Dict] = {}
    right: Dict[int, Dict] = {}
    for c in range(lo, hi):
        n = arr.count(c)
        if n == 0:
            continue
        gcell = first_global + (c - lo)
        xlo = gcell * wl.cutoff
        xhi = xlo + wl.cutoff
        xs = arr.fields["x"][c, :n]
        move_l = xs < xlo
        move_r = xs >= xhi
        if move_l.any():
            left[c] = arr.extract(c, move_l)
            n = arr.count(c)
            xs = arr.fields["x"][c, :n]
            move_r = xs >= xhi
        if move_r.any():
            right[c] = arr.extract(c, move_r)
    return left, right


def apply_local_moves(arr: CellArrays, lo: int, hi: int,
                      left: Dict[int, Dict], right: Dict[int, Dict]
                      ) -> Tuple[Optional[Dict], Optional[Dict]]:
    """Insert movers into destination cells; canonical order is
    from-left arrivals then from-right arrivals.  Returns the rows leaving
    through the lo / hi boundary (or None)."""
    for c in range(lo, hi):
        if c - 1 in right and c - 1 >= lo:
            arr.insert(c, right[c - 1])
        if c + 1 in left and c + 1 < hi:
            arr.insert(c, left[c + 1])
    out_left = left.get(lo)
    out_right = right.get(hi - 1)
    return out_left, out_right


def pack_rows(rows: Optional[Dict[str, np.ndarray]]) -> np.ndarray:
    """[count, pid..., x..., y..., vx..., vy...] wire format."""
    if rows is None or len(rows["pid"]) == 0:
        return np.zeros(1)
    k = len(rows["pid"])
    return np.concatenate([[float(k)]] + [rows[name] for name in FIELDS])


def unpack_rows(buf: np.ndarray) -> Optional[Dict[str, np.ndarray]]:
    k = int(buf[0])
    if k == 0:
        return None
    rows = {}
    for idx, name in enumerate(FIELDS):
        rows[name] = buf[1 + idx * k:1 + (idx + 1) * k].copy()
    return rows


def interactions_count(arr: CellArrays, lo: int, hi: int) -> float:
    """Pair-count for the cost model (data-dependent load!)."""
    total = 0.0
    for c in range(lo, hi):
        n = arr.count(c)
        if n:
            total += n * (arr.count(c - 1) + n + arr.count(c + 1))
    return total


def particle_costs(arr: CellArrays, lo: int, hi: int
                   ) -> Dict[str, Tuple[float, float]]:
    inter = interactions_count(arr, lo, hi)
    npart = float(arr.counts[lo:hi].sum())
    return {
        "force": (12.0 * inter, 16.0 * inter + 40.0 * npart),
        "sort": (6.0 * npart, 6.0 * 8.0 * npart * 2),
        "insert": (2.0 * npart, 5.0 * 8.0 * npart),
    }


def per_block_force_costs(arr: CellArrays, lo: int, hi: int,
                          nblocks: int) -> List[Tuple[float, float]]:
    """Per-block (flops, bytes) of the force kernel when blocks map to
    contiguous cell chunks — non-uniform distributions make some blocks
    stragglers, gating the fork-join kernel (MPI-CUDA baseline)."""
    per_cell = []
    for c in range(lo, hi):
        n = arr.count(c)
        inter = n * (arr.count(c - 1) + n + arr.count(c + 1)) if n else 0.0
        per_cell.append(inter)
    chunks = np.array_split(np.asarray(per_cell, dtype=float),
                            min(nblocks, len(per_cell)))
    return [(12.0 * chunk.sum(), 16.0 * chunk.sum()) for chunk in chunks]


# ---------------------------------------------------------------- setup ------
def seed_particles(wl: ParticleWorkload, num_nodes: int) -> CellArrays:
    """Deterministic global initial state over all cells (+1 halo each end,
    unused at the walls)."""
    total_cells = wl.cells_per_node * num_nodes
    n = wl.particles_per_node * num_nodes
    rng = np.random.default_rng(2016)
    width = wl.width(num_nodes)
    arr = CellArrays(total_cells + 2, wl.capacity)
    if wl.distribution == "uniform":
        xs = rng.uniform(0.0, width, n)
    elif wl.distribution == "clustered":
        # One Gaussian bump per node, centred off-middle so boundary cells
        # carry unequal populations (controlled load imbalance).
        node_width = wl.cells_per_node * wl.cutoff
        centers = (np.arange(num_nodes) + 0.3) * node_width
        xs = rng.normal(centers[rng.integers(0, num_nodes, n)],
                        0.15 * node_width)
        xs = np.clip(xs, 0.0, np.nextafter(width, 0.0))
    else:
        raise ValueError(f"unknown distribution {wl.distribution!r}")
    ys = rng.uniform(0.0, 1.0, n)
    vxs = rng.standard_normal(n) * 0.5
    vys = rng.standard_normal(n) * 0.5
    cells = np.minimum((xs / wl.cutoff).astype(int), total_cells - 1)
    for c in range(total_cells):
        sel = cells == c
        arr.insert(c + 1, {"pid": np.flatnonzero(sel).astype(float),
                           "x": xs[sel], "y": ys[sel],
                           "vx": vxs[sel], "vy": vys[sel]})
        arr.sort_cell(c + 1)
    return arr


def global_state(arr: CellArrays, lo: int, hi: int) -> np.ndarray:
    """(pid, x, y, vx, vy) rows over cells [lo, hi), sorted by pid."""
    rows = []
    for c in range(lo, hi):
        n = arr.count(c)
        rows.append(np.stack([arr.fields[name][c, :n] for name in FIELDS],
                             axis=1))
    out = np.concatenate(rows, axis=0)
    return out[np.argsort(out[:, 0], kind="stable")]


def reference(wl: ParticleWorkload, num_nodes: int) -> np.ndarray:
    """Serial reference; returns the final sorted particle state."""
    arr = seed_particles(wl, num_nodes)
    total = wl.cells_per_node * num_nodes
    width = wl.width(num_nodes)
    lo, hi = 1, total + 1
    for _ in range(wl.steps):
        ax, ay = compute_forces(arr, lo, hi, wl)
        integrate(arr, lo, hi, ax, ay, wl, width)
        left, right = collect_movers(arr, lo, hi, 0, wl)
        out_l, out_r = apply_local_moves(arr, lo, hi, left, right)
        assert out_l is None and out_r is None, "wall reflection failed"
        for c in range(lo, hi):
            arr.sort_cell(c)
    return global_state(arr, lo, hi)


def _local_setup(wl: ParticleWorkload, num_nodes: int, total_ranks: int,
                 rank: int) -> Tuple[CellArrays, int, int]:
    """This rank's private cell arrays (with halo slots) + global range."""
    seed = seed_particles(wl, num_nodes)
    total_cells = wl.cells_per_node * num_nodes
    g_lo, g_hi = block_range(total_cells, total_ranks, rank)
    local = CellArrays(g_hi - g_lo + 2, wl.capacity)
    for c in range(g_lo, g_hi):
        local.insert(c - g_lo + 1, seed.rows(c + 1))
    return local, g_lo, g_hi


# --------------------------------------------------------------- dCUDA ------
def dcuda_particle_kernel(rank: DRank, wl: ParticleWorkload,
                          outputs: Dict[int, np.ndarray],
                          stats: Dict[int, dict]):
    size = rank.comm_size()
    r = rank.comm_rank()
    num_nodes = rank.runtime.cluster.num_nodes
    neigh = Neighbors1D(r, size)
    width = wl.width(num_nodes)
    arr, g_lo, g_hi = _local_setup(wl, num_nodes, size, r)
    lo, hi = 1, arr.ncells - 1
    inbox = np.zeros((2, 1 + 5 * wl.capacity))  # mover inbox per side

    # One window per array (paper) + counters + the mover inbox.
    wins = {}
    for name in FIELDS:
        wins[name] = yield from rank.win_create(
            arr.fields[name].reshape(-1))
    wins["counts"] = yield from rank.win_create(arr.counts)
    wins["inbox"] = yield from rank.win_create(inbox.reshape(-1))
    yield from rank.barrier()
    cap = wl.capacity
    t_start = rank.now

    def send_halo(to_left: bool):
        """Send my boundary cell into the neighbour's halo slot: one put
        per array plus the counter (direct device access to the counts —
        no host round trip, unlike MPI-CUDA)."""
        target = neigh.left if to_left else neigh.right
        cell = lo if to_left else hi - 1
        # Neighbour's halo slot: its last slot when I am its right
        # neighbour, its slot 0 when I am its left neighbour.
        t_sizes = block_range(wl.cells_per_node * num_nodes, size, target)
        t_cells = t_sizes[1] - t_sizes[0]
        t_slot = t_cells + 1 if to_left else 0
        n = arr.count(cell)
        for name in FIELDS:
            src = arr.fields[name][cell, :max(n, 1)]
            yield from rank.put_notify(wins[name], target, t_slot * cap,
                                       src, tag=TAG_HALO)
        yield from rank.put_notify(wins["counts"], target, t_slot,
                                   arr.counts[cell:cell + 1], tag=TAG_HALO)

    def send_movers(rows, to_left: bool):
        target = neigh.left if to_left else neigh.right
        side = 1 if to_left else 0  # my-left mover lands in their R inbox
        buf = pack_rows(rows)
        yield from rank.put_notify(wins["inbox"], target,
                                   side * inbox.shape[1], buf, tag=TAG_MOVE)

    for _ in range(wl.steps):
        # 1) halo-cell exchange
        if neigh.left is not None:
            yield from send_halo(True)
        if neigh.right is not None:
            yield from send_halo(False)
        yield from rank.wait_notifications(
            None, tag=TAG_HALO, count=(len(FIELDS) + 1) * neigh.count)

        # 2) force computation + integration
        costs = particle_costs(arr, lo, hi)
        fl, mb = costs["force"]
        acc = yield from rank.compute(
            fl, mb, fn=lambda: compute_forces(arr, lo, hi, wl),
            detail="force")
        yield from rank.compute(
            *costs["insert"],
            fn=lambda: integrate(arr, lo, hi, acc[0], acc[1], wl, width),
            detail="integrate")

        # 3) sort out movers
        moved = yield from rank.compute(
            *costs["sort"],
            fn=lambda: apply_local_moves(
                arr, lo, hi, *collect_movers(arr, lo, hi, g_lo, wl)),
            detail="sort")
        out_l, out_r = moved

        # 4) communicate movers (always, so the wait count is static)
        if neigh.left is not None:
            yield from send_movers(out_l, True)
        else:
            assert out_l is None
        if neigh.right is not None:
            yield from send_movers(out_r, False)
        else:
            assert out_r is None
        yield from rank.wait_notifications(wins["inbox"], tag=TAG_MOVE,
                                           count=neigh.count)

        # 5) integrate arrivals + canonical sort
        def absorb():
            if neigh.left is not None:
                rows = unpack_rows(inbox[0])
                if rows is not None:
                    arr.insert(lo, rows)
            if neigh.right is not None:
                rows = unpack_rows(inbox[1])
                if rows is not None:
                    arr.insert(hi - 1, rows)
            for c in range(lo, hi):
                arr.sort_cell(c)
        yield from rank.compute(*costs["insert"], fn=absorb,
                                detail="absorb")

    elapsed = rank.now - t_start
    for win in wins.values():
        yield from rank.win_free(win)
    yield from rank.finish()
    outputs[r] = global_state(arr, lo, hi)
    if rank.comm_rank("device") == 0:
        stats[rank.node.index] = {"main_loop": elapsed}
    return g_lo


def run_dcuda_particles(cluster: Cluster, wl: ParticleWorkload,
                        ranks_per_device: int):
    wl.validate(ranks_per_device)
    outputs: Dict[int, np.ndarray] = {}
    stats: Dict[int, dict] = {}
    res = launch(cluster, dcuda_particle_kernel, ranks_per_device,
                 kernel_args={"wl": wl, "outputs": outputs, "stats": stats})
    state = np.concatenate([outputs[r] for r in sorted(outputs)], axis=0)
    state = state[np.argsort(state[:, 0], kind="stable")]
    return res.elapsed, state, res


# ------------------------------------------------------------- MPI-CUDA ------
def mpicuda_particle_program(ctx: MPICudaContext, wl: ParticleWorkload,
                             outputs: Dict[int, np.ndarray],
                             stats: Dict[int, dict], nblocks: int):
    node = ctx.rank
    num_nodes = ctx.size
    neigh = Neighbors1D(node, num_nodes)
    width = wl.width(num_nodes)
    arr, g_lo, g_hi = _local_setup(wl, num_nodes, num_nodes, node)
    lo, hi = 1, arr.ncells - 1
    halo_time = 0.0

    def exchange_cells():
        """Two-sided halo-cell exchange.  The host must first fetch the
        boundary-cell counters from the device to size the messages."""
        nonlocal halo_time
        t0 = ctx.now
        yield from ctx.memcpy(16.0)  # fetch 2 counters
        reqs = []
        if neigh.left is not None:
            buf = yield from ctx.launch(
                nblocks, mem_bytes_per_block=48.0 * arr.count(lo) / nblocks,
                fn=lambda: pack_rows(arr.rows(lo)), detail="pack")
            ctx.isend(neigh.left, buf, tag=TAG_HALO)
            reqs.append((ctx.irecv(source=neigh.left, tag=TAG_HALO), 0))
        if neigh.right is not None:
            buf = yield from ctx.launch(
                nblocks,
                mem_bytes_per_block=48.0 * arr.count(hi - 1) / nblocks,
                fn=lambda: pack_rows(arr.rows(hi - 1)), detail="pack")
            ctx.isend(neigh.right, buf, tag=TAG_HALO)
            reqs.append((ctx.irecv(source=neigh.right, tag=TAG_HALO),
                         hi))
        for req, slot in reqs:
            msg = yield from req.wait()
            rows = unpack_rows(msg.payload)
            arr.counts[slot] = 0.0
            if rows is not None:
                arr.insert(slot, rows)
        halo_time += ctx.now - t0

    def exchange_movers(out_l, out_r):
        nonlocal halo_time
        t0 = ctx.now
        yield from ctx.memcpy(16.0)
        reqs = []
        if neigh.left is not None:
            ctx.isend(neigh.left, pack_rows(out_l), tag=TAG_MOVE)
            reqs.append((ctx.irecv(source=neigh.left, tag=TAG_MOVE), lo))
        if neigh.right is not None:
            ctx.isend(neigh.right, pack_rows(out_r), tag=TAG_MOVE)
            reqs.append((ctx.irecv(source=neigh.right, tag=TAG_MOVE),
                         hi - 1))
        for req, cell in reqs:
            msg = yield from req.wait()
            rows = unpack_rows(msg.payload)
            if rows is not None:
                arr.insert(cell, rows)
        halo_time += ctx.now - t0

    for _ in range(wl.steps):
        yield from exchange_cells()
        costs = particle_costs(arr, lo, hi)
        acc = yield from ctx.launch(
            per_block=per_block_force_costs(arr, lo, hi, nblocks),
            fn=lambda: compute_forces(arr, lo, hi, wl), detail="force")
        yield from ctx.launch(
            nblocks, costs["insert"][0] / nblocks,
            costs["insert"][1] / nblocks,
            fn=lambda: integrate(arr, lo, hi, acc[0], acc[1], wl, width),
            detail="integrate")
        moved = yield from ctx.launch(
            nblocks, costs["sort"][0] / nblocks,
            costs["sort"][1] / nblocks,
            fn=lambda: apply_local_moves(
                arr, lo, hi, *collect_movers(arr, lo, hi, g_lo, wl)),
            detail="sort")
        yield from exchange_movers(*moved)

        def absorb_sort():
            for c in range(lo, hi):
                arr.sort_cell(c)
        yield from ctx.launch(
            nblocks, costs["insert"][0] / nblocks,
            costs["insert"][1] / nblocks, fn=absorb_sort, detail="absorb")
        yield from ctx.loop_overhead()

    outputs[node] = global_state(arr, lo, hi)
    stats[node] = {"halo_time": halo_time}


def run_mpicuda_particles(cluster: Cluster, wl: ParticleWorkload,
                          nblocks: int = 26):
    outputs: Dict[int, np.ndarray] = {}
    stats: Dict[int, dict] = {}
    res = run_mpicuda(cluster, mpicuda_particle_program,
                      program_args={"wl": wl, "outputs": outputs,
                                    "stats": stats, "nblocks": nblocks})
    state = np.concatenate([outputs[r] for r in sorted(outputs)], axis=0)
    state = state[np.argsort(state[:, 0], kind="stable")]
    return res.elapsed, state, stats
