"""The dCUDA error hierarchy.

All runtime-visible failures derive from :class:`DCudaError`, so existing
``except DCudaError`` sites keep working as the taxonomy grows.  Each class
carries a stable machine-readable :attr:`~DCudaError.code` and a one-line
:attr:`~DCudaError.remediation` hint (the table in ``docs/faults.md`` is
generated from :data:`ERROR_TABLE`).  Instances optionally carry structured
context — the world rank and the simulated time of the failure — so chaos
tests and the fault report can attribute failures without parsing messages.

The canonical definitions live here, in a dependency-free module, because
the hardened runtime layer (:mod:`repro.runtime.queues`) raises these
errors and must not import the :mod:`repro.dcuda` package (which imports
the runtime back).  :mod:`repro.dcuda.errors` re-exports everything for
the public API surface.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "DCudaError",
    "DCudaProtocolError",
    "DCudaUsageError",
    "DCudaTimeoutError",
    "DCudaFaultError",
    "DCudaWorkerError",
    "ERROR_TABLE",
]


class DCudaError(RuntimeError):
    """Base class for all dCUDA protocol, usage, and fault errors.

    Args:
        message: Human-readable description of the failure.
        rank: World rank the failure is attributed to, when known.
        sim_time: Simulated time [s] at which the failure was detected.

    Attributes:
        code: Stable machine-readable error code of the class.
        remediation: One-line hint on how to address this error class.
        rank: World rank context (``None`` when not attributable).
        sim_time: Simulated-time context (``None`` when not applicable).

    Raises:
        Nothing itself; it *is* the thing that gets raised.
    """

    code = "DCUDA_ERROR"
    remediation = ("Inspect the message; this is the base class for all "
                   "dCUDA failures.")

    def __init__(self, message: str = "", *, rank: Optional[int] = None,
                 sim_time: Optional[float] = None):
        super().__init__(message)
        self.rank = rank
        self.sim_time = sim_time

    def context(self) -> str:
        """Render the structured context (rank, simulated time) as text.

        Returns:
            A string like ``"rank=3 t=1.2e-04s"``; empty when no context
            was attached.
        """
        parts = []
        if self.rank is not None:
            parts.append(f"rank={self.rank}")
        if self.sim_time is not None:
            parts.append(f"t={self.sim_time:.6e}s")
        return " ".join(parts)

    def __str__(self) -> str:
        base = super().__str__()
        ctx = self.context()
        return f"{base} [{ctx}]" if ctx else base


class DCudaProtocolError(DCudaError):
    """The host↔device queue protocol was violated (e.g. a misaligned ack).

    Indicates a runtime bug or corrupted queue state, not an application
    error: the device received an acknowledgement of a kind it never asked
    for, or an entry failed its sequence-number validation in a way the
    recovery path cannot repair.
    """

    code = "DCUDA_PROTOCOL"
    remediation = ("File a runtime bug: the ack/command streams went out "
                   "of sync. Re-run with observability enabled and inspect "
                   "the per-queue counters.")


class DCudaUsageError(DCudaError):
    """The application misused the device API (e.g. use after ``finish``).

    The request was well-formed but illegal in the current rank state.
    """

    code = "DCUDA_USAGE"
    remediation = ("Fix the kernel: check rank lifecycle (no calls after "
                   "finish()) and window/communicator arguments.")


class DCudaTimeoutError(DCudaError):
    """A bounded wait expired: handshake, notification wait, or watchdog.

    Raised by the hardened runtime when a queue handshake exhausts its
    backoff retries, a notification wait exceeds the configured simulated
    timeout, or the launch-level simulated-time watchdog fires.  Always
    carries ``sim_time``; carries ``rank`` whenever one rank is waiting.
    """

    code = "DCUDA_TIMEOUT"
    remediation = ("Raise FaultsConfig.handshake_timeout/watchdog if the "
                   "workload is legitimately slow; otherwise a peer rank "
                   "is stuck — check the fault report for the lossy "
                   "window/queue.")


class DCudaFaultError(DCudaError):
    """An injected (or detected) fault exceeded the runtime's recovery budget.

    Raised when sequence-number recovery re-posts a dropped queue slot more
    than ``FaultsConfig.max_retries`` times, or when fault injection drives
    the runtime into a state the hardening cannot repair (diagnosed
    deadlock under injection).
    """

    code = "DCUDA_FAULT"
    remediation = ("The fault schedule outran the recovery budget: raise "
                   "FaultsConfig.max_retries/redelivery_delay or reduce "
                   "the injected loss burst (FaultEvent.count).")


class DCudaWorkerError(DCudaError):
    """A sweep task failed outside the typed taxonomy, or a spec kept
    killing its workers.

    Raised by the sweep service (:mod:`repro.exec.coordinator`): either
    a task raised an exception that is not a :class:`DCudaError` (the
    message embeds the original traceback text), or a spec was
    quarantined after its worker died on every dispatch attempt.  A
    single worker death is *not* an error — the coordinator re-dispatches
    the in-flight job to a surviving or respawned worker and the sweep
    completes; only a poisoned spec that exhausts its attempt budget on
    distinct workers surfaces here, after the rest of the sweep drains.
    """

    code = "DCUDA_WORKER"
    remediation = ("Worker loss is retried automatically (bounded "
                   "re-dispatch, then quarantine) — see "
                   "docs/sweep_service.md.  For a task *exception*, the "
                   "message carries the label and traceback; re-running "
                   "serially (workers=1) reproduces it in-process under "
                   "a debugger.")


#: ``code -> (class name, remediation)`` — the documentation table
#: (``docs/faults.md``) and the fault report render from this.
ERROR_TABLE = {
    cls.code: (cls.__name__, cls.remediation)
    for cls in (DCudaError, DCudaProtocolError, DCudaUsageError,
                DCudaTimeoutError, DCudaFaultError, DCudaWorkerError)
}
