"""dCUDA: device-side remote memory access with target notification.

The paper's primary contribution — a single coherent GPU-cluster
programming model.  Write a kernel as a generator over :class:`DRank`,
then :func:`launch` it on a simulated :class:`~repro.hw.Cluster`::

    from repro.hw import Cluster, greina
    from repro.dcuda import launch, DCUDA_ANY_SOURCE

    def kernel(rank):
        win = yield from rank.win_create(my_buffer)
        yield from rank.put_notify(win, rank.world_rank ^ 1, 0, data, tag=0)
        yield from rank.wait_notifications(win, DCUDA_ANY_SOURCE, 0, 1)
        yield from rank.win_free(win)
        yield from rank.finish()

    result = launch(Cluster(greina(2)), kernel, ranks_per_device=2)
"""

from . import capi, collectives, ext
from .device_api import (
    DCUDA_ANY_SOURCE,
    DCUDA_ANY_TAG,
    DCUDA_ANY_WINDOW,
    DCUDA_COMM_DEVICE,
    DCUDA_COMM_WORLD,
    DRank,
)
from .errors import (
    ERROR_TABLE,
    DCudaError,
    DCudaFaultError,
    DCudaProtocolError,
    DCudaTimeoutError,
    DCudaUsageError,
    DCudaWorkerError,
)
from .launch import LaunchResult, launch
from .notifications import NotificationMatcher
from .window import Window, same_memory

__all__ = [
    "capi", "collectives", "ext",
    "DCUDA_ANY_SOURCE", "DCUDA_ANY_TAG", "DCUDA_ANY_WINDOW",
    "DCUDA_COMM_DEVICE", "DCUDA_COMM_WORLD", "DRank",
    "DCudaError", "DCudaProtocolError", "DCudaUsageError",
    "DCudaTimeoutError", "DCudaFaultError", "DCudaWorkerError",
    "ERROR_TABLE",
    "LaunchResult", "launch",
    "NotificationMatcher",
    "Window", "same_memory",
]
