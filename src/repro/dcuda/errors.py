"""dCUDA error types — public re-export of :mod:`repro.errors`.

The canonical hierarchy lives at the top level so the runtime layer can
raise these without importing the :mod:`repro.dcuda` package (which would
be circular).  Import from here for the public API surface::

    from repro.dcuda.errors import DCudaError, DCudaTimeoutError
"""

from ..errors import (  # noqa: F401
    ERROR_TABLE,
    DCudaError,
    DCudaFaultError,
    DCudaProtocolError,
    DCudaTimeoutError,
    DCudaUsageError,
    DCudaWorkerError,
)

__all__ = [
    "DCudaError",
    "DCudaProtocolError",
    "DCudaUsageError",
    "DCudaTimeoutError",
    "DCudaFaultError",
    "DCudaWorkerError",
    "ERROR_TABLE",
]
