"""dCUDA error types."""

__all__ = ["DCudaError"]


class DCudaError(RuntimeError):
    """Raised for dCUDA protocol/usage errors (bad acks, use after finish)."""
