"""Multi-dimensional storage support (§V, "Multi-Dimensional Storage").

The base API only supports one-dimensional storage, "similar to dynamically
allocated memory in C programs".  These helpers add the put/get variants
the paper suggests: they copy a *rectangular region* of a two-dimensional
array — one transfer per row, with a single notification once the whole
rectangle arrived (so the target waits for one event per rectangle, not one
per row).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...sim import Event
from ..device_api import DRank
from ..window import Window

__all__ = ["put_notify_2d", "get_2d"]


def put_notify_2d(rank: DRank, win: Window, target_rank: int,
                  target_offset: int, target_stride: int,
                  src: np.ndarray, tag: int = 0,
                  notify: bool = True) -> Generator[Event, Any, None]:
    """Write the 2-D array *src* into the target window.

    Row *r* of *src* lands at ``target_offset + r * target_stride``.  Only
    the final row carries the notification, so the receiver can wait for
    the rectangle with ``count=1``.
    """
    src = np.asarray(src)
    if src.ndim != 2:
        raise ValueError(f"put_notify_2d needs a 2-D source, got "
                         f"{src.ndim}-D")
    rows, cols = src.shape
    if target_stride < cols:
        raise ValueError(
            f"target stride {target_stride} smaller than row width {cols}")
    for r in range(rows):
        last = r == rows - 1
        yield from rank.put_notify(
            win, target_rank, target_offset + r * target_stride,
            np.ascontiguousarray(src[r]), tag=tag,
            notify=notify and last)


def get_2d(rank: DRank, win: Window, target_rank: int, target_offset: int,
           target_stride: int, dst: np.ndarray,
           tag: int = 0) -> Generator[Event, Any, None]:
    """Read a rectangular region of the target window into the 2-D *dst*.

    The notification of the final row signals rectangle completion at the
    origin; earlier rows are plain (unnotified) gets.
    """
    dst = np.asarray(dst)
    if dst.ndim != 2:
        raise ValueError(f"get_2d needs a 2-D destination, got {dst.ndim}-D")
    rows, cols = dst.shape
    if target_stride < cols:
        raise ValueError(
            f"target stride {target_stride} smaller than row width {cols}")
    for r in range(rows):
        last = r == rows - 1
        yield from rank.get_notify(
            win, target_rank, target_offset + r * target_stride,
            dst[r], tag=tag, notify=last)
