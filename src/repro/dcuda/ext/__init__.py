"""Extensions the paper proposes in its discussion section (§V):

* :mod:`nonblocking` — nonblocking collectives that run asynchronously and
  notify the participating ranks after completion,
* :mod:`multidim` — multi-dimensional storage: a put variant that copies a
  rectangular region of a two-dimensional array,
* :mod:`notify_all` — shared-memory awareness: transfer data once and
  notify *all* ranks associated with the target memory,
* :mod:`host_ranks` — host ranks that, like device ranks, communicate
  using notified remote memory access.
"""

from .nonblocking import ibarrier, wait_collective
from .multidim import get_2d, put_notify_2d
from .notify_all import put_notify_all
from .host_ranks import HostRank, notify_host

__all__ = ["ibarrier", "wait_collective", "get_2d", "put_notify_2d",
           "put_notify_all", "HostRank", "notify_host"]
