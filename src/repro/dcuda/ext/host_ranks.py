"""Host ranks (§V, "Host Ranks").

"To fully utilize the compute power of host and device, we suggest to
extend our programming model with host ranks that like the device ranks
communicate using notified remote memory access."

A :class:`HostRank` runs on a node's host processor.  It can put into (and
get from) device-rank windows with target notification, and device ranks
can address it symmetrically through its own host window.  Host-side
matching works on a private notification store — no PCIe queue is involved
for notifications *to* the host.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ...runtime.commands import Notification
from ...runtime.system import DCudaRuntime, WindowId
from ...sim import Event, Store
from ..device_api import DRank
from ..notifications import DCUDA_ANY_SOURCE, DCUDA_ANY_TAG
from ..window import Window

__all__ = ["HostRank"]

#: Rank-id space for host ranks: ``HOST_RANK_BASE + node`` — outside the
#: device-rank space so notification sources are unambiguous.
HOST_RANK_BASE = 1 << 20


class HostRank:
    """A host-resident rank communicating via notified RMA.

    Create one per node *after* the runtime started.  Windows it registers
    live in host memory; device ranks target them through :meth:`put` on
    the host-rank side only (full device→host symmetry would need its own
    window table entry — the published runtime never had host ranks, this
    is the suggested extension in its simplest useful form).
    """

    def __init__(self, runtime: DCudaRuntime, node_index: int):
        self.runtime = runtime
        self.env = runtime.env
        self.node = runtime.cluster.node(node_index)
        self.rank_id = HOST_RANK_BASE + node_index
        self._notifications = Store(self.env,
                                    name=f"hostrank{node_index}.notif")
        self._buffers: Dict[WindowId, np.ndarray] = {}

    # -- windows ------------------------------------------------------
    def attach(self, win_id: WindowId, buffer: np.ndarray) -> None:
        """Expose a host buffer under an existing window's global id so
        device ranks can reference symmetric offsets."""
        if buffer.ndim != 1:
            raise ValueError("host window buffers must be 1-D")
        self._buffers[win_id] = buffer

    def buffer(self, win_id: WindowId) -> np.ndarray:
        return self._buffers[win_id]

    # -- RMA ----------------------------------------------------------------
    def put_notify(self, win: Window, target_rank: int, target_offset: int,
                   src: np.ndarray, tag: int = 0
                   ) -> Generator[Event, Any, None]:
        """Put host data into a device rank's window with notification.

        Data crosses the PCIe link by DMA; the notification takes the same
        notification-queue path a block manager uses.
        """
        src = np.asarray(src)
        win.check_target(target_rank, target_offset, src.size)
        snapshot = src.copy()
        system = self.runtime.system_of(target_rank)
        if system.node.index != self.node.index:
            raise ValueError(
                "host ranks address their own node's device; route through "
                "MPI for remote nodes")
        yield from self.node.pcie.dma_copy(float(snapshot.nbytes))
        buf = system.window_buffer(win.global_id, target_rank)
        buf[target_offset:target_offset + snapshot.size] = snapshot
        state = self.runtime.state_of(target_rank)
        local_win = state.win_reverse[win.global_id]
        yield from state.notif_queue.enqueue(
            Notification(win_id=local_win, source=self.rank_id, tag=tag))

    def get(self, win: Window, target_rank: int, target_offset: int,
            count: int) -> Generator[Event, Any, np.ndarray]:
        """Read a device rank's window region into host memory."""
        win.check_target(target_rank, target_offset, count)
        system = self.runtime.system_of(target_rank)
        buf = system.window_buffer(win.global_id, target_rank)
        data = buf[target_offset:target_offset + count].copy()
        yield from self.node.pcie.dma_copy(float(data.nbytes))
        return data

    # -- notifications --------------------------------------------------------
    def notify(self, source_rank: int, tag: int = 0) -> None:
        """Deliver a notification to this host rank (device ranks call
        this through :func:`notify_host` below)."""
        self._notifications.try_put(Notification(win_id=-1,
                                                 source=source_rank,
                                                 tag=tag))

    def wait_notifications(self, source: int = DCUDA_ANY_SOURCE,
                           tag: int = DCUDA_ANY_TAG,
                           count: int = 1) -> Generator[Event, Any, None]:
        """Block until *count* matching notifications arrived."""
        matched = 0
        while matched < count:
            yield self._notifications.get(
                lambda n: ((source == DCUDA_ANY_SOURCE or n.source == source)
                           and (tag == DCUDA_ANY_TAG or n.tag == tag)))
            matched += 1


def notify_host(rank: DRank, host: HostRank,
                tag: int = 0) -> Generator[Event, Any, None]:
    """Device-side: signal a host rank (one PCIe transaction)."""
    yield from rank.node.pcie.mapped_post()
    yield rank.node.pcie.write_visibility_delay
    host.notify(rank.world_rank, tag)
