"""Shared-memory aware puts (§V, "Shared Memory").

With hundreds of ranks per shared-memory domain, broadcasting data to every
rank of a device wastes bandwidth: the data only needs to move **once**.
``put_notify_all`` transfers once and then notifies *all* ranks associated
with the target memory — the variant the paper proposes.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

import numpy as np

from ...sim import Event
from ..device_api import DRank
from ..errors import DCudaError
from ..window import Window

__all__ = ["put_notify_all"]


def put_notify_all(rank: DRank, win: Window, target_ranks: Sequence[int],
                   target_offset: int, src: np.ndarray,
                   tag: int = 0) -> Generator[Event, Any, None]:
    """Put *src* once and notify every rank in *target_ranks*.

    All targets must live on the same device (they share the destination
    memory); the data transfer happens exactly once — to the first target —
    and the remaining targets receive pure notifications.
    """
    targets = list(target_ranks)
    if not targets:
        raise ValueError("put_notify_all needs at least one target")
    devices = {rank.runtime.placement.device_of(t) for t in targets}
    if len(devices) != 1:
        raise DCudaError(
            f"put_notify_all targets must share one device, got devices "
            f"{sorted(devices)}")
    if not rank._is_shared(targets[0]):
        raise DCudaError(
            "put_notify_all is a shared-memory optimization: the targets "
            f"must be on the caller's device (rank {rank.world_rank} is on "
            f"device {(rank.node.index, rank.gpu_index)}, targets on "
            f"{devices.pop()})")
    # One data transfer, with the first target's notification.
    yield from rank.put_notify(win, targets[0], target_offset, src, tag=tag)
    # The data is already in the shared target memory: the remaining ranks
    # get zero-copy notified puts (source view = destination view).
    system = rank.runtime.system_of(targets[0])
    dst_buf = system.window_buffer(win.global_id, targets[0])
    dst_view = dst_buf[target_offset:target_offset + src.size]
    for target in targets[1:]:
        yield from rank.put_notify(win, target, target_offset, dst_view,
                                   tag=tag)
