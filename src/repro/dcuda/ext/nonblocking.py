"""Nonblocking collectives (§V, "Collectives").

``ibarrier`` starts a barrier that completes asynchronously in the
background; participating ranks continue computing and later consume the
completion *notification* — the paper's suggested design of collectives
"that run asynchronously in the background and notify the participating
ranks after completion".
"""

from __future__ import annotations

from typing import Any, Generator

from ...runtime.commands import COLLECTIVE_WIN, NonblockingBarrierCommand
from ...sim import Event
from ..device_api import DCUDA_COMM_WORLD, DRank
from ..notifications import DCUDA_ANY_SOURCE

__all__ = ["ibarrier", "wait_collective"]


def ibarrier(rank: DRank, comm: str = DCUDA_COMM_WORLD,
             tag: int = 0) -> Generator[Event, Any, None]:
    """Start a nonblocking barrier; returns after command submission.

    Completion is signalled by a notification with the pseudo window id
    ``COLLECTIVE_WIN`` and *tag*; consume it with :func:`wait_collective`
    (or test for it like any other notification).
    """
    comm_name = rank._comm_name(comm)
    yield from rank._assemble()
    yield from rank.state.cmd_queue.enqueue(NonblockingBarrierCommand(
        origin_rank=rank.world_rank, comm_name=comm_name, tag=tag))


def wait_collective(rank: DRank, tag: int = 0,
                    count: int = 1) -> Generator[Event, Any, None]:
    """Block until *count* collective-completion notifications with *tag*
    arrived (the completion side of :func:`ibarrier`)."""
    yield from rank.matcher.wait(COLLECTIVE_WIN, DCUDA_ANY_SOURCE, tag,
                                 count, detail=f"ibarrier:{tag}")
