"""The dCUDA device-side programming interface.

A dCUDA kernel is a Python generator taking one :class:`DRank` — the
equivalent of the per-block view of the paper's single persistent CUDA
kernel.  All communication methods are generators and must be invoked with
``yield from``; everything else is plain Python.  The surface mirrors the
paper's API:

====================================  =====================================
paper (§II-C)                         here
====================================  =====================================
``dcuda_comm_size/rank``              :meth:`DRank.comm_size` / ``comm_rank``
``dcuda_win_create/free``             :meth:`DRank.win_create` / ``win_free``
``dcuda_put_notify``/``get_notify``   :meth:`DRank.put_notify` / ``get_notify``
``dcuda_put``/``get`` (unnotified)    ``notify=False``
``dcuda_wait/test_notifications``     :meth:`DRank.wait_notifications` /
                                      ``test_notifications``
window ``flush``                      :meth:`DRank.flush`
``barrier`` collective                :meth:`DRank.barrier`
``DCUDA_ANY_SOURCE`` etc.             module constants
====================================  =====================================

Compute phases are expressed through :meth:`DRank.compute`, which executes
real numpy work immediately and charges the calibrated device time for it —
the simulation equivalent of the kernel's arithmetic between communication
calls.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

import numpy as np

from ..hw.gpu import Block, Device
from ..runtime.commands import (
    BarrierCommand,
    FinishCommand,
    LogCommand,
    WinCreateCommand,
    WinFreeCommand,
)
from ..runtime.system import DCudaRuntime
from ..sim import AnyOf, Event
from .errors import DCudaProtocolError, DCudaTimeoutError, DCudaUsageError
from .notifications import (
    DCUDA_ANY_SOURCE,
    DCUDA_ANY_TAG,
    DCUDA_ANY_WINDOW,
    NotificationMatcher,
)
from .window import Window, same_memory

__all__ = ["DRank", "DCUDA_COMM_WORLD", "DCUDA_COMM_DEVICE",
           "DCUDA_ANY_SOURCE", "DCUDA_ANY_TAG", "DCUDA_ANY_WINDOW"]

DCUDA_COMM_WORLD = "world"
DCUDA_COMM_DEVICE = "device"


class DRank:
    """One rank's device-side library instance (the context object).

    Args:
        runtime: The started :class:`~repro.runtime.system.DCudaRuntime`
            this rank belongs to.
        world_rank: The rank's id in the world communicator.

    Raises:
        ValueError: ``world_rank`` is out of range for the runtime
            (via ``runtime.check_rank``).
    """

    def __init__(self, runtime: DCudaRuntime, world_rank: int):
        runtime.check_rank(world_rank)
        self.runtime = runtime
        self.world_rank = world_rank
        self.env = runtime.env
        self.system = runtime.system_of(world_rank)
        self.node = self.system.node
        #: Local GPU ordinal hosting this rank (placement-resolved).
        self.gpu_index = runtime.gpu_of_rank(world_rank)
        self.device: Device = self.node.gpu(self.gpu_index)
        self.state = runtime.state_of(world_rank)
        self.block: Block = self.state.block
        self.cfg = runtime.cfg
        self.matcher = NotificationMatcher(self.state, self.device,
                                           self.block, self.cfg.devicelib)
        # Communicator membership is fixed for the life of the rank.
        self._participants_cache: Dict[str, Tuple[int, ...]] = {}
        self._finished = False

    # ------------------------------------------------------------- identity --
    def _comm_name(self, comm: str) -> str:
        if comm == DCUDA_COMM_WORLD:
            return "world"
        if comm == DCUDA_COMM_DEVICE:
            return self.runtime.device_comm_name(self.node.index,
                                                 self.gpu_index)
        raise ValueError(f"unknown communicator {comm!r}")

    def comm_size(self, comm: str = DCUDA_COMM_WORLD) -> int:
        """Number of ranks in *comm* (dcuda_comm_size, paper §II-C).

        Args:
            comm: ``DCUDA_COMM_WORLD`` or ``DCUDA_COMM_DEVICE``.

        Returns:
            The communicator's rank count.

        Raises:
            ValueError: *comm* is not a known communicator.
        """
        self._comm_name(comm)
        if comm == DCUDA_COMM_WORLD:
            return self.runtime.total_ranks
        return len(self.runtime.placement.ranks_on_device(
            self.node.index, self.gpu_index))

    def comm_rank(self, comm: str = DCUDA_COMM_WORLD) -> int:
        """This rank's id within *comm* (dcuda_comm_rank, paper §II-C).

        Args:
            comm: ``DCUDA_COMM_WORLD`` or ``DCUDA_COMM_DEVICE``.

        Returns:
            The calling rank's id in that communicator.

        Raises:
            ValueError: *comm* is not a known communicator.
        """
        self._comm_name(comm)
        if comm == DCUDA_COMM_WORLD:
            return self.world_rank
        return self.state.device_rank

    def comm_participants(self, comm: str) -> Tuple[int, ...]:
        """World ranks belonging to *comm*.

        Args:
            comm: ``DCUDA_COMM_WORLD`` or ``DCUDA_COMM_DEVICE``.

        Returns:
            The member world ranks, ascending.

        Raises:
            ValueError: *comm* is not a known communicator.
        """
        cached = self._participants_cache.get(comm)
        if cached is not None:
            return cached
        self._comm_name(comm)
        if comm == DCUDA_COMM_WORLD:
            result = tuple(range(self.runtime.total_ranks))
        else:
            result = self.runtime.placement.ranks_on_device(
                self.node.index, self.gpu_index)
        self._participants_cache[comm] = result
        return result

    @property
    def now(self) -> float:
        """Current simulated time (device-side clock)."""
        return self.env._now

    # ------------------------------------------------------------- windows --
    def win_create(self, buffer: np.ndarray,
                   comm: str = DCUDA_COMM_WORLD
                   ) -> Generator[Event, Any, Window]:
        """Collectively create a window over *buffer* (dcuda_win_create,
        paper §II-C).

        Every rank of *comm* must call with its own (possibly overlapping)
        local memory range; sizes may differ per rank.

        Args:
            buffer: 1-D numpy view the window exposes for remote access.
            comm: Communicator the window spans.

        Returns:
            The created :class:`~repro.dcuda.window.Window`.

        Raises:
            ValueError: *buffer* is not 1-D, or *comm* is unknown.
            DCudaUsageError: called after :meth:`finish`.
            DCudaProtocolError: the runtime acknowledged with the wrong
                ack kind (runtime bug).
            DCudaTimeoutError: the ack handshake exceeded the configured
                timeout (fault plane attached only).
        """
        buffer = np.asarray(buffer)
        if buffer.ndim != 1:
            raise ValueError(f"window buffers must be 1-D views, got "
                             f"{buffer.ndim}-D")
        if self._finished:
            raise DCudaUsageError(f"rank {self.world_rank} already finished")
        comm_name = self._comm_name(comm)
        local_id = self.state.allocate_local_win()
        yield from self._assemble()
        yield from self.state.cmd_queue.enqueue(WinCreateCommand(
            origin_rank=self.world_rank, local_win_id=local_id,
            comm_name=comm_name, buffer=buffer,
            participants=self.comm_participants(comm)))
        ack = yield from self._await_ack("win_create")
        return Window(local_id=local_id, global_id=ack.value,
                      comm_name=comm_name, owner_rank=self.world_rank,
                      buffer=buffer,
                      participants=self.comm_participants(comm))

    def win_free(self, win: Window) -> Generator[Event, Any, None]:
        """Collectively free *win* (dcuda_win_free, paper §II-C).

        Args:
            win: The window to free; every participant must call.

        Raises:
            DCudaProtocolError: the runtime acknowledged with the wrong
                ack kind (runtime bug).
            DCudaTimeoutError: the ack handshake exceeded the configured
                timeout (fault plane attached only).
        """
        yield from self._assemble()
        yield from self.state.cmd_queue.enqueue(WinFreeCommand(
            origin_rank=self.world_rank, global_win_id=win.global_id))
        yield from self._await_ack("win_free")

    # ------------------------------------------------------------------ RMA --
    def put_notify(self, win: Window, target_rank: int, target_offset: int,
                   src: np.ndarray, tag: int = 0,
                   notify: bool = True) -> Generator[Event, Any, None]:
        """Notified put: write *src* into the target's window region and,
        once complete, enqueue a notification at the target
        (dcuda_put_notify, paper §II-C).  Returns immediately after command
        submission — completion is tracked by ``flush`` and the target's
        notification.

        Args:
            win: Target window.
            target_rank: World rank whose window region is written.
            target_offset: Element offset into the target's region.
            src: Source array; snapshotted at issue time for remote puts.
            tag: Notification tag matched by the target's waits.
            notify: Deliver a notification at the target on completion.

        Raises:
            ValueError: the access falls outside the target's region
                (via ``win.check_target``).
            IndexError: a shared-memory put overruns the target buffer.
            TypeError: a shared-memory put with mismatched dtype.
            DCudaTimeoutError: the command-queue handshake exhausted its
                retry budget (fault plane attached only).
        """
        src = np.asarray(src)
        win.check_target(target_rank, target_offset, src.size)
        flush_id = self._issue_flush_id(win)
        # Returns the backend generator directly (callers ``yield from``
        # it): the validation above is synchronous, so skipping this
        # wrapper frame removes one delegation hop from every resume of
        # the hottest RMA path without moving a single yield.
        return self.runtime.comm.put(self, win, target_rank, target_offset,
                                     src, tag, flush_id, notify)

    def put(self, win: Window, target_rank: int, target_offset: int,
            src: np.ndarray, tag: int = 0) -> Generator[Event, Any, None]:
        """Unnotified put (dcuda_put, paper §II-C); complete with ``flush``.

        Args:
            win: Target window.
            target_rank: World rank whose window region is written.
            target_offset: Element offset into the target's region.
            src: Source array.
            tag: Kept for symmetry with :meth:`put_notify`; unused.

        Raises:
            ValueError: the access falls outside the target's region.
            IndexError: a shared-memory put overruns the target buffer.
            TypeError: a shared-memory put with mismatched dtype.
        """
        return self.put_notify(win, target_rank, target_offset, src,
                               tag, notify=False)

    def get_notify(self, win: Window, target_rank: int, target_offset: int,
                   dst: np.ndarray, tag: int = 0,
                   notify: bool = True) -> Generator[Event, Any, None]:
        """Notified get: fetch the target's window region into *dst*
        (dcuda_get_notify, paper §II-C).  The notification is delivered to
        *this* rank's queue with the target as its source, so the caller
        can wait for its own gets.

        Args:
            win: Source window.
            target_rank: World rank whose window region is read.
            target_offset: Element offset into the target's region.
            dst: Writeable destination array.
            tag: Notification tag for the self-notification.
            notify: Deliver the self-notification on completion.

        Raises:
            ValueError: *dst* is read-only, or the access falls outside
                the target's region.
            IndexError: a shared-memory get overruns the source buffer.
            DCudaTimeoutError: the command-queue handshake exhausted its
                retry budget (fault plane attached only).
        """
        dst = np.asarray(dst)
        if not dst.flags.writeable:
            raise ValueError("get destination must be writeable")
        win.check_target(target_rank, target_offset, dst.size)
        flush_id = self._issue_flush_id(win)
        return self.runtime.comm.get(self, win, target_rank, target_offset,
                                     dst, tag, flush_id, notify)

    def get(self, win: Window, target_rank: int, target_offset: int,
            dst: np.ndarray, tag: int = 0) -> Generator[Event, Any, None]:
        """Unnotified get (dcuda_get, paper §II-C); complete with ``flush``.

        Args:
            win: Source window.
            target_rank: World rank whose window region is read.
            target_offset: Element offset into the target's region.
            dst: Writeable destination array.
            tag: Kept for symmetry with :meth:`get_notify`; unused.

        Raises:
            ValueError: *dst* is read-only or the access is out of range.
            IndexError: a shared-memory get overruns the source buffer.
        """
        return self.get_notify(win, target_rank, target_offset, dst,
                               tag, notify=False)

    # -------------------------------------------------------- notifications --
    def wait_notifications(self, win: Optional[Window] = None,
                           source: int = DCUDA_ANY_SOURCE,
                           tag: int = DCUDA_ANY_TAG,
                           count: int = 1) -> Generator[Event, Any, None]:
        """Block until *count* matching notifications arrived and were
        consumed (dcuda_wait_notifications, paper §II-C/§III-C).

        Args:
            win: Window filter, or ``None`` for ``DCUDA_ANY_WINDOW``.
            source: Source-rank filter, or ``DCUDA_ANY_SOURCE``.
            tag: Tag filter, or ``DCUDA_ANY_TAG``.
            count: Notifications to consume before returning.

        Raises:
            ValueError: *count* is negative.
            DCudaTimeoutError: a fault plane is attached and the wait
                exceeded its ``handshake_timeout``.
        """
        win_id = DCUDA_ANY_WINDOW if win is None else win.local_id
        return self.matcher.wait(win_id, source, tag, count,
                                 detail=f"tag={tag}")

    def test_notifications(self, win: Optional[Window] = None,
                           source: int = DCUDA_ANY_SOURCE,
                           tag: int = DCUDA_ANY_TAG,
                           count: int = 1) -> Generator[Event, Any, int]:
        """Consume up to *count* matching notifications without blocking
        (dcuda_test_notifications, paper §II-C).

        Args:
            win: Window filter, or ``None`` for ``DCUDA_ANY_WINDOW``.
            source: Source-rank filter, or ``DCUDA_ANY_SOURCE``.
            tag: Tag filter, or ``DCUDA_ANY_TAG``.
            count: Maximum notifications to consume.

        Returns:
            How many notifications matched and were consumed.

        Raises:
            ValueError: *count* is negative.
        """
        win_id = DCUDA_ANY_WINDOW if win is None else win.local_id
        return self.matcher.test(win_id, source, tag, count)

    # ------------------------------------------------------------- ordering --
    def flush(self, win: Optional[Window] = None
              ) -> Generator[Event, Any, None]:
        """Wait until pending RMA operations completed at the origin —
        all of this rank's operations, or only *win*'s when given
        (window ``flush``, paper §II-C).

        Args:
            win: Restrict the wait to this window's last operation; all of
                the rank's operations when ``None``.

        Raises:
            DCudaTimeoutError: a fault plane is attached and the flush
                counter did not reach the target within its
                ``handshake_timeout``.
        """
        target = (self.state.next_flush_id - 1 if win is None
                  else win._last_flush_id)
        faults = getattr(self.node, "faults", None)
        if faults is None:
            while self.state.flush_counter < target:
                yield self.state.flush_signal.wait()
            return
        deadline = self.env._now + faults.cfg.handshake_timeout
        while self.state.flush_counter < target:
            remaining = deadline - self.env._now
            advanced = self.state.flush_signal.wait()
            if remaining <= 0:
                raise DCudaTimeoutError(
                    f"flush: counter stuck at {self.state.flush_counter} "
                    f"of {target}", rank=self.world_rank,
                    sim_time=self.env._now)
            timer = self.env.timeout(remaining)
            which = yield AnyOf(self.env, [advanced, timer])
            if which[0] == 0 or advanced.triggered:
                timer.abandoned = True
            if which[0] == 1 and not advanced.triggered \
                    and self.state.flush_counter < target:
                advanced.abandoned = True
                raise DCudaTimeoutError(
                    f"flush: counter stuck at {self.state.flush_counter} "
                    f"of {target}", rank=self.world_rank,
                    sim_time=self.env._now)

    def barrier(self, comm: str = DCUDA_COMM_WORLD
                ) -> Generator[Event, Any, None]:
        """Barrier over all ranks of *comm*, looped through the host
        (paper §II-C; the flat-tree host barrier of §III-B).

        Args:
            comm: Communicator to synchronize.

        Raises:
            ValueError: *comm* is not a known communicator.
            DCudaProtocolError: the runtime acknowledged with the wrong
                ack kind (runtime bug).
            DCudaTimeoutError: the ack handshake exceeded the configured
                timeout (fault plane attached only).
        """
        comm_name = self._comm_name(comm)
        t0 = self.env._now
        yield from self._assemble()
        yield from self.state.cmd_queue.enqueue(BarrierCommand(
            origin_rank=self.world_rank, comm_name=comm_name))
        yield from self._await_ack("barrier")
        self.device.tracer.record(self.block.name, "wait", t0, self.env._now,
                                  f"barrier:{comm_name}")

    # -------------------------------------------------------------- compute --
    def compute(self, flops: float = 0.0, mem_bytes: float = 0.0,
                fn: Optional[Callable[[], Any]] = None,
                detail: str = "") -> Generator[Event, Any, Any]:
        """One compute phase: run *fn* (real numpy work) immediately and
        charge the device cost model for it.

        Args:
            flops: Floating-point operations to charge.
            mem_bytes: Device-memory traffic to charge.
            fn: Optional callable doing the real numerics; executed before
                the simulated time is charged.
            detail: Trace annotation.

        Returns:
            Whatever *fn* returned (``None`` without one).

        Raises:
            ValueError: *flops* or *mem_bytes* is negative.
        """
        result = fn() if fn is not None else None
        gen = self.device.compute(self.block, flops=flops,
                                  mem_bytes=mem_bytes, detail=detail)
        if result is None:
            # The charged phase returns None anyway, so hand the device
            # generator straight to the caller's ``yield from`` — one
            # frame less on every resume of a compute phase.
            return gen
        return self._compute_wrap(gen, result)

    @staticmethod
    def _compute_wrap(gen, result):
        """Delegate the device charge, then return *fn*'s result."""
        yield from gen
        return result

    def log(self, message: str) -> Generator[Event, Any, None]:
        """Print through the logging queue (§III-C: device-side logging
        loops through the host, which collects the records).

        Args:
            message: Text to record; coerced to ``str``.

        Returns:
            Nothing; the record lands in ``LaunchResult.log_records``.
        """
        yield from self.state.log_queue.enqueue(LogCommand(
            origin_rank=self.world_rank, message=str(message)))

    def finish(self) -> Generator[Event, Any, None]:
        """Collective teardown (dcuda_finish, paper §II-C): global barrier
        plus shutdown of this rank's block manager.

        Raises:
            DCudaUsageError: the rank already finished.
            DCudaProtocolError: the runtime acknowledged with the wrong
                ack kind (runtime bug).
            DCudaTimeoutError: the ack handshake exceeded the configured
                timeout (fault plane attached only).
        """
        if self._finished:
            raise DCudaUsageError(f"rank {self.world_rank} already finished")
        yield from self._assemble()
        yield from self.state.cmd_queue.enqueue(FinishCommand(
            origin_rank=self.world_rank))
        yield from self._await_ack("finish")
        self._finished = True

    # ------------------------------------------------------------ internals --
    def _await_ack(self, kind: str) -> Generator[Event, Any, Any]:
        """Dequeue the next ack and validate its kind.

        With a fault plane attached the wait is bounded by the plane's
        ``handshake_timeout`` (the queue raises ``DCudaTimeoutError``);
        without one it blocks indefinitely, as the paper's runtime does.

        Raises:
            DCudaProtocolError: the ack kind does not match *kind*.
            DCudaTimeoutError: bounded wait expired (fault plane only).
        """
        faults = getattr(self.node, "faults", None)
        if faults is not None:
            ack = yield from self.state.ack_queue.dequeue_timeout(
                faults.cfg.handshake_timeout, rank=self.world_rank,
                what=f"{kind} ack")
        else:
            queue = self.state.ack_queue
            if queue._entries._items:   # occupancy fast path
                ack = queue.try_dequeue()
            else:
                # Poll elision: the device reads the ack slot the moment
                # the host's posted write lands (delay 0 — acks were
                # observed at commit time by the blocking dequeue too).
                ack, _ = yield queue.park_consume(0.0)
        if ack.kind != kind:  # pragma: no cover - protocol guard
            raise DCudaProtocolError(
                f"expected {kind} ack, got {ack.kind}",
                rank=self.world_rank, sim_time=self.env._now)
        return ack

    def _assemble(self) -> Generator[Event, Any, None]:
        """Charge the device-side command assembly on the issue unit."""
        return self.device.issue_use(
            self.block, self.cfg.devicelib.command_assembly, kind="comm",
            detail="assemble")

    def _issue_flush_id(self, win: Window) -> int:
        fid = self.state.allocate_flush_id()
        win._last_flush_id = fid
        return fid

    def _is_shared(self, target_rank: int) -> bool:
        """Shared-memory rank = resident on the same *GPU* (§II-B).

        A rank on a different GPU of the same node is distributed memory:
        its puts ride the runtime's isend path, which the fabric resolves
        to the node's intra-node (NVLink-class) link.
        """
        return (self.runtime.placement.device_of(target_rank)
                == (self.node.index, self.gpu_index))

    def _shared_copy_put(self, win: Window, target_rank: int,
                         target_offset: int, src: np.ndarray):
        """Shared-memory put data movement: the device moves the data
        itself (§III-B); how the notification travels afterwards is the
        communication backend's business."""
        dst_buf = self.system.window_buffer(win.global_id, target_rank)
        if target_offset + src.size > dst_buf.size:
            raise IndexError(
                f"put [{target_offset}:{target_offset + src.size}] out of "
                f"bounds for window {win.global_id} of rank {target_rank}")
        # Zero-copy aliasing test against the cached buffer layout: the
        # slice ``dst_buf[target_offset:...]`` has base ``base + off*stride``
        # and strides ``(stride,)``, so this is ``same_memory(src, view)``
        # without constructing the view (or its ctypes pointer).
        base, stride, itemsize = self.system.window_layout(
            win.global_id, target_rank)
        if stride:
            aliased = (src.itemsize == itemsize
                       and src.strides == (stride,)
                       and src.ctypes.data == base + target_offset * stride)
        else:
            aliased = same_memory(
                src, dst_buf[target_offset:target_offset + src.size])
        if not aliased:
            if src.dtype != dst_buf.dtype:
                raise TypeError(
                    f"put dtype {src.dtype} does not match window "
                    f"{win.global_id} dtype {dst_buf.dtype}")
            # Data transfer by this block's threads; no-copy when source
            # and target addresses are identical (overlapping windows).
            yield from self.device.copy(self.block, float(src.nbytes),
                                        detail="shared-put")
            dst_buf[target_offset:target_offset + src.size] = src

    def _shared_copy_get(self, win: Window, target_rank: int,
                         target_offset: int, dst: np.ndarray):
        """Shared-memory get data movement: device-side copy."""
        src_buf = self.system.window_buffer(win.global_id, target_rank)
        if target_offset + dst.size > src_buf.size:
            raise IndexError(
                f"get [{target_offset}:{target_offset + dst.size}] out of "
                f"bounds for window {win.global_id} of rank {target_rank}")
        base, stride, itemsize = self.system.window_layout(
            win.global_id, target_rank)
        if stride:
            aliased = (dst.itemsize == itemsize
                       and dst.strides == (stride,)
                       and dst.ctypes.data == base + target_offset * stride)
        else:
            aliased = same_memory(
                dst, src_buf[target_offset:target_offset + dst.size])
        if not aliased:
            yield from self.device.copy(self.block, float(dst.nbytes),
                                        detail="shared-get")
            dst[:] = src_buf[target_offset:target_offset + dst.size]
