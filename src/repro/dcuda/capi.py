"""The paper's C calling convention (Fig. 2), as thin function wrappers.

Kernels written against the original dCUDA API translate almost line by
line; every function takes the context (here: the :class:`DRank`) first and
follows the paper's parameter order::

    dcuda_comm_size(ctx, DCUDA_COMM_WORLD, &size)
        -> size = dcuda_comm_size(ctx, DCUDA_COMM_WORLD)
    dcuda_win_create(ctx, DCUDA_COMM_WORLD, &in[0], len, &win)
        -> win = yield from dcuda_win_create(ctx, DCUDA_COMM_WORLD, buf)
    dcuda_put_notify(ctx, wout, rank - 1, off, count, &out[j], tag)
        -> yield from dcuda_put_notify(ctx, wout, rank - 1, off, src, tag)
    dcuda_wait_notifications(ctx, wout, DCUDA_ANY_SOURCE, tag, n)
        -> yield from dcuda_wait_notifications(ctx, wout, src, tag, n)

The count parameter is implied by the numpy view's length, and output
parameters become return values — the only concessions to Python.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..sim import Event
from .device_api import (
    DCUDA_ANY_SOURCE,
    DCUDA_ANY_TAG,
    DCUDA_COMM_DEVICE,
    DCUDA_COMM_WORLD,
    DRank,
)
from .window import Window

__all__ = [
    "DCUDA_ANY_SOURCE", "DCUDA_ANY_TAG", "DCUDA_COMM_DEVICE",
    "DCUDA_COMM_WORLD",
    "dcuda_comm_size", "dcuda_comm_rank",
    "dcuda_win_create", "dcuda_win_free", "dcuda_win_flush",
    "dcuda_put", "dcuda_put_notify", "dcuda_get", "dcuda_get_notify",
    "dcuda_wait_notifications", "dcuda_test_notifications",
    "dcuda_barrier", "dcuda_finish",
]


def dcuda_comm_size(ctx: DRank, comm: str = DCUDA_COMM_WORLD) -> int:
    return ctx.comm_size(comm)


def dcuda_comm_rank(ctx: DRank, comm: str = DCUDA_COMM_WORLD) -> int:
    return ctx.comm_rank(comm)


def dcuda_win_create(ctx: DRank, comm: str, buffer: np.ndarray
                     ) -> Generator[Event, Any, Window]:
    win = yield from ctx.win_create(buffer, comm)
    return win


def dcuda_win_free(ctx: DRank, win: Window) -> Generator[Event, Any, None]:
    yield from ctx.win_free(win)


def dcuda_win_flush(ctx: DRank, win: Window) -> Generator[Event, Any, None]:
    yield from ctx.flush(win)


def dcuda_put_notify(ctx: DRank, win: Window, target_rank: int,
                     target_offset: int, src: np.ndarray,
                     tag: int = 0) -> Generator[Event, Any, None]:
    yield from ctx.put_notify(win, target_rank, target_offset, src, tag)


def dcuda_put(ctx: DRank, win: Window, target_rank: int,
              target_offset: int,
              src: np.ndarray) -> Generator[Event, Any, None]:
    yield from ctx.put(win, target_rank, target_offset, src)


def dcuda_get_notify(ctx: DRank, win: Window, target_rank: int,
                     target_offset: int, dst: np.ndarray,
                     tag: int = 0) -> Generator[Event, Any, None]:
    yield from ctx.get_notify(win, target_rank, target_offset, dst, tag)


def dcuda_get(ctx: DRank, win: Window, target_rank: int,
              target_offset: int,
              dst: np.ndarray) -> Generator[Event, Any, None]:
    yield from ctx.get(win, target_rank, target_offset, dst)


def dcuda_wait_notifications(ctx: DRank, win: Window,
                             source: int = DCUDA_ANY_SOURCE,
                             tag: int = DCUDA_ANY_TAG,
                             count: int = 1
                             ) -> Generator[Event, Any, None]:
    yield from ctx.wait_notifications(win, source, tag, count)


def dcuda_test_notifications(ctx: DRank, win: Window,
                             source: int = DCUDA_ANY_SOURCE,
                             tag: int = DCUDA_ANY_TAG,
                             count: int = 1
                             ) -> Generator[Event, Any, int]:
    matched = yield from ctx.test_notifications(win, source, tag, count)
    return matched


def dcuda_barrier(ctx: DRank, comm: str = DCUDA_COMM_WORLD
                  ) -> Generator[Event, Any, None]:
    yield from ctx.barrier(comm)


def dcuda_finish(ctx: DRank) -> Generator[Event, Any, None]:
    yield from ctx.finish()
