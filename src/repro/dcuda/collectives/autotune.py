"""Topology-aware collective algorithm selection.

The autotuner answers one question per collective call: *which algorithm
family — ring, tree, or hierarchical — minimizes predicted latency for
this (topology, group, message size)?*  It does so from an alpha-beta
(LogGP-flavoured) cost model calibrated from the machine config, scaled
by a **congestion factor** measured from the live fabric:
``Fabric.link_stats()`` reports per-edge byte totals on routed
interconnects, and the ratio of the hottest edge to the mean edge is how
much worse than full bisection the fabric currently behaves.

The model (per rank, ``n`` message bytes, ``p`` group ranks spread over
``L`` nodes with at most ``m`` ranks each; ``o`` fixed per-message
software overhead, ``a``/``b`` latency / inverse-bandwidth, ``c``
congestion)::

    tree:  2*levels(p) rounds, full vector each:
           2*levels(p) * (o + a + n*b*c)
    ring:  2*(p-1) rounds, one chunk each (bandwidth-optimal):
           2*(p-1) * (o + a) + 2*n*b*c*(p-1)/p
    hier:  intra reduce + leader ring + intra broadcast:
           (levels(m) + 1) * (o + a_intra + n*b_intra)
           + 2*(L-1) * (o + a) + 2*n*b*c*(L-1)/L

so tree wins small messages (fewest ``o`` terms), ring wins large
messages on flat single-GPU-per-node fabrics (lowest inter-node byte
volume), and hierarchical wins large messages on dense multi-GPU nodes
where the intra-node path dwarfs the congested fabric.  The choice can
always be pinned with ``override=...`` (or per call via
``algorithm=...`` on the collective itself).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ...platform.topology import DEFAULT_INTRA_LINK
from ..errors import DCudaError
from .core import tree_levels

__all__ = [
    "LinkProfile",
    "CollectiveChoice",
    "CollectiveAutotuner",
    "congestion_factor",
]

#: Fixed per-message software overhead [s]: host proxy poll + command
#: assembly + injection, the simulator's end-to-end small-message floor.
DEFAULT_OVERHEAD = 4.0e-6


def congestion_factor(link_stats: Mapping[str, Mapping[str, float]],
                      topology=None) -> float:
    """Hot-spot factor of the fabric: hottest edge over mean edge.

    ``1.0`` means traffic is spread evenly (full bisection behaviour);
    ``2.0`` means the hottest link carries twice the mean and large
    transfers serialize behind it.  Falls back to the topology's
    declared fat-tree oversubscription when no traffic has been measured
    yet (empty or all-zero *link_stats* — flat interconnects report no
    per-edge stats at all).

    Args:
        link_stats: :meth:`repro.net.fabric.Fabric.link_stats` output —
            ``{edge_name: {"bytes": ..., "active_flows": ...}}``.
        topology: Optional :class:`~repro.platform.topology.Topology`
            used for the static fallback.

    Returns:
        The congestion multiplier applied to inter-node transfer terms,
        always ``>= 1.0``.
    """
    loads = [float(entry.get("bytes", 0.0))
             for entry in link_stats.values()
             if entry.get("bytes", 0.0) > 0]
    if loads:
        return max(max(loads) * len(loads) / sum(loads), 1.0)
    if topology is not None and topology.interconnect.kind == "fat_tree":
        return max(float(topology.interconnect.oversubscription), 1.0)
    return 1.0


@dataclass(frozen=True)
class LinkProfile:
    """Calibrated alpha-beta parameters of one machine.

    Attributes:
        alpha_inter: Inter-node per-message latency [s].
        beta_inter: Inter-node inverse bandwidth [s/B].
        alpha_intra: Intra-node (NVLink-class or same-GPU) latency [s].
        beta_intra: Intra-node inverse bandwidth [s/B].
        overhead: Fixed per-message software overhead [s] — proxy poll,
            command assembly, injection.
        congestion: Fabric hot-spot multiplier
            (:func:`congestion_factor`), applied to inter-node terms.
    """

    alpha_inter: float = 1.21e-6
    beta_inter: float = 1.0 / 6.0e9
    alpha_intra: float = 0.8e-6
    beta_intra: float = 1.0 / 8.92e9
    overhead: float = DEFAULT_OVERHEAD
    congestion: float = 1.0

    @classmethod
    def from_config(cls, cfg, link_stats: Optional[Mapping] = None
                    ) -> "LinkProfile":
        """Calibrate from a :class:`~repro.hw.config.MachineConfig`.

        Inter-node terms come from the interconnect link spec (falling
        back to the flat :class:`~repro.hw.config.FabricConfig`); intra
        terms from the densest node class's ``intra_link`` when any node
        carries multiple GPUs, else from the same-GPU copy path
        (``block_mem_bandwidth``).

        Args:
            cfg: The machine description.
            link_stats: Optional live fabric stats for the congestion
                factor; ``None`` uses the static topology fallback.

        Returns:
            The calibrated profile.
        """
        fabric = cfg.fabric
        topo = cfg.topology
        link = topo.interconnect.link if topo is not None else None
        alpha_inter = (link.latency if link is not None
                       else fabric.latency) + fabric.injection_overhead
        beta_inter = 1.0 / (link.bandwidth if link is not None
                            else fabric.bandwidth)
        dense = (topo is not None
                 and any(nc.gpus_per_node > 1 for nc in topo.node_classes))
        if dense:
            intra = max((nc.intra_link or DEFAULT_INTRA_LINK
                         for nc in topo.node_classes
                         if nc.gpus_per_node > 1),
                        key=lambda spec: spec.bandwidth)
            alpha_intra, beta_intra = intra.latency, 1.0 / intra.bandwidth
        else:
            alpha_intra = cfg.gpu.mem_latency
            beta_intra = 1.0 / cfg.gpu.block_mem_bandwidth
        overhead = (cfg.host.poll_latency + cfg.devicelib.command_assembly
                    + fabric.injection_overhead)
        return cls(alpha_inter=alpha_inter, beta_inter=beta_inter,
                   alpha_intra=alpha_intra, beta_intra=beta_intra,
                   overhead=overhead,
                   congestion=congestion_factor(link_stats or {}, topo))


@dataclass(frozen=True)
class CollectiveChoice:
    """One autotuner decision, with its full cost breakdown.

    Attributes:
        op: Collective name (``allreduce`` / ``reduce_scatter`` /
            ``all_gather``).
        algorithm: The selected family.
        message_bytes: Message size the decision was made for.
        group_size: Participating ranks.
        nodes: Nodes spanned by the group.
        costs: Predicted seconds per family (``inf`` marks a family not
            applicable to this group shape).
        pinned: ``True`` when an explicit override forced the choice.
    """

    op: str
    algorithm: str
    message_bytes: int
    group_size: int
    nodes: int
    costs: Mapping[str, float] = field(default_factory=dict)
    pinned: bool = False


class CollectiveAutotuner:
    """Pick a collective algorithm per (topology, group, message size).

    Construct via :meth:`from_runtime` (live ``link_stats``) or
    :meth:`from_config` (static calibration), or directly from a
    hand-built :class:`LinkProfile` in tests.  Decisions are pure
    functions of the profile, so a tuner can be shared across ranks —
    every rank computes the same choice, which collective correctness
    requires.

    Args:
        profile: Calibrated machine parameters.
        override: Pin every decision to this algorithm family instead of
            the cost model (the explicit-override escape hatch).

    Raises:
        DCudaError: *override* is not a known algorithm family.
    """

    def __init__(self, profile: Optional[LinkProfile] = None,
                 override: Optional[str] = None):
        from .algorithms import ALGORITHMS

        if override is not None and override not in ALGORITHMS:
            raise DCudaError(
                f"unknown autotuner override {override!r}; available: "
                f"{', '.join(ALGORITHMS)}")
        self.profile = profile if profile is not None else LinkProfile()
        self.override = override

    @classmethod
    def from_runtime(cls, runtime,
                     override: Optional[str] = None) -> "CollectiveAutotuner":
        """Calibrate from a live runtime, including measured link stats.

        Args:
            runtime: The dCUDA runtime (``rank.runtime``).
            override: Optional pinned algorithm family.

        Returns:
            A tuner whose congestion factor reflects traffic measured on
            the fabric so far.
        """
        stats = runtime.cluster.fabric.link_stats()
        return cls(LinkProfile.from_config(runtime.cfg, stats), override)

    @classmethod
    def from_config(cls, cfg, link_stats: Optional[Mapping] = None,
                    override: Optional[str] = None) -> "CollectiveAutotuner":
        """Calibrate statically from a machine config.

        Args:
            cfg: The :class:`~repro.hw.config.MachineConfig`.
            link_stats: Optional measured per-edge stats.
            override: Optional pinned algorithm family.

        Returns:
            The calibrated tuner.
        """
        return cls(LinkProfile.from_config(cfg, link_stats), override)

    # ------------------------------------------------------------- model --
    def costs(self, message_bytes: int, group_size: int, nodes: int,
              ranks_per_node: int) -> Dict[str, float]:
        """Predicted per-family latency for one group shape.

        Args:
            message_bytes: Full vector size in bytes.
            group_size: Participating ranks ``p``.
            nodes: Nodes spanned ``L``.
            ranks_per_node: Largest per-node member count ``m``.

        Returns:
            ``{family: seconds}``; hierarchical is ``inf`` when the
            group has no two-level structure (single node, or one rank
            per node) and it would degenerate into ring/tree.

        Raises:
            DCudaError: non-positive group shape.
        """
        p, L, m = group_size, nodes, ranks_per_node
        if p < 1 or L < 1 or m < 1 or message_bytes < 0:
            raise DCudaError(
                f"invalid group shape: p={p}, L={L}, m={m}, "
                f"bytes={message_bytes}")
        prof = self.profile
        n = float(message_bytes)
        c = prof.congestion
        # Single-node groups never touch the fabric: charge intra terms.
        a = prof.alpha_inter if L > 1 else prof.alpha_intra
        b = (prof.beta_inter * c) if L > 1 else prof.beta_intra
        o = prof.overhead
        levels = tree_levels(p)
        tree = 2 * levels * (o + a + n * b)
        ring = 2 * (p - 1) * (o + a) + 2 * n * b * (p - 1) / max(p, 1)
        if L > 1 and m > 1:
            hier = ((tree_levels(m) + 1)
                    * (o + prof.alpha_intra + n * prof.beta_intra)
                    + 2 * (L - 1) * (o + prof.alpha_inter)
                    + 2 * n * prof.beta_inter * c * (L - 1) / L)
        else:
            hier = math.inf
        return {"ring": ring, "tree": tree, "hierarchical": hier}

    def choose(self, op: str, placement, group: Sequence[int],
               message_bytes: int) -> CollectiveChoice:
        """Select the algorithm for one collective call.

        Args:
            op: Collective name (recorded in the decision).
            placement: Resolved placement, for the group's node span.
            group: Participating world ranks.
            message_bytes: Full vector size in bytes.

        Returns:
            The decision, including the full cost breakdown; ties break
            deterministically on ``(cost, name)``.

        Raises:
            DCudaError: empty group or invalid shape.
        """
        if not group:
            raise DCudaError("cannot autotune an empty collective group")
        per_node: Dict[int, int] = {}
        for r in group:
            node = placement.node_of(r)
            per_node[node] = per_node.get(node, 0) + 1
        L = len(per_node)
        m = max(per_node.values())
        costs = self.costs(message_bytes, len(group), L, m)
        if self.override is not None:
            algorithm, pinned = self.override, True
        else:
            algorithm = min(costs, key=lambda k: (costs[k], k))
            pinned = False
        return CollectiveChoice(op=op, algorithm=algorithm,
                                message_bytes=message_bytes,
                                group_size=len(group), nodes=L,
                                costs=costs, pinned=pinned)
