"""Data-parallel collectives: allreduce / reduce_scatter / all_gather.

Three algorithm families over the notified-RMA primitives, selectable per
call (or per :class:`~repro.dcuda.collectives.autotune.CollectiveAutotuner`
decision, ``algorithm="auto"``):

* ``ring`` — the bandwidth-optimal pipelined ring: reduce-scatter then
  all-gather in ``2(p-1)`` steps moving ``~2n`` bytes per rank total.
  The ring order is placement-aware (:func:`placement_ring_order`): ranks
  are walked device by device so each node boundary is crossed once per
  step, not once per co-located pair.
* ``tree`` — the latency-optimal binomial tree, extending
  :func:`~repro.dcuda.collectives.core.tree_reduce` /
  :func:`~repro.dcuda.collectives.core.tree_broadcast`:
  ``O(log p)`` rounds, each moving the full vector.
* ``hierarchical`` — the two-level scheme the paper's discussion section
  proposes for shared memory (§V), generalized to the platform layer:
  a per-node reduction to *leader* ranks over the fast intra-node path,
  a ring over the leaders across the fabric, then a per-node binomial
  broadcast (the leader machinery of
  :func:`~repro.dcuda.collectives.core.hierarchical_broadcast`).

All collectives operate **in place** on each rank's view ``buf`` of a
shared window region (MPI's ``MPI_IN_PLACE`` convention): ``buf`` holds
the rank's contribution on entry and the collective's result on exit.
Every rank additionally passes a private ``scratch_win`` for receive
staging; :func:`scratch_elems` returns a size that satisfies every
algorithm.  Results are deterministic per (algorithm, group, placement):
the reduction order is a pure function of the schedule, never of message
arrival order, so any two backends produce bit-identical buffers.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ...sim import Event
from ..device_api import DRank
from ..errors import DCudaError
from ..window import Window
from .core import tree_broadcast, tree_levels, tree_reduce

__all__ = [
    "ALGORITHMS",
    "allreduce",
    "reduce_scatter",
    "all_gather",
    "chunk_bounds",
    "scratch_elems",
    "placement_ring_order",
    "node_groups",
]

#: Registered collective algorithm families (plus ``"auto"`` at the
#: dispatcher level, which defers the choice to a
#: :class:`~repro.dcuda.collectives.autotune.CollectiveAutotuner`).
ALGORITHMS = ("ring", "tree", "hierarchical")


# ----------------------------------------------------------- partitioning --
def chunk_bounds(n: int, p: int, i: int) -> Tuple[int, int]:
    """Balanced ``[lo, hi)`` element bounds of chunk *i* of *n* over *p*.

    The first ``n % p`` chunks carry one extra element; chunks are empty
    when ``n < p`` and ``i >= n``.

    Args:
        n: Vector length in elements.
        p: Number of chunks (the group size).
        i: Chunk index in ``[0, p)``.

    Returns:
        The half-open element range ``(lo, hi)`` of chunk *i*.

    Raises:
        DCudaError: *i* is outside ``[0, p)`` or *p* is not positive.
    """
    if p < 1 or not 0 <= i < p:
        raise DCudaError(f"chunk {i} of {p} is not a valid partition")
    base, extra = divmod(n, p)
    lo = i * base + min(i, extra)
    return lo, lo + base + (1 if i < extra else 0)


def _max_chunk(n: int, p: int) -> int:
    return -(-n // p) if n else 0


def scratch_elems(p: int, n: int) -> int:
    """Scratch-window size (elements) sufficient for *every* algorithm.

    Covers the binomial tree's per-level slots
    (``tree_levels(p) * n``), the ring's per-step receive slots
    (``(p-1) * ceil(n/p)``), and the hierarchical composition of both.

    Args:
        p: Collective group size.
        n: Vector length in elements.

    Returns:
        An element count safe to pass as every rank's scratch buffer.

    Raises:
        DCudaError: *p* is not positive or *n* is negative.
    """
    if p < 1 or n < 0:
        raise DCudaError(f"invalid scratch request: p={p}, n={n}")
    levels = max(tree_levels(p), 1)
    return (levels + 2) * max(n, 1) + p


def placement_ring_order(placement, group: Sequence[int]) -> List[int]:
    """Placement-aware ring order of *group*: device by device.

    Walks the group's members grouped by their hosting ``(node, gpu)``
    device in canonical device order, so ring neighbours are co-located
    wherever possible and each populated node boundary is crossed once.

    Args:
        placement: The resolved :class:`~repro.platform.placement.Placement`.
        group: World ranks participating, in any order.

    Returns:
        The members of *group* reordered for ring traversal.
    """
    return sorted(group, key=lambda r: (placement.device_of(r), r))


def node_groups(placement, group: Sequence[int]
                ) -> List[Tuple[int, List[int]]]:
    """Partition *group* by hosting node, in ascending node order.

    Args:
        placement: The resolved :class:`~repro.platform.placement.Placement`.
        group: World ranks participating, in a common order.

    Returns:
        ``[(node, members), ...]`` with members in group order; the first
        member of each node is that node's *leader*.
    """
    by_node = {}
    for r in group:
        by_node.setdefault(placement.node_of(r), []).append(r)
    return sorted(by_node.items())


def _index_of(group: Sequence[int], rank: int) -> int:
    try:
        return list(group).index(rank)
    except ValueError:
        raise DCudaError(f"rank {rank} not in collective group "
                         f"{list(group)}") from None


def _check_scratch(scratch_win: Window, needed: int, what: str) -> None:
    if scratch_win.size < needed:
        raise DCudaError(
            f"{what}: scratch window of {scratch_win.size} elements "
            f"cannot hold the required {needed}")


# ------------------------------------------------------------ ring family --
def _ring_reduce_scatter(rank: DRank, win: Window, scratch_win: Window,
                         ring: Sequence[int], chunk_of: Sequence[int],
                         buf: np.ndarray, op: Callable[..., Any],
                         tag_base: int, scratch_offset: int = 0
                         ) -> Generator[Event, Any, None]:
    """Ring reduce-scatter over *ring* order; ``chunk_of[q]`` names the
    chunk id (a group index) owned by ring position *q* at the end.

    After return, position ``q``'s ``buf`` holds the full reduction of
    chunk ``chunk_of[q]``; all other chunk regions are partial sums and
    must be treated as undefined.  Receive slots occupy scratch elements
    ``[scratch_offset, scratch_offset + (p-1) * ceil(n/p))``.
    """
    p = len(ring)
    if p == 1:
        return
    n = buf.size
    mc = _max_chunk(n, p)
    _check_scratch(scratch_win, scratch_offset + (p - 1) * mc,
                   "ring reduce_scatter")
    scratch = scratch_win.buffer
    q = _index_of(ring, rank.world_rank)
    right = ring[(q + 1) % p]
    left = ring[(q - 1) % p]
    for s in range(p - 1):
        send_id = chunk_of[(q - 1 - s) % p]
        recv_id = chunk_of[(q - 2 - s) % p]
        slo, shi = chunk_bounds(n, p, send_id)
        rlo, rhi = chunk_bounds(n, p, recv_id)
        slot = scratch_offset + s * mc
        yield from rank.put_notify(scratch_win, right, slot,
                                   buf[slo:shi], tag=tag_base + s)
        yield from rank.wait_notifications(scratch_win, source=left,
                                           tag=tag_base + s, count=1)
        if rhi > rlo:
            op(buf[rlo:rhi], scratch[slot:slot + (rhi - rlo)],
               out=buf[rlo:rhi])


def _ring_all_gather(rank: DRank, win: Window, ring: Sequence[int],
                     chunk_of: Sequence[int], buf: np.ndarray, offset: int,
                     tag_base: int) -> Generator[Event, Any, None]:
    """Ring all-gather over *ring* order: position *q* contributes chunk
    ``chunk_of[q]``; chunks land directly in their final window slots."""
    p = len(ring)
    if p == 1:
        return
    n = buf.size
    q = _index_of(ring, rank.world_rank)
    right = ring[(q + 1) % p]
    left = ring[(q - 1) % p]
    for s in range(p - 1):
        send_id = chunk_of[(q - s) % p]
        lo, hi = chunk_bounds(n, p, send_id)
        yield from rank.put_notify(win, right, offset + lo, buf[lo:hi],
                                   tag=tag_base + s)
        yield from rank.wait_notifications(win, source=left,
                                           tag=tag_base + s, count=1)


def _ring_chunks(rank: DRank, group: Sequence[int]
                 ) -> Tuple[List[int], List[int]]:
    """Placement-aware ring order plus the position → chunk-id map.

    Chunk ids are **group indices** — rank ``group[i]`` always ends up
    owning chunk ``i`` regardless of the ring traversal order, which is
    what keeps ring results interchangeable with the other families.
    """
    ring = placement_ring_order(rank.runtime.placement, group)
    index = {r: i for i, r in enumerate(group)}
    return ring, [index[r] for r in ring]


# ------------------------------------------------------------ tree family --
def _tree_allreduce(rank: DRank, win: Window, scratch_win: Window,
                    group: Sequence[int], buf: np.ndarray,
                    op: Callable[..., Any], offset: int,
                    tag_base: int) -> Generator[Event, Any, None]:
    root = group[0]
    acc = yield from tree_reduce(rank, scratch_win, group, buf, root=root,
                                 op=op, tag_base=tag_base)
    if rank.world_rank == root:
        buf[:] = acc
    yield from tree_broadcast(rank, win, group, buf, root=root,
                              offset=offset,
                              tag=tag_base + tree_levels(len(group)))


def _tree_reduce_scatter(rank: DRank, win: Window, scratch_win: Window,
                         group: Sequence[int], buf: np.ndarray,
                         op: Callable[..., Any], offset: int,
                         tag_base: int) -> Generator[Event, Any, None]:
    """Reduce to the root, then scatter each chunk to its owner."""
    p = len(group)
    n = buf.size
    root = group[0]
    acc = yield from tree_reduce(rank, scratch_win, group, buf, root=root,
                                 op=op, tag_base=tag_base)
    scatter_tag = tag_base + tree_levels(p)
    if rank.world_rank == root:
        lo, hi = chunk_bounds(n, p, 0)
        buf[lo:hi] = acc[lo:hi]
        for i in range(1, p):
            lo, hi = chunk_bounds(n, p, i)
            yield from rank.put_notify(win, group[i], offset + lo,
                                       acc[lo:hi], tag=scatter_tag)
    else:
        yield from rank.wait_notifications(win, source=root,
                                           tag=scatter_tag, count=1)


def _tree_all_gather(rank: DRank, win: Window, group: Sequence[int],
                     buf: np.ndarray, offset: int,
                     tag_base: int) -> Generator[Event, Any, None]:
    """Gather every chunk to the root, then binomial-broadcast the vector."""
    p = len(group)
    n = buf.size
    root = group[0]
    idx = _index_of(group, rank.world_rank)
    if rank.world_rank == root:
        yield from rank.wait_notifications(win, tag=tag_base, count=p - 1)
    else:
        lo, hi = chunk_bounds(n, p, idx)
        yield from rank.put_notify(win, root, offset + lo, buf[lo:hi],
                                   tag=tag_base)
    yield from tree_broadcast(rank, win, group, buf, root=root,
                              offset=offset, tag=tag_base + 1)


# ---------------------------------------------------- hierarchical family --
def _hier_stage_tags(m: int, leaders: int, tag_base: int
                     ) -> Tuple[int, int, int]:
    """Non-overlapping tag bases for the three hierarchical stages."""
    s2 = tag_base + max(tree_levels(max(m, 1)), 1)
    s3 = s2 + 2 * max(leaders - 1, 1) + 1
    return tag_base, s2, s3


def _hier_allreduce(rank: DRank, win: Window, scratch_win: Window,
                    group: Sequence[int], buf: np.ndarray,
                    op: Callable[..., Any], offset: int,
                    tag_base: int) -> Generator[Event, Any, None]:
    placement = rank.runtime.placement
    groups = node_groups(placement, group)
    leaders = [members[0] for _, members in groups]
    locals_ = dict(groups)[placement.node_of(rank.world_rank)]
    m = max(len(members) for _, members in groups)
    t1, t2, t3 = _hier_stage_tags(m, len(leaders), tag_base)
    n = buf.size
    # Stage 1: reduce to this node's leader over the intra-node path.
    acc = yield from tree_reduce(rank, scratch_win, locals_, buf,
                                 root=locals_[0], op=op, tag_base=t1)
    if rank.world_rank == locals_[0]:
        buf[:] = acc
        # Stage 2: bandwidth-optimal ring across the fabric, leaders only.
        # Scratch slots live above the stage-1 tree levels — sized by the
        # group-wide maximum m, not this node's own member count, so every
        # leader agrees on the slot addresses peers write into.
        ring = placement_ring_order(placement, leaders)
        index = {r: i for i, r in enumerate(leaders)}
        chunk_of = [index[r] for r in ring]
        shift = tree_levels(m) * n
        yield from _ring_reduce_scatter(rank, win, scratch_win, ring,
                                        chunk_of, buf, op, t2,
                                        scratch_offset=shift)
        yield from _ring_all_gather(rank, win, ring, chunk_of, buf,
                                    offset, t2 + max(len(leaders) - 1, 0))
    # Stage 3: per-node binomial broadcast from the leader.
    yield from tree_broadcast(rank, win, locals_, buf, root=locals_[0],
                              offset=offset, tag=t3)


def _hier_reduce_scatter(rank: DRank, win: Window, scratch_win: Window,
                         group: Sequence[int], buf: np.ndarray,
                         op: Callable[..., Any], offset: int,
                         tag_base: int) -> Generator[Event, Any, None]:
    """Hierarchical reduce-scatter: node reduction, leader ring
    allreduce, then each leader deals its locals their own chunks."""
    placement = rank.runtime.placement
    groups = node_groups(placement, group)
    leaders = [members[0] for _, members in groups]
    locals_ = dict(groups)[placement.node_of(rank.world_rank)]
    m = max(len(members) for _, members in groups)
    t1, t2, t3 = _hier_stage_tags(m, len(leaders), tag_base)
    n = buf.size
    p = len(group)
    index = {r: i for i, r in enumerate(group)}
    acc = yield from tree_reduce(rank, scratch_win, locals_, buf,
                                 root=locals_[0], op=op, tag_base=t1)
    if rank.world_rank == locals_[0]:
        buf[:] = acc
        ring = placement_ring_order(placement, leaders)
        lidx = {r: i for i, r in enumerate(leaders)}
        chunk_of = [lidx[r] for r in ring]
        # Group-wide m: slot addresses must agree across leaders even
        # when nodes contribute unequal member counts.
        shift = tree_levels(m) * n
        yield from _ring_reduce_scatter(rank, win, scratch_win, ring,
                                        chunk_of, buf, op, t2,
                                        scratch_offset=shift)
        yield from _ring_all_gather(rank, win, ring, chunk_of, buf,
                                    offset, t2 + max(len(leaders) - 1, 0))
        # Stage 3: deal every local member its own group chunk.
        for member in locals_[1:]:
            lo, hi = chunk_bounds(n, p, index[member])
            yield from rank.put_notify(win, member, offset + lo,
                                       buf[lo:hi], tag=t3)
    else:
        yield from rank.wait_notifications(win, source=locals_[0],
                                           tag=t3, count=1)


def _hier_all_gather(rank: DRank, win: Window, group: Sequence[int],
                     buf: np.ndarray, offset: int,
                     tag_base: int) -> Generator[Event, Any, None]:
    """Hierarchical all-gather: locals raise chunks to their leader, the
    leaders ring-exchange each node's chunk *set* (chunks land at their
    true offsets), then each node broadcasts the assembled vector."""
    placement = rank.runtime.placement
    groups = node_groups(placement, group)
    leaders = [members[0] for _, members in groups]
    locals_ = dict(groups)[placement.node_of(rank.world_rank)]
    m = max(len(members) for _, members in groups)
    t1, t2, t3 = _hier_stage_tags(m, len(leaders), tag_base)
    n = buf.size
    p = len(group)
    index = {r: i for i, r in enumerate(group)}
    leader = locals_[0]
    # Stage 1: every local member raises its chunk to the leader.
    if rank.world_rank == leader:
        if len(locals_) > 1:
            yield from rank.wait_notifications(win, tag=t1,
                                               count=len(locals_) - 1)
        # Stage 2: ring over leaders; step s forwards the chunk set of
        # the node at ring distance s upstream, each chunk to its final
        # offset, closed by one wait for the full set.
        ring = placement_ring_order(placement, leaders)
        L = len(ring)
        q = _index_of(ring, rank.world_rank)
        by_leader = {members[0]: [index[r] for r in members]
                     for _, members in groups}
        if L > 1:
            right = ring[(q + 1) % L]
            left = ring[(q - 1) % L]
            for s in range(L - 1):
                send_set = by_leader[ring[(q - s) % L]]
                recv_set = by_leader[ring[(q - 1 - s) % L]]
                for cid in send_set:
                    lo, hi = chunk_bounds(n, p, cid)
                    yield from rank.put_notify(win, right, offset + lo,
                                               buf[lo:hi], tag=t2 + s)
                yield from rank.wait_notifications(win, source=left,
                                                   tag=t2 + s,
                                                   count=len(recv_set))
    else:
        lo, hi = chunk_bounds(n, p, index[rank.world_rank])
        yield from rank.put_notify(win, leader, offset + lo, buf[lo:hi],
                                   tag=t1)
    # Stage 3: per-node binomial broadcast of the assembled vector.
    yield from tree_broadcast(rank, win, locals_, buf, root=leader,
                              offset=offset, tag=t3)


# -------------------------------------------------------------- dispatch --
def _resolve(rank: DRank, group: Sequence[int], buf: np.ndarray,
             algorithm: Optional[str], op_name: str, tuner) -> str:
    if algorithm in (None, "auto"):
        from .autotune import CollectiveAutotuner

        if tuner is None:
            tuner = CollectiveAutotuner.from_runtime(rank.runtime)
        return tuner.choose(op_name, rank.runtime.placement, group,
                            buf.nbytes).algorithm
    if algorithm not in ALGORITHMS:
        raise DCudaError(
            f"unknown collective algorithm {algorithm!r}; available: "
            f"{', '.join(ALGORITHMS)} (or 'auto')")
    return algorithm


def allreduce(rank: DRank, win: Window, scratch_win: Window,
              group: Sequence[int], buf: np.ndarray,
              op: Callable[..., Any] = np.add,
              algorithm: Optional[str] = "ring", offset: int = 0,
              tag_base: int = 0,
              tuner=None) -> Generator[Event, Any, str]:
    """In-place allreduce of *buf* over *group*.

    On entry *buf* is this rank's contribution (its view of the window
    region at *offset*); on exit it holds ``op`` applied across every
    rank's contribution, identically on all participants.

    Args:
        rank: The calling rank (every member of *group* must call).
        win: Window covering the result region on all participants.
        scratch_win: Per-rank private staging window; size it with
            :func:`scratch_elems`.
        group: World ranks participating, in a common order.
        buf: This rank's contribution and result region (in place).
        op: Reduction ufunc supporting ``op(a, b, out=a)``; must be
            commutative and associative up to the documented
            schedule-determined evaluation order.
        algorithm: ``"ring"`` | ``"tree"`` | ``"hierarchical"`` |
            ``"auto"`` (defer to *tuner*).
        offset: Element offset of the region in the target windows.
        tag_base: First notification tag of this collective's private
            tag range (budget ≤ ``4 * len(group) + 8``).
        tuner: Optional
            :class:`~repro.dcuda.collectives.autotune.CollectiveAutotuner`
            consulted when ``algorithm="auto"``.

    Returns:
        The algorithm name actually executed (after auto selection).

    Raises:
        DCudaError: the caller is not in *group*, the scratch window is
            too small, or *algorithm* is unknown.
        DCudaTimeoutError: a fault plane is attached and an expected
            notification never arrived within ``handshake_timeout``.
    """
    algorithm = _resolve(rank, group, buf, algorithm, "allreduce", tuner)
    _index_of(group, rank.world_rank)
    if len(group) == 1:
        return algorithm
    if algorithm == "tree":
        yield from _tree_allreduce(rank, win, scratch_win, group, buf, op,
                                   offset, tag_base)
    elif algorithm == "hierarchical":
        yield from _hier_allreduce(rank, win, scratch_win, group, buf, op,
                                   offset, tag_base)
    else:
        ring, chunk_of = _ring_chunks(rank, group)
        p = len(group)
        yield from _ring_reduce_scatter(rank, win, scratch_win, ring,
                                        chunk_of, buf, op, tag_base)
        yield from _ring_all_gather(rank, win, ring, chunk_of, buf,
                                    offset, tag_base + p - 1)
    return algorithm


def reduce_scatter(rank: DRank, win: Window, scratch_win: Window,
                   group: Sequence[int], buf: np.ndarray,
                   op: Callable[..., Any] = np.add,
                   algorithm: Optional[str] = "ring", offset: int = 0,
                   tag_base: int = 0,
                   tuner=None) -> Generator[Event, Any, Tuple[int, int]]:
    """Reduce *buf* over *group*, scattering one chunk per rank.

    Rank ``group[i]`` receives the full reduction of chunk *i* (bounds
    :func:`chunk_bounds`) in ``buf[lo:hi]``; all other chunk regions of
    *buf* are scratch for the algorithm and undefined on return.

    Args:
        rank: The calling rank (every member of *group* must call).
        win: Window covering the result region on all participants.
        scratch_win: Per-rank private staging window
            (:func:`scratch_elems`).
        group: World ranks participating, in a common order.
        buf: This rank's contribution on entry; chunk ``[lo, hi)`` holds
            the result on exit.
        op: Reduction ufunc supporting ``op(a, b, out=a)``.
        algorithm: ``"ring"`` | ``"tree"`` | ``"hierarchical"`` | ``"auto"``.
        offset: Element offset of the region in the target windows.
        tag_base: First tag of the collective's private range.
        tuner: Autotuner consulted when ``algorithm="auto"``.

    Returns:
        This rank's owned chunk bounds ``(lo, hi)``.

    Raises:
        DCudaError: membership, scratch-size, or algorithm-name errors,
            as for :func:`allreduce`.
        DCudaTimeoutError: a fault plane is attached and an expected
            notification never arrived within ``handshake_timeout``.
    """
    algorithm = _resolve(rank, group, buf, algorithm, "reduce_scatter",
                         tuner)
    i = _index_of(group, rank.world_rank)
    n = buf.size
    if len(group) == 1:
        return 0, n
    if algorithm == "tree":
        yield from _tree_reduce_scatter(rank, win, scratch_win, group, buf,
                                        op, offset, tag_base)
    elif algorithm == "hierarchical":
        yield from _hier_reduce_scatter(rank, win, scratch_win, group, buf,
                                        op, offset, tag_base)
    else:
        ring, chunk_of = _ring_chunks(rank, group)
        yield from _ring_reduce_scatter(rank, win, scratch_win, ring,
                                        chunk_of, buf, op, tag_base)
    return chunk_bounds(n, len(group), i)


def all_gather(rank: DRank, win: Window, scratch_win: Window,
               group: Sequence[int], buf: np.ndarray,
               algorithm: Optional[str] = "ring", offset: int = 0,
               tag_base: int = 0,
               tuner=None) -> Generator[Event, Any, str]:
    """Gather every rank's chunk into the full vector, everywhere.

    On entry ``buf[lo:hi]`` (this rank's :func:`chunk_bounds` region)
    holds its contribution; on exit *buf* holds all chunks on every
    rank.

    Args:
        rank: The calling rank (every member of *group* must call).
        win: Window covering the result region on all participants.
        scratch_win: Per-rank private staging window (unused by the tree
            family but kept for a uniform signature).
        group: World ranks participating, in a common order.
        buf: This rank's view of the result region.
        algorithm: ``"ring"`` | ``"tree"`` | ``"hierarchical"`` | ``"auto"``.
        offset: Element offset of the region in the target windows.
        tag_base: First tag of the collective's private range.
        tuner: Autotuner consulted when ``algorithm="auto"``.

    Returns:
        The algorithm name actually executed (after auto selection).

    Raises:
        DCudaError: membership or algorithm-name errors, as for
            :func:`allreduce`.
        DCudaTimeoutError: a fault plane is attached and an expected
            notification never arrived within ``handshake_timeout``.
    """
    algorithm = _resolve(rank, group, buf, algorithm, "all_gather", tuner)
    _index_of(group, rank.world_rank)
    if len(group) == 1:
        return algorithm
    if algorithm == "tree":
        yield from _tree_all_gather(rank, win, group, buf, offset, tag_base)
    elif algorithm == "hierarchical":
        yield from _hier_all_gather(rank, win, group, buf, offset, tag_base)
    else:
        ring, chunk_of = _ring_chunks(rank, group)
        yield from _ring_all_gather(rank, win, ring, chunk_of, buf, offset,
                                    tag_base)
    return algorithm
