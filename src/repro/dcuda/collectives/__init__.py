"""Collective operations over the notified-RMA primitives.

The package splits into three layers:

* :mod:`~repro.dcuda.collectives.core` — the broadcast/reduce building
  blocks (binomial ``tree_broadcast`` / ``tree_reduce`` and the
  device-leader ``hierarchical_broadcast``) the paper-era apps use.
* :mod:`~repro.dcuda.collectives.algorithms` — the data-parallel ML
  collectives (``allreduce`` / ``reduce_scatter`` / ``all_gather``) with
  ring, tree, and hierarchical algorithm families, all placement-aware
  and backend-invariant.
* :mod:`~repro.dcuda.collectives.autotune` — the
  :class:`CollectiveAutotuner`, picking the family per (topology, group,
  message size) from an alpha-beta cost model and measured
  ``Fabric.link_stats()``.

Everything is re-exported here; ``from repro.dcuda.collectives import
tree_broadcast`` keeps working as before the split.
"""

from .algorithms import (ALGORITHMS, all_gather, allreduce, chunk_bounds,
                         node_groups, placement_ring_order, reduce_scatter,
                         scratch_elems)
from .autotune import (CollectiveAutotuner, CollectiveChoice, LinkProfile,
                       congestion_factor)
from .core import (hierarchical_broadcast, tree_broadcast, tree_levels,
                   tree_reduce)

__all__ = [
    "tree_broadcast",
    "tree_reduce",
    "hierarchical_broadcast",
    "tree_levels",
    "allreduce",
    "reduce_scatter",
    "all_gather",
    "ALGORITHMS",
    "chunk_bounds",
    "scratch_elems",
    "placement_ring_order",
    "node_groups",
    "CollectiveAutotuner",
    "CollectiveChoice",
    "LinkProfile",
    "congestion_factor",
]
