"""Device-side collectives over notified remote memory access.

The paper's mini-apps implement broadcast and reduction manually "using a
binary tree communication pattern" (§IV-C); this module provides those
trees as reusable building blocks, plus the shared-memory-aware
hierarchical broadcast the discussion section proposes ("implement
highly-efficient collectives that leverage shared memory", §V).

All collectives operate on window regions: every participating rank calls
with its own view of the same window (the region that holds/receives the
value) and a private scratch window for reductions.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np

from ...sim import Event
from ..device_api import DRank
from ..errors import DCudaError
from ..ext.notify_all import put_notify_all
from ..window import Window

__all__ = ["tree_broadcast", "tree_reduce", "hierarchical_broadcast",
           "tree_levels"]


def tree_levels(p: int) -> int:
    """Depth of a binomial tree over *p* participants.

    Args:
        p: Number of participants (>= 1).

    Returns:
        The smallest *l* with ``2**l >= p`` — the number of communication
        rounds a binomial broadcast/reduction needs.
    """
    levels = 0
    while (1 << levels) < p:
        levels += 1
    return levels


def _index_of(group: Sequence[int], rank: int) -> int:
    try:
        return list(group).index(rank)
    except ValueError:
        raise DCudaError(f"rank {rank} not in collective group "
                         f"{list(group)}") from None


def tree_broadcast(rank: DRank, win: Window, group: Sequence[int],
                   buf: np.ndarray, root: Optional[int] = None,
                   offset: int = 0,
                   tag: int = 0) -> Generator[Event, Any, None]:
    """Binomial-tree broadcast of the root's *buf* over *group*.

    *buf* must be each rank's view of the window region at *offset* (the
    same region on every participant); after return it holds the root's
    data everywhere.  Non-root ranks wait for one notification from their
    parent before forwarding.

    Args:
        rank: The calling rank (every member of *group* must call).
        win: Window covering the broadcast region on all participants.
        group: World ranks participating, in a common order.
        buf: This rank's view of the region at *offset*.
        root: Broadcast root; defaults to ``group[0]``.
        offset: Element offset of the region in the target windows.
        tag: Notification tag distinguishing concurrent collectives.

    Returns:
        Nothing; completion is per-rank (tree order, no global barrier).

    Raises:
        DCudaError: the calling rank is not a member of *group*.
        DCudaTimeoutError: a fault plane is attached and a parent
            notification never arrived within ``handshake_timeout``.
    """
    group = list(group)
    p = len(group)
    root = group[0] if root is None else root
    idx = _index_of(group, rank.world_rank)
    root_idx = _index_of(group, root)
    if p == 1:
        return
    vrank = (idx - root_idx) % p

    mask = 1
    while mask < p:
        if vrank & mask:
            yield from rank.wait_notifications(win, tag=tag, count=1)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            target = group[(vrank + mask + root_idx) % p]
            yield from rank.put_notify(win, target, offset, buf, tag=tag)
        mask >>= 1


def tree_reduce(rank: DRank, scratch_win: Window, group: Sequence[int],
                value: np.ndarray, root: Optional[int] = None,
                op: Callable[..., Any] = np.add,
                tag_base: int = 0) -> Generator[Event, Any, Optional[np.ndarray]]:
    """Binomial gather-up reduction of *value* over *group*.

    Every rank passes a private *scratch_win* whose buffer has room for
    ``tree_levels(len(group)) * value.size`` elements — one slot per tree
    level, so concurrent children never collide.  *op* must be commutative
    and support ``op(a, b, out=a)``.

    Args:
        rank: The calling rank (every member of *group* must call).
        scratch_win: Per-rank private scratch window (receive slots).
        group: World ranks participating, in a common order.
        value: This rank's contribution (any array shape; flattened size
            defines the slot width).
        root: Rank receiving the result; defaults to ``group[0]``.
        op: Reduction ufunc, e.g. ``np.add`` / ``np.maximum``.
        tag_base: Tags ``tag_base + level`` are used per tree level.

    Returns:
        The reduced array at *root*; ``None`` on every other rank.

    Raises:
        DCudaError: the calling rank is not in *group*, or *scratch_win*
            is too small for ``tree_levels(len(group))`` slots.
        DCudaTimeoutError: a fault plane is attached and a child's
            contribution never arrived within ``handshake_timeout``.
    """
    group = list(group)
    p = len(group)
    root = group[0] if root is None else root
    idx = _index_of(group, rank.world_rank)
    root_idx = _index_of(group, root)
    acc = np.array(value, copy=True)
    if p == 1:
        return acc
    n = acc.size
    levels = tree_levels(p)
    if scratch_win.size < levels * n:
        raise DCudaError(
            f"scratch window of {scratch_win.size} elements cannot hold "
            f"{levels} levels x {n} elements")
    scratch = scratch_win.buffer
    vrank = (idx - root_idx) % p

    level = 0
    mask = 1
    while mask < p:
        if vrank & mask:
            target = group[(vrank - mask + root_idx) % p]
            yield from rank.put_notify(scratch_win, target, level * n, acc,
                                       tag=tag_base + level)
            return None
        if vrank + mask < p:
            source = group[(vrank + mask + root_idx) % p]
            yield from rank.wait_notifications(scratch_win, source=source,
                                               tag=tag_base + level,
                                               count=1)
            op(acc, scratch[level * n:(level + 1) * n], out=acc)
        mask <<= 1
        level += 1
    return acc


def hierarchical_broadcast(rank: DRank, win: Window, buf: np.ndarray,
                           root: Optional[int] = None, offset: int = 0,
                           tag: int = 0) -> Generator[Event, Any, None]:
    """Shared-memory-aware broadcast over the whole world (§V).

    Two stages: a binomial tree over the device *leaders* (one rank per
    device, moving the data across the network once per device), then a
    single transfer-once/notify-all within each device.  Compared to a
    flat tree over all ranks, the data crosses each device boundary once
    and the intra-device fan-out is one data movement total.

    Args:
        rank: The calling rank; *every* world rank must call.
        win: Window covering the broadcast region on all ranks.
        buf: This rank's view of the region at *offset*.
        root: Broadcast root; defaults to world rank 0.
        offset: Element offset of the region in the target windows.
        tag: Notification tag distinguishing concurrent collectives.

    Returns:
        Nothing; per-rank completion as in :func:`tree_broadcast`.

    Raises:
        DCudaError: propagated from :func:`tree_broadcast` /
            :func:`~repro.dcuda.ext.notify_all.put_notify_all` on
            malformed groups.
        DCudaTimeoutError: a fault plane is attached and an expected
            notification never arrived within ``handshake_timeout``.
    """
    rt = rank.runtime
    placement = rt.placement
    root = 0 if root is None else root
    root_device = placement.device_of(root)
    # Stage 1: leaders = the root plus the first rank of every other
    # (populated) device, in canonical device order.
    leaders = [root] + [
        placement.ranks_on_device(*dev)[0]
        for dev in placement.devices
        if dev != root_device and placement.ranks_on_device(*dev)]
    my_device = (rank.node.index, rank.gpu_index)
    my_leader = (root if my_device == root_device
                 else placement.ranks_on_device(*my_device)[0])
    if rank.world_rank == my_leader:
        yield from tree_broadcast(rank, win, leaders, buf, root=root,
                                  offset=offset, tag=tag)
        # Stage 2: one data movement, notifications to all local ranks.
        locals_ = [r for r in placement.ranks_on_device(*my_device)
                   if r != rank.world_rank]
        if locals_:
            yield from put_notify_all(rank, win, locals_, offset, buf,
                                      tag=tag)
    else:
        yield from rank.wait_notifications(win, tag=tag, count=1)
